#include "fuzz/fuzz.h"

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "analyze/analysis.h"
#include "base/strings.h"
#include "chase/chase.h"
#include "dep/skolem.h"
#include "parse/parser.h"
#include "query/query.h"
#include "snapshot/snapshot.h"
#include "transform/nested.h"

namespace tgdkit {

std::string ToString(const FaultSchedule& fault) {
  switch (fault.kind) {
    case FaultSchedule::Kind::kNone:
      return "none";
    case FaultSchedule::Kind::kCrashAt:
      return Cat("crash-at ", fault.value, " ",
                 fault.phase.empty() ? "commit" : fault.phase);
    case FaultSchedule::Kind::kFailWriteAt:
      return Cat("fail-write-at ", fault.value);
    case FaultSchedule::Kind::kStepBudget:
      return Cat("step-budget ", fault.value);
  }
  return "none";
}

bool ParseFaultSchedule(const std::string& text, FaultSchedule* out) {
  std::istringstream in(text);
  std::string kind;
  if (!(in >> kind)) return false;
  FaultSchedule fault;
  if (kind == "none") {
    *out = fault;
    return true;
  }
  if (kind == "crash-at") {
    fault.kind = FaultSchedule::Kind::kCrashAt;
    if (!(in >> fault.value >> fault.phase)) return false;
    if (fault.phase != "begin" && fault.phase != "mid" &&
        fault.phase != "commit") {
      return false;
    }
  } else if (kind == "fail-write-at") {
    fault.kind = FaultSchedule::Kind::kFailWriteAt;
    if (!(in >> fault.value)) return false;
  } else if (kind == "step-budget") {
    fault.kind = FaultSchedule::Kind::kStepBudget;
    if (!(in >> fault.value)) return false;
  } else {
    return false;
  }
  if (fault.kind != FaultSchedule::Kind::kNone && fault.value == 0) {
    return false;
  }
  *out = fault;
  return true;
}

FuzzScenario MakeScenario(uint64_t seed, const FuzzOptions& options) {
  Rng rng(seed);
  AdversarialShape shape =
      options.shape ? *options.shape
                    : static_cast<AdversarialShape>(
                          seed % kNumAdversarialShapes);
  AdversarialScenario generated =
      GenerateAdversarialScenario(&rng, shape, options.gen);

  FuzzScenario scenario;
  scenario.seed = seed;
  scenario.shape = generated.shape;
  scenario.program = std::move(generated.program);
  scenario.instance = std::move(generated.instance);
  scenario.query = std::move(generated.query);
  scenario.may_diverge = generated.may_diverge;
  scenario.inject_bug = options.inject_bug;

  // Randomized fault schedule. The torn-checkpoint defect lives on the
  // durability path, so force that schedule when it is being seeded.
  static const std::vector<std::string> kPhases = {"begin", "mid", "commit"};
  switch (rng.Below(4)) {
    case 0:
      break;  // kNone
    case 1:
      scenario.fault.kind = FaultSchedule::Kind::kCrashAt;
      scenario.fault.value = 1 + rng.Below(6);
      scenario.fault.phase = rng.Pick(kPhases);
      break;
    case 2:
      scenario.fault.kind = FaultSchedule::Kind::kFailWriteAt;
      scenario.fault.value = 1 + rng.Below(6);
      break;
    default:
      scenario.fault.kind = FaultSchedule::Kind::kStepBudget;
      scenario.fault.value = 1 + rng.Below(12);
      break;
  }
  if (scenario.inject_bug == "torn-checkpoint" &&
      scenario.fault.kind != FaultSchedule::Kind::kFailWriteAt) {
    scenario.fault.kind = FaultSchedule::Kind::kFailWriteAt;
    scenario.fault.value = 1 + (seed % 6);
    scenario.fault.phase.clear();
  }
  return scenario;
}

namespace {

namespace fs = std::filesystem;

/// A freshly parsed copy of the scenario: every engine run gets its own
/// arena/vocabulary/instance so runs can never contaminate each other.
struct Workload {
  Vocabulary vocab;
  TermArena arena;
  DependencyProgram program;
  SoTgd merged;
  std::vector<Tgd> tgds;
  Instance input{&vocab};
  std::optional<ConjunctiveQuery> query;
};

Status BuildWorkload(const FuzzScenario& scenario, Workload* w) {
  Parser parser(&w->arena, &w->vocab);
  Result<DependencyProgram> program =
      parser.ParseDependencies(scenario.program);
  if (!program.ok()) return program.status();
  w->program = std::move(*program);
  Status st = parser.ParseInstanceInto(scenario.instance, &w->input);
  if (!st.ok()) return st;
  if (!scenario.query.empty()) {
    Result<ConjunctiveQuery> query = parser.ParseQuery(scenario.query);
    if (!query.ok()) return query.status();
    w->query = std::move(*query);
  }
  // Mirror of api.cc's ProgramRules so the in-process engines run the
  // exact rule set the CLI would.
  w->tgds = w->program.Tgds();
  std::vector<SoTgd> sos;
  if (!w->tgds.empty()) {
    sos.push_back(TgdsToSo(&w->arena, &w->vocab, w->tgds));
  }
  std::vector<HenkinTgd> henkins = w->program.Henkins();
  if (!henkins.empty()) {
    sos.push_back(HenkinsToSo(&w->arena, &w->vocab, henkins));
  }
  for (const NestedTgd& nested : w->program.Nesteds()) {
    sos.push_back(NestedToSo(&w->arena, &w->vocab, nested));
  }
  for (SoTgd& so : w->program.Sos()) sos.push_back(std::move(so));
  w->merged = MergeSo(sos);
  return Status::Ok();
}

ChaseLimits CapsFor(const FuzzOptions& options) {
  ChaseLimits limits;
  limits.max_rounds = options.max_rounds;
  limits.max_facts = options.max_facts;
  limits.budget.max_steps = options.max_steps;
  limits.threads = 1;
  return limits;
}

/// Canonicalizes the thread/spill-specific tokens of `# status:` lines so
/// runs that must agree on everything else compare byte-for-byte.
std::string NormalizeStatus(const std::string& text) {
  std::string out;
  std::istringstream in(text);
  std::string line;
  bool first = true;
  while (std::getline(in, line)) {
    if (line.rfind("# status:", 0) == 0) {
      std::istringstream tokens(line);
      std::string token, rebuilt;
      while (tokens >> token) {
        if (token.rfind("threads=", 0) == 0) token = "threads=*";
        if (token.rfind("spill_segments=", 0) == 0 ||
            token.rfind("spill_bytes=", 0) == 0) {
          continue;
        }
        if (!rebuilt.empty()) rebuilt += ' ';
        rebuilt += token;
      }
      line = rebuilt;
    }
    if (!first) out += '\n';
    out += line;
    first = false;
  }
  if (!text.empty() && text.back() == '\n') out += '\n';
  return out;
}

struct CliRun {
  int code = -1;
  std::string out;
  std::string err;
};

/// The per-run working files, unique per battery execution so shrinker
/// re-runs and concurrent campaigns never collide.
struct RunDir {
  fs::path dir;
  std::string program_path, instance_path, checkpoint_path, spill_dir;

  ~RunDir() {
    if (!dir.empty()) {
      std::error_code ec;
      fs::remove_all(dir, ec);
    }
  }
};

/// Replaces every occurrence of the scratch directory in `text` with
/// "$SCRATCH" so violation details (and hence the verdict log) stay
/// byte-identical across machines and re-runs.
std::string ScrubPaths(std::string text, const RunDir& run) {
  if (run.dir.empty()) return text;
  const std::string needle = run.dir.string();
  for (size_t at = text.find(needle); at != std::string::npos;
       at = text.find(needle, at)) {
    text.replace(at, needle.size(), "$SCRATCH");
    at += 8;
  }
  return text;
}

class BatteryRunner {
 public:
  BatteryRunner(const FuzzScenario& scenario, const FuzzOptions& options,
                const std::string& only)
      : scenario_(scenario), options_(options), only_(only) {
    verdict_.scenario = scenario;
  }

  ScenarioVerdict Run() {
    Workload parsed;
    Status parse_status = BuildWorkload(scenario_, &parsed);
    if (Wants("parse")) {
      if (!parse_status.ok()) {
        return Fail("parse", parse_status.ToString());
      }
    }
    if (!parse_status.ok()) return verdict_;  // nothing else can run

    if (!Analysis(parsed)) return verdict_;
    if (!PolyTermination()) return verdict_;
    if (!EngineAgreement(parsed)) return verdict_;

    // CLI-level invariants need a scratch workspace and a CLI runner.
    if (!options_.run_cli || options_.scratch_dir.empty()) return verdict_;
    if (!PrepareRunDir()) return verdict_;
    if (!LintAccepts()) return verdict_;
    if (!GoldenAndIdentity()) return verdict_;
    if (!FaultInvariants()) return verdict_;
    return verdict_;
  }

 private:
  /// True when the battery should run (and record) this invariant.
  bool Wants(const std::string& name) {
    if (!only_.empty() && only_ != name) return false;
    verdict_.invariants.push_back(name);
    return true;
  }

  ScenarioVerdict Fail(std::string invariant, std::string detail) {
    verdict_.violation =
        Violation{std::move(invariant), ScrubPaths(std::move(detail), run_)};
    return verdict_;
  }

  CliRun Cli(const std::vector<std::string>& args) {
    std::ostringstream out, err;
    CliRun run;
    run.code = options_.run_cli(args, out, err);
    run.out = out.str();
    run.err = err.str();
    return run;
  }

  std::vector<std::string> ChaseCmd(
      const std::vector<std::string>& extra) const {
    std::vector<std::string> args = {"chase",
                                     run_.program_path,
                                     run_.instance_path,
                                     "--seed",
                                     Cat(scenario_.seed),
                                     "--max-rounds",
                                     Cat(options_.max_rounds),
                                     "--max-facts",
                                     Cat(options_.max_facts),
                                     "--max-steps",
                                     Cat(options_.max_steps)};
    args.insert(args.end(), extra.begin(), extra.end());
    return args;
  }

  // --- in-process invariants ----------------------------------------------

  bool Analysis(Workload& w) {
    ProgramAnalysis analysis = AnalyzeProgram(&w.arena, &w.vocab, w.program);
    if (Wants("witness-replay")) {
      if (scenario_.inject_bug == "tamper-witness") {
        // The seeded analyzer defect: a complexity bound that does not
        // match the graph it claims to describe.
        if (analysis.complexity.tier == ComplexityTier::kPolynomial) {
          analysis.complexity.rank += 1;
        } else if (!analysis.complexity.cycle.empty()) {
          analysis.complexity.cycle.pop_back();
        } else {
          analysis.complexity.tier = ComplexityTier::kPolynomial;
        }
      }
      Status replay = ReplayAllWitnesses(w.arena, analysis);
      if (!replay.ok()) {
        Fail("witness-replay", replay.ToString());
        return false;
      }
    }
    bool wa = analysis.verdict(Criterion::kWeaklyAcyclic).holds;
    bool wg = analysis.verdict(Criterion::kWeaklyGuarded).holds;
    bool sj = analysis.verdict(Criterion::kStickyJoin).holds;
    bool tg = analysis.verdict(Criterion::kTriangularlyGuarded).holds;
    if (Wants("tg-subsumption")) {
      if ((wa || wg || sj) && !tg) {
        Fail("tg-subsumption",
             Cat("weakly-acyclic=", wa, " weakly-guarded=", wg,
                 " sticky-join=", sj, " but triangularly-guarded=false"));
        return false;
      }
    }
    poly_tier_ = analysis.complexity.tier == ComplexityTier::kPolynomial;
    if (Wants("tier-wa-agreement")) {
      if (poly_tier_ != wa) {
        Fail("tier-wa-agreement",
             Cat("polynomial-tier=", poly_tier_, " weakly-acyclic=", wa));
        return false;
      }
    }
    return true;
  }

  bool PolyTermination() {
    if (!Wants("poly-termination")) return true;
    if (!poly_tier_) return true;
    Workload w;
    if (!BuildWorkload(scenario_, &w).ok()) return true;
    ChaseResult result =
        Chase(&w.arena, &w.vocab, w.merged, w.input, CapsFor(options_));
    if (result.stop_reason != StopReason::kFixpoint) {
      Fail("poly-termination",
           Cat("polynomial tier but chase stopped by ",
               ToString(result.stop_reason), " after ", result.rounds,
               " rounds, ", result.facts_created, " facts"));
      return false;
    }
    return true;
  }

  /// Renders the null-free answer tuples of `w.query` over `instance`,
  /// sorted, one per line.
  static std::string GroundAnswers(const Workload& w,
                                   const Instance& instance) {
    std::vector<std::string> rows;
    for (const std::vector<Value>& tuple :
         Evaluate(w.arena, instance, *w.query)) {
      bool ground = std::all_of(tuple.begin(), tuple.end(),
                                [](Value v) { return v.is_constant(); });
      if (!ground) continue;
      std::string row;
      for (Value v : tuple) {
        if (!row.empty()) row += ", ";
        row += instance.ValueToString(v);
      }
      rows.push_back(std::move(row));
    }
    std::sort(rows.begin(), rows.end());
    rows.erase(std::unique(rows.begin(), rows.end()), rows.end());
    std::string out;
    for (const std::string& row : rows) {
      out += row;
      out += '\n';
    }
    return out;
  }

  bool EngineAgreement(const Workload& parsed) {
    if (!Wants("engine-agreement")) return true;
    // Applies to first-order programs with a query: the Skolem and the
    // restricted chase then both compute universal models, so the
    // null-free certain answers must agree whenever both terminate.
    if (!parsed.query || parsed.tgds.size() != parsed.program.dependencies.size()) {
      return true;
    }
    Workload a, b;
    if (!BuildWorkload(scenario_, &a).ok()) return true;
    if (!BuildWorkload(scenario_, &b).ok()) return true;
    ChaseResult skolem =
        Chase(&a.arena, &a.vocab, a.merged, a.input, CapsFor(options_));
    if (skolem.stop_reason != StopReason::kFixpoint) return true;
    ChaseResult restricted = RestrictedChaseTgds(
        &b.arena, &b.vocab, b.tgds, b.input, CapsFor(options_));
    if (restricted.stop_reason != StopReason::kFixpoint) return true;
    std::string from_skolem = GroundAnswers(a, skolem.instance);
    std::string from_restricted = GroundAnswers(b, restricted.instance);
    if (from_skolem != from_restricted) {
      Fail("engine-agreement",
           Cat("certain answers disagree between the Skolem and restricted "
               "chase\nskolem:\n",
               from_skolem, "restricted:\n", from_restricted));
      return false;
    }
    return true;
  }

  // --- CLI-level invariants -----------------------------------------------

  bool PrepareRunDir() {
    static std::atomic<uint64_t> counter{0};
    uint64_t id = counter.fetch_add(1) + 1;
    run_.dir = fs::path(options_.scratch_dir) /
               Cat("run", static_cast<uint64_t>(getpid()), "_", id);
    std::error_code ec;
    fs::create_directories(run_.dir, ec);
    if (ec) return false;  // no workspace: skip CLI invariants
    run_.program_path = (run_.dir / "prog.tgd").string();
    run_.instance_path = (run_.dir / "inst.facts").string();
    run_.checkpoint_path = (run_.dir / "ck.snap").string();
    run_.spill_dir = (run_.dir / "spill").string();
    std::ofstream(run_.program_path) << scenario_.program;
    std::ofstream(run_.instance_path) << scenario_.instance;
    return true;
  }

  bool LintAccepts() {
    if (!Wants("lint-accepts")) return true;
    CliRun lint = Cli({"lint", run_.program_path, "--fail-on=error"});
    if (lint.code != 0) {
      Fail("lint-accepts", Cat("lint exited ", lint.code,
                               " on a generated (valid) program: ",
                               lint.err.substr(0, 400)));
      return false;
    }
    return true;
  }

  bool GoldenAndIdentity() {
    golden_ = Cli(ChaseCmd({}));
    if (Wants("determinism")) {
      CliRun again = Cli(ChaseCmd({}));
      if (again.code != golden_.code || again.out != golden_.out) {
        Fail("determinism",
             Cat("two identical chase runs disagree (exit ", golden_.code,
                 " vs ", again.code, ")"));
        return false;
      }
    }
    std::string golden_norm = NormalizeStatus(golden_.out);
    if (Wants("thread-identity")) {
      CliRun threaded = Cli(ChaseCmd({"--threads", Cat(options_.threads)}));
      if (threaded.code != golden_.code ||
          NormalizeStatus(threaded.out) != golden_norm) {
        Fail("thread-identity",
             Cat("--threads ", options_.threads,
                 " diverges from --threads 1 (exit ", golden_.code, " vs ",
                 threaded.code, ")"));
        return false;
      }
    }
    if (Wants("spill-identity")) {
      std::error_code ec;
      fs::create_directories(run_.spill_dir, ec);
      CliRun spilled = Cli(
          ChaseCmd({"--spill-dir", run_.spill_dir, "--spill-segment-kb", "4"}));
      if (spilled.code != golden_.code ||
          NormalizeStatus(spilled.out) != golden_norm) {
        Fail("spill-identity",
             Cat("spill run diverges from in-core (exit ", golden_.code,
                 " vs ", spilled.code, ")"));
        return false;
      }
    }
    return true;
  }

  /// Resumes from the checkpoint and compares against the golden run.
  /// Only called when the golden run reached a fixpoint, so the result
  /// must be byte-identical whatever point the checkpoint froze.
  bool ResumeMatchesGolden(const char* invariant) {
    CliRun resumed = Cli({"chase", "--resume", run_.checkpoint_path,
                          "--max-rounds", Cat(options_.max_rounds),
                          "--max-facts", Cat(options_.max_facts),
                          "--max-steps", Cat(options_.max_steps)});
    if (resumed.code != golden_.code || resumed.out != golden_.out) {
      Fail(invariant, Cat("resume after ", ToString(scenario_.fault),
                          " diverges from the uninterrupted run (exit ",
                          golden_.code, " vs ", resumed.code, ")"));
      return false;
    }
    return true;
  }

  bool FaultInvariants() {
    const FaultSchedule& fault = scenario_.fault;
    bool tear = scenario_.inject_bug == "torn-checkpoint";
    switch (fault.kind) {
      case FaultSchedule::Kind::kNone:
        return true;
      case FaultSchedule::Kind::kStepBudget: {
        if (!Wants("budget-resume")) return true;
        if (golden_.code != 0) return true;  // needs a terminating golden
        CliRun capped = Cli({"chase", run_.program_path, run_.instance_path,
                             "--seed", Cat(scenario_.seed), "--max-rounds",
                             Cat(options_.max_rounds), "--max-facts",
                             Cat(options_.max_facts), "--max-steps",
                             Cat(fault.value), "--checkpoint",
                             run_.checkpoint_path,
                             "--checkpoint-every-steps", "1"});
        if (capped.code != 0 && capped.code != 4) {
          Fail("budget-resume",
               Cat("budget-capped run exited ", capped.code,
                   " (want 0 or 4): ", capped.err.substr(0, 400)));
          return false;
        }
        if (!fs::exists(run_.checkpoint_path)) return true;  // ran 0 steps
        return ResumeMatchesGolden("budget-resume");
      }
      case FaultSchedule::Kind::kCrashAt: {
        if (!options_.fork_faults) return true;
        if (!Wants("crash-resume")) return true;
        if (golden_.code != 0) return true;
        pid_t pid = fork();
        if (pid < 0) return true;
        if (pid == 0) {
          setenv("TGDKIT_CRASH_AT", Cat(fault.value).c_str(), 1);
          setenv("TGDKIT_CRASH_PHASE", fault.phase.c_str(), 1);
          std::ostringstream out, err;
          options_.run_cli(
              ChaseCmd({"--checkpoint", run_.checkpoint_path,
                        "--checkpoint-every-steps", "1"}),
              out, err);
          _exit(0);
        }
        int wstatus = 0;
        waitpid(pid, &wstatus, 0);
        bool killed = WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL;
        bool clean = WIFEXITED(wstatus) && WEXITSTATUS(wstatus) == 0;
        if (!killed && !clean) {
          Fail("crash-resume",
               Cat("chase child under ", ToString(fault),
                   " neither died by SIGKILL nor exited cleanly (wstatus ",
                   wstatus, ")"));
          return false;
        }
        if (!fs::exists(run_.checkpoint_path)) return true;  // died pre-write
        return ResumeMatchesGolden("crash-resume");
      }
      case FaultSchedule::Kind::kFailWriteAt: {
        if (!Wants("fail-write-durability")) return true;
        bool arm = options_.fork_faults;
        int child_code = 0;
        if (arm) {
          pid_t pid = fork();
          if (pid < 0) return true;
          if (pid == 0) {
            setenv("TGDKIT_FAIL_WRITE_AT", Cat(fault.value).c_str(), 1);
            std::ostringstream out, err;
            int code = options_.run_cli(
                ChaseCmd({"--checkpoint", run_.checkpoint_path,
                          "--checkpoint-every-steps", "1"}),
                out, err);
            _exit(code & 0xff);
          }
          int wstatus = 0;
          waitpid(pid, &wstatus, 0);
          if (!WIFEXITED(wstatus)) {
            Fail("fail-write-durability",
                 Cat("chase child under ", ToString(fault),
                     " died abnormally (wstatus ", wstatus, ")"));
            return false;
          }
          child_code = WEXITSTATUS(wstatus);
        } else {
          CliRun plain = Cli(ChaseCmd({"--checkpoint", run_.checkpoint_path,
                                       "--checkpoint-every-steps", "1"}));
          child_code = plain.code;
        }
        if (child_code != 0 && child_code != 4) {
          Fail("fail-write-durability",
               Cat("chase under ", ToString(fault), " exited ", child_code,
                   " (want 0 or 4: a refused write is a resource stop)"));
          return false;
        }
        if (!fs::exists(run_.checkpoint_path)) return true;
        if (tear) {
          // The seeded durability defect: the checkpoint "survived" only
          // as a torn prefix, as if the writer had skipped the atomic
          // fsync+rename step.
          Result<std::string> bytes = ReadWholeFile(run_.checkpoint_path);
          if (bytes.ok() && bytes->size() > 4) {
            std::ofstream torn(run_.checkpoint_path,
                               std::ios::binary | std::ios::trunc);
            torn << bytes->substr(0, bytes->size() * 3 / 5);
          }
        }
        Result<ChaseSnapshot> snap = LoadChaseSnapshot(run_.checkpoint_path);
        if (!snap.ok()) {
          Fail("fail-write-durability",
               Cat("checkpoint exists but does not load after ",
                   ToString(fault), ": ", snap.status().ToString()));
          return false;
        }
        if (golden_.code != 0) return true;
        return ResumeMatchesGolden("fail-write-durability");
      }
    }
    return true;
  }

  static Result<std::string> ReadWholeFile(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    if (!in) return Status::NotFound(Cat("cannot open ", path));
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  const FuzzScenario& scenario_;
  const FuzzOptions& options_;
  const std::string& only_;
  ScenarioVerdict verdict_;
  RunDir run_;
  CliRun golden_;
  bool poly_tier_ = false;
};

}  // namespace

ScenarioVerdict RunScenario(const FuzzScenario& scenario,
                            const FuzzOptions& options,
                            const std::string& only_invariant) {
  BatteryRunner runner(scenario, options, only_invariant);
  return runner.Run();
}

}  // namespace tgdkit
