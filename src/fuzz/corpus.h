// Self-contained fuzz reproducers (docs/FUZZING.md).
//
// A reproducer is one text file carrying everything needed to re-run a
// minimized failing scenario: provenance header (seed, shape, invariant,
// fault schedule, seeded defect), then [program] / [instance] / [query]
// sections. `tgdkit fuzz --replay <file|dir>` re-runs them as a CI gate;
// corpus/regressions/ is the checked-in corpus.
#pragma once

#include <string>
#include <vector>

#include "base/status.h"
#include "fuzz/fuzz.h"

namespace tgdkit {

/// Renders `scenario` + `violation` as a reproducer file.
std::string RenderReproducer(const FuzzScenario& scenario,
                             const Violation& violation);

/// Parses a reproducer. On success fills `*invariant` with the recorded
/// failing invariant name.
Result<FuzzScenario> ParseReproducer(const std::string& text,
                                     std::string* invariant);

/// Writes the reproducer into `dir` as seed<N>-<invariant>.repro,
/// creating the directory if needed. Fills `*path` with the file written.
Status WriteReproducer(const std::string& dir, const FuzzScenario& scenario,
                       const Violation& violation, std::string* path);

/// Lists *.repro files under `dir`, sorted by name. Empty when the
/// directory does not exist.
std::vector<std::string> ListReproducers(const std::string& dir);

}  // namespace tgdkit
