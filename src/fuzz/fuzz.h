// Pipeline-wide chaos fuzzing (docs/FUZZING.md).
//
// Per seed the campaign generates an adversarial scenario (src/gen), runs
// parse → lint → classify → chase (Skolem + restricted, in-core + spill,
// 1..N threads) → certain answers, and cross-checks the system's promises
// as machine-checkable invariants: witness/complexity replay accepts,
// polynomial tier ⇒ chase fixpoint, thread-count and spill byte-identity,
// kill-and-resume convergence under randomized TGDKIT_CRASH_AT /
// TGDKIT_FAIL_WRITE_AT / SIGKILL / budget-exhaustion fault schedules, and
// Skolem-vs-restricted agreement on certain answers.
//
// On a violation, src/fuzz/shrink.h minimizes the (ruleset, instance,
// fault schedule) triple and src/fuzz/corpus.h writes a self-contained
// reproducer into corpus/regressions/ that `tgdkit fuzz --replay` re-runs
// as a CI gate.
//
// The driver is CLI-agnostic: callers (src/api) inject a `run_cli`
// callback, so the end-to-end invariants compare the system's actual
// stdout contract without a dependency cycle.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <ostream>
#include <string>
#include <vector>

#include "gen/generators.h"

namespace tgdkit {

/// One injected fault for a scenario run. Crash and fail-write faults
/// arm the src/base/fileio.h hooks inside a forked child; the step
/// budget runs in-process.
struct FaultSchedule {
  enum class Kind : uint8_t {
    kNone = 0,
    kCrashAt,      // TGDKIT_CRASH_AT=<value>, SIGKILL at a durable write
    kFailWriteAt,  // TGDKIT_FAIL_WRITE_AT=<value>, simulated ENOSPC
    kStepBudget,   // --max-steps <value>, then resume
  };
  Kind kind = Kind::kNone;
  uint64_t value = 0;  // write ordinal or step cap
  std::string phase;   // crash phase: begin|mid|commit (kCrashAt only)
};

/// Renders e.g. "none", "crash-at 2 mid", "fail-write-at 3",
/// "step-budget 5". ParseFaultSchedule is the exact inverse.
std::string ToString(const FaultSchedule& fault);
bool ParseFaultSchedule(const std::string& text, FaultSchedule* out);

/// The minimizable (ruleset, instance, fault schedule) triple plus its
/// provenance. `inject_bug` deliberately seeds a defect so the
/// catch→shrink→reproduce loop can be tested end to end:
///   "tamper-witness"   — corrupt the complexity bound before replay;
///   "torn-checkpoint"  — tear the checkpoint file after the run, as if
///                        the writer had skipped the fsync+rename step.
struct FuzzScenario {
  uint64_t seed = 0;
  AdversarialShape shape = AdversarialShape::kSkolemTower;
  std::string program;
  std::string instance;
  std::string query;
  bool may_diverge = false;
  FaultSchedule fault;
  std::string inject_bug;
};

/// A failed invariant: a stable machine name plus a human detail.
struct Violation {
  std::string invariant;
  std::string detail;
};

/// Campaign configuration. The chase caps apply to every engine run in
/// the battery; they use steps/rounds/facts only (never wall-clock), so
/// the verdict log is deterministic for a given seed.
struct FuzzOptions {
  uint64_t seeds = 8;
  uint64_t seed_start = 1;
  std::optional<AdversarialShape> shape;  // unset: rotate over families
  AdversarialConfig gen;

  /// Fork-based fault injection allowed (must be false in shared
  /// processes, e.g. under `tgdkit serve`).
  bool fork_faults = true;
  /// Workspace for scenario files, checkpoints and spill dirs. CLI-level
  /// invariants are skipped when empty.
  std::string scratch_dir;
  /// Where reproducers land ("" = don't write).
  std::string corpus_dir;
  /// Cap on shrinker re-executions per violation.
  uint32_t shrink_attempts = 256;
  /// Seeded defect (see FuzzScenario::inject_bug).
  std::string inject_bug;

  uint64_t max_rounds = 40;
  uint64_t max_facts = 20000;
  uint64_t max_steps = 200000;
  uint32_t threads = 3;

  /// Runs one CLI command; injected by src/api (RunCommand). When null,
  /// the CLI-level invariants are skipped.
  std::function<int(const std::vector<std::string>& args, std::ostream& out,
                    std::ostream& err)>
      run_cli;
};

/// The outcome of one scenario: which invariants ran, and the first
/// violation if any.
struct ScenarioVerdict {
  FuzzScenario scenario;
  std::vector<std::string> invariants;
  std::optional<Violation> violation;
};

/// Deterministically derives the scenario (shape, program, instance,
/// query, fault schedule) for `seed`.
FuzzScenario MakeScenario(uint64_t seed, const FuzzOptions& options);

/// Runs the invariant battery over one scenario, stopping at the first
/// violation. When `only_invariant` is non-empty, runs just that
/// invariant (the shrinker's mode).
ScenarioVerdict RunScenario(const FuzzScenario& scenario,
                            const FuzzOptions& options,
                            const std::string& only_invariant = "");

}  // namespace tgdkit
