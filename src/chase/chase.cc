#include "chase/chase.h"

#include <algorithm>
#include <atomic>
#include <cassert>
#include <thread>

#include "base/fileio.h"
#include "base/strings.h"

namespace tgdkit {

namespace {

/// Root-candidate / delta rows per staging slice. Fixed independently of
/// the thread count: the slice list, the per-slice step totals, and the
/// merge-time PollN sequence are therefore identical for every `threads`
/// setting — which is what makes N-thread runs byte-identical to serial
/// ones, including governor slow-path check points, checkpoint-hook
/// firing steps, and snapshot contents.
constexpr size_t kSliceRows = 64;

unsigned ResolveThreads(uint32_t requested) {
  if (requested != 0) return requested;
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : hw;
}

/// First-cause abort latch shared by one round's staging workers. Only
/// inherently time-based stops (deadline, cancellation) abort staging from
/// inside a worker; deterministic budgets (steps, memory, structural caps)
/// are enforced solely at the serial merge so their trip points cannot
/// depend on scheduling.
struct StageAbort {
  std::atomic<bool> requested{false};
  std::atomic<uint8_t> reason{static_cast<uint8_t>(StopReason::kFixpoint)};

  void Request(StopReason r) {
    reason.store(static_cast<uint8_t>(r), std::memory_order_relaxed);
    requested.store(true, std::memory_order_release);
  }
  bool Requested() const {
    return requested.load(std::memory_order_relaxed);
  }
  StopReason Reason() const {
    return static_cast<StopReason>(reason.load(std::memory_order_relaxed));
  }
};

/// The advisory check workers run at slice starts and every
/// SearchControls::kPeriodicCheckStride matcher probes. Reads only
/// immutable governor state (start time) and atomics, so it is safe from
/// any thread; the engine re-records the cause via Halt after the barrier.
std::function<bool()> MakePeriodicCheck(const ChaseLimits& limits,
                                        const ResourceGovernor& governor,
                                        StageAbort* abort) {
  return [&limits, &governor, abort] {
    if (abort->Requested()) return false;
    if (limits.budget.cancel.cancelled()) {
      abort->Request(StopReason::kCancelled);
      return false;
    }
    if (limits.budget.deadline_ms != 0 &&
        governor.elapsed_ms() >=
            static_cast<double>(limits.budget.deadline_ms)) {
      abort->Request(StopReason::kDeadline);
      return false;
    }
    return true;
  };
}

/// One unit of staged matching: a contiguous range of root candidates
/// (full evaluation) or of one pivot's delta rows (semi-naive), or a
/// whole un-shardable search (query with no atoms).
struct MatchSlice {
  size_t part = 0;  // rule part / tgd index
  bool whole_search = false;
  bool delta = false;
  size_t pivot = 0;
  size_t begin = 0;
  size_t end = 0;
};

/// Per-slice output slot: the matched assignments in enumeration order
/// plus the staged step count (matcher probes, and for delta slices one
/// step per delta row scanned — the serial engine's historical
/// accounting). Charged to the governor at merge time.
struct SliceResult {
  std::vector<Assignment> matches;
  uint64_t steps = 0;
};

/// Appends `slices` entries covering [begin, end) in kSliceRows chunks.
void PushRowSlices(size_t part, bool delta, size_t pivot, size_t begin,
                   size_t end, std::vector<MatchSlice>* slices) {
  for (size_t b = begin; b < end; b += kSliceRows) {
    MatchSlice s;
    s.part = part;
    s.delta = delta;
    s.pivot = pivot;
    s.begin = b;
    s.end = std::min(end, b + kSliceRows);
    slices->push_back(s);
  }
}

/// Stages one slice: read-only matching against the round-frozen instance
/// into `out`. `head_filter` (restricted chase) drops assignments whose
/// head already holds; `pivot_atom` must be set for delta slices. Runs
/// concurrently with itself on other slices — everything it touches is
/// immutable, per-slice, or atomic.
void RunSlice(const Matcher& matcher, const Matcher::RootSplit& split,
              const TermArena& arena, const Instance& instance,
              const Atom* pivot_atom, const Matcher* head_filter,
              const MatchSlice& slice, const std::function<bool()>& periodic,
              const StageAbort& abort, SliceResult* out) {
  if (!periodic()) return;
  SearchControls controls;
  controls.probe_counter = &out->steps;
  controls.periodic_check = periodic;
  std::function<bool(const Assignment&)> emit = [&](const Assignment& a) {
    if (head_filter == nullptr || !head_filter->Exists(a)) {
      out->matches.push_back(a);
    }
    return !abort.Requested();
  };
  if (slice.whole_search) {
    matcher.ForEach({}, emit, controls);
    return;
  }
  if (!slice.delta) {
    for (size_t i = slice.begin; i < slice.end; ++i) {
      matcher.ForEachFromRoot({}, split, split.Row(i), emit, controls);
      if (abort.Requested()) return;
    }
    return;
  }
  for (size_t row = slice.begin; row < slice.end; ++row) {
    ++out->steps;  // one step per delta row scanned
    if (abort.Requested()) return;
    std::span<const Value> tuple =
        instance.Tuple(pivot_atom->relation, static_cast<uint32_t>(row));
    Assignment seed;
    bool consistent = true;
    for (size_t i = 0; i < pivot_atom->args.size(); ++i) {
      TermId t = pivot_atom->args[i];
      if (arena.IsConstant(t)) {
        if (Value::Constant(arena.symbol(t)) != tuple[i]) {
          consistent = false;
          break;
        }
      } else {
        VariableId v = arena.symbol(t);
        auto [it, inserted] = seed.emplace(v, tuple[i]);
        if (!inserted && it->second != tuple[i]) {
          consistent = false;
          break;
        }
      }
    }
    if (!consistent) continue;
    matcher.ForEach(seed, emit, controls);
  }
}

/// Round/fact bookkeeping shared by ChaseEngine and RestrictedChaseTgds:
/// both engines historically duplicated these checks; they now funnel
/// through the governor so every stop carries one StopReason.
class ChaseGuard {
 public:
  ChaseGuard(const ChaseLimits& limits, ResourceGovernor* governor)
      : limits_(limits), governor_(governor) {}

  /// Gate for starting another round: false on the round cap or when the
  /// cross-cutting budget (deadline/bytes/steps/cancel) is exhausted.
  bool BeginRound(uint64_t completed_rounds) {
    if (completed_rounds >= limits_.max_rounds) {
      governor_->MarkExhausted(StopReason::kRoundLimit);
      return false;
    }
    return governor_->CheckNow();
  }

  /// Gate for committing one trigger's head atomically: false when the
  /// commit would push the instance past the fact cap.
  bool CanCommit(size_t current_facts, size_t incoming) {
    if (current_facts + incoming > limits_.max_facts) {
      governor_->MarkExhausted(StopReason::kFactLimit);
      return false;
    }
    return true;
  }

 private:
  const ChaseLimits& limits_;
  ResourceGovernor* governor_;
};

}  // namespace

ChaseEngine::ChaseEngine(TermArena* arena, Vocabulary* vocab,
                         const SoTgd& rules, const Instance& input,
                         ChaseLimits limits)
    : arena_(arena),
      vocab_(vocab),
      rules_(rules),
      limits_(limits),
      governor_(limits.budget),
      pool_(std::make_unique<ThreadPool>(ResolveThreads(limits.threads))),
      instance_(&input.vocab()) {
  TermArena* arena_ptr = arena_;
  governor_.AddMemorySource([arena_ptr] { return arena_ptr->ApproxBytes(); });
  Instance* instance_ptr = &instance_;
  governor_.AddMemorySource(
      [instance_ptr] { return instance_ptr->ApproxBytes(); });
  if (!limits_.spill_dir.empty()) {
    // The out-of-core backend must be selected before the first fact
    // lands (EnableSpill requires an empty store), i.e. before CopyFacts.
    Status enabled = MakeDirectories(limits_.spill_dir);
    if (enabled.ok()) {
      SpillConfig config;
      config.dir = limits_.spill_dir;
      config.segment_bytes = limits_.spill_segment_kb * 1024;
      // Seal-time soft cap at half the byte budget: CopyFacts and round
      // flushes never poll the governor between insertions, so sealing
      // itself sheds cold segments before the next slow-path sample.
      config.max_resident_bytes = limits_.budget.max_memory_bytes / 2;
      enabled = instance_.EnableSpill(config);
    }
    assert(enabled.ok() && "spill setup failed");
    (void)enabled;
    InstallSpillPressureHandler();
  }
  CopyFacts(input, &instance_);
  null_provenance_.assign(instance_.num_nulls(), kInvalidTerm);
}

void ChaseEngine::InstallSpillPressureHandler() {
  governor_.SetPressureHandler([this](uint64_t target_bytes) {
    // Evict to half the budget so one relief buys lasting headroom
    // instead of re-entering the slow path over-budget every sample.
    instance_.EvictToBudget(target_bytes / 2);
  });
}

ChaseEngine::ChaseEngine(TermArena* arena, Vocabulary* vocab,
                         const SoTgd& rules, ChaseEngineState&& state,
                         ChaseLimits limits)
    : arena_(arena),
      vocab_(vocab),
      rules_(rules),
      limits_(limits),
      governor_(limits.budget),
      pool_(std::make_unique<ThreadPool>(ResolveThreads(limits.threads))),
      instance_(std::move(state.instance)) {
  TermArena* arena_ptr = arena_;
  governor_.AddMemorySource([arena_ptr] { return arena_ptr->ApproxBytes(); });
  Instance* instance_ptr = &instance_;
  governor_.AddMemorySource(
      [instance_ptr] { return instance_ptr->ApproxBytes(); });
  term_to_value_.insert(state.term_to_value.begin(),
                        state.term_to_value.end());
  null_provenance_ = std::move(state.null_provenance);
  for (const auto& [rel, count] : state.rows_before_prev_round) {
    rows_before_prev_round_[rel] = count;
  }
  for (const auto& [rel, count] : state.rows_before_current_round) {
    rows_before_current_round_[rel] = count;
  }
  rounds_ = state.rounds;
  facts_created_ = state.facts_created;
  governor_.RestorePriorConsumption(state.governor_steps,
                                    state.governor_charged_bytes);
  if (instance_.spill_enabled()) {
    // The snapshot loader restored the spilled store (with the recorded
    // segment geometry) but every restored segment is still hot; install
    // this run's budget cap and shed down to it before the first round.
    uint64_t cap = limits_.budget.max_memory_bytes / 2;
    instance_.SetSpillResidentCap(cap);
    InstallSpillPressureHandler();
    if (cap != 0) instance_.EvictToBudget(cap);
  }
  if (state.done && state.stop_reason == ChaseStop::kFixpoint) {
    // A completed chase stays completed; there is nothing to resume.
    done_ = true;
    stop_reason_ = ChaseStop::kFixpoint;
  } else {
    // Re-open a resource-stopped (or mid-run) state: the next Step()
    // replays the interrupted round under the restored windows.
    done_ = false;
    stop_reason_ = ChaseStop::kFixpoint;
    replay_round_ = rounds_ > 0;
  }
}

ChaseEngineState ChaseEngine::CaptureState() const {
  ChaseEngineState state(&instance_.vocab());
  bool torn = rounds_ > 0 && !(done_ && stop_reason_ == ChaseStop::kFixpoint) &&
              InstanceGrewSinceRoundStart();
  uint64_t dropped_facts = 0;
  if (instance_.spill_enabled()) {
    // Spill mode: no deep copy of a mostly-on-disk store. The snapshot
    // serializer flushes dirty segments and references the immutable
    // segment files by name, rendering only the mutable remainder as
    // text. A torn capture records the round-start row counts; the
    // writer truncates to them (the redone round re-derives the rest).
    state.spill_instance = &instance_;
    if (torn) {
      for (RelationId rel : instance_.ActiveRelations()) {
        auto it = rows_before_current_round_.find(rel);
        uint64_t keep =
            it == rows_before_current_round_.end() ? 0 : it->second;
        state.spill_keep_rows.emplace_back(rel, keep);
        dropped_facts += instance_.NumTuples(rel) - keep;
      }
    }
  } else if (!torn) {
    state.instance = instance_;
  } else {
    // The current round has (partially) committed — e.g. the run halted
    // inside FlushPending, or the capture fired at the boundary right
    // after a flush. Replaying over those commits would enumerate extra
    // triggers and break determinism, so roll the instance back to the
    // round's start; the resumed engine redoes the round from scratch.
    // The term-to-value memo and the allocated nulls are kept: the redo
    // re-derives the same facts with the same nulls, in the same order.
    state.instance.EnsureNulls(instance_.num_nulls());
    for (uint32_t i = 0; i < instance_.num_nulls(); ++i) {
      state.instance.SetNullLabel(i, instance_.NullLabel(i));
    }
    for (RelationId rel : instance_.ActiveRelations()) {
      auto it = rows_before_current_round_.find(rel);
      size_t keep = it == rows_before_current_round_.end() ? 0 : it->second;
      for (size_t row = 0; row < keep; ++row) {
        Fact f;
        f.relation = rel;
        std::span<const Value> tuple =
            instance_.Tuple(rel, static_cast<uint32_t>(row));
        f.args.assign(tuple.begin(), tuple.end());
        state.instance.AddFact(f);
      }
      dropped_facts += instance_.NumTuples(rel) - keep;
    }
  }
  state.term_to_value.assign(term_to_value_.begin(), term_to_value_.end());
  std::sort(state.term_to_value.begin(), state.term_to_value.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  state.null_provenance = null_provenance_;
  state.rows_before_prev_round.assign(rows_before_prev_round_.begin(),
                                      rows_before_prev_round_.end());
  std::sort(state.rows_before_prev_round.begin(),
            state.rows_before_prev_round.end());
  state.rows_before_current_round.assign(rows_before_current_round_.begin(),
                                         rows_before_current_round_.end());
  std::sort(state.rows_before_current_round.begin(),
            state.rows_before_current_round.end());
  state.done = done_;
  state.stop_reason = stop_reason_;
  state.rounds = rounds_;
  state.facts_created =
      dropped_facts > facts_created_ ? 0 : facts_created_ - dropped_facts;
  state.governor_steps = governor_.total_steps();
  state.governor_charged_bytes = governor_.total_charged_bytes();
  return state;
}

void ChaseEngine::SetCheckpointHook(
    uint64_t every_steps, uint64_t every_ms,
    std::function<void(const ChaseEngine&)> hook) {
  checkpoint_hook_ = std::move(hook);
  governor_.SetCheckpointHook(every_steps, every_ms, [this] {
    // During FlushPending the instance holds a half-committed round;
    // capturing it would not replay deterministically. Defer to the
    // round's end (a safe point by construction).
    if (in_flush_) {
      deferred_checkpoint_ = true;
    } else {
      checkpoint_hook_(*this);
    }
  });
}

void ChaseEngine::Halt(StopReason reason) {
  governor_.MarkExhausted(reason);
  stop_reason_ = governor_.reason();
  done_ = true;
}

TermId ChaseEngine::NullProvenance(uint32_t null_index) const {
  if (null_index >= null_provenance_.size()) return kInvalidTerm;
  return null_provenance_[null_index];
}

TermId ChaseEngine::ValueToTerm(Value v) {
  if (v.is_constant()) return arena_->MakeConstant(v.index());
  // Input nulls behave like opaque individuals: represent null i as the
  // 0-ary function term @innull<i>().
  TermId provenance = NullProvenance(v.index());
  if (provenance != kInvalidTerm) return provenance;
  FunctionId f = vocab_->InternFunction(Cat("@innull", v.index()), 0);
  TermId t = arena_->MakeFunction(f, {});
  term_to_value_.emplace(t, v);
  if (v.index() < null_provenance_.size()) {
    null_provenance_[v.index()] = t;
  }
  return t;
}

Value ChaseEngine::TermToValue(TermId t) {
  if (arena_->IsConstant(t)) return Value::Constant(arena_->symbol(t));
  assert(arena_->IsGround(t) && "chase head terms must ground under the trigger");
  auto it = term_to_value_.find(t);
  if (it != term_to_value_.end()) return it->second;
  if (arena_->Depth(t) > limits_.max_term_depth) return Value();
  Value null = instance_.FreshNull();
  term_to_value_.emplace(t, null);
  null_provenance_.push_back(t);
  assert(null_provenance_.size() == instance_.num_nulls());
  return null;
}

bool ChaseEngine::ProcessTrigger(const SoPart& part,
                                 const Assignment& assignment,
                                 std::vector<std::vector<Fact>>* pending) {
  if (!governor_.Poll()) {
    Halt(governor_.reason());
    return false;
  }
  Substitution subst;
  for (const auto& [var, value] : assignment) {
    subst.Bind(var, ValueToTerm(value));
  }
  // Equalities: free interpretation — ground terms must coincide.
  for (const SoEquality& eq : part.equalities) {
    TermId lhs = subst.Apply(arena_, eq.lhs);
    TermId rhs = subst.Apply(arena_, eq.rhs);
    if (lhs != rhs) return true;  // trigger inactive
  }
  // Stage the whole head locally first: if any head term overflows the
  // depth budget, the trigger contributes nothing (never a partial head).
  std::vector<Fact> staged;
  for (const Atom& atom : part.head) {
    Fact fact;
    fact.relation = atom.relation;
    for (TermId t : atom.args) {
      TermId ground = subst.Apply(arena_, t);
      Value v = TermToValue(ground);
      if (!v.valid()) {
        Halt(StopReason::kDepthLimit);
        return false;
      }
      fact.args.push_back(v);
    }
    staged.push_back(std::move(fact));
  }
  pending->push_back(std::move(staged));
  return true;
}

bool ChaseEngine::FlushPending(const std::vector<std::vector<Fact>>& pending) {
  ChaseGuard guard(limits_, &governor_);
  in_flush_ = true;
  bool added = false;
  for (const std::vector<Fact>& trigger : pending) {
    // Triggers commit atomically: either the whole head or nothing.
    if (!guard.CanCommit(instance_.NumFacts(), trigger.size())) {
      Halt(governor_.reason());
      in_flush_ = false;
      return added;
    }
    for (const Fact& fact : trigger) {
      if (instance_.AddFact(fact)) {
        added = true;
        ++facts_created_;
      }
    }
  }
  in_flush_ = false;
  return added;
}

bool ChaseEngine::StageAndMergeRound(
    bool use_delta, std::vector<std::vector<Fact>>* pending) {
  // STAGE (parallel, read-only): enumeration always sees the round-start
  // instance — the instance stays frozen until Step() flushes the whole
  // round. Inserting while enumerating would let this round's conclusions
  // re-trigger within the same round (still sound for the oblivious
  // chase, but rounds would lose their meaning — and a replayed round
  // would enumerate differently than the original, breaking deterministic
  // resume). That freeze is also what makes staging embarrassingly
  // parallel: workers share the instance, the arena and one const Matcher
  // per rule part without synchronization.
  const size_t num_parts = rules_.parts.size();
  std::vector<Matcher> matchers;
  matchers.reserve(num_parts);
  std::vector<Matcher::RootSplit> splits(num_parts);
  std::vector<MatchSlice> slices;
  for (size_t p = 0; p < num_parts; ++p) {
    const SoPart& part = rules_.parts[p];
    matchers.emplace_back(arena_, &instance_, part.body);
    if (use_delta) {
      // For each body atom acting as the pivot, the slices cover the
      // previous round's delta rows. Triggers touching no delta fact were
      // already fired in an earlier round (Skolem-chase idempotence makes
      // re-fired overlapping triggers harmless).
      for (size_t pivot = 0; pivot < part.body.size(); ++pivot) {
        const Atom& atom = part.body[pivot];
        auto prev_it = rows_before_prev_round_.find(atom.relation);
        size_t delta_begin =
            prev_it == rows_before_prev_round_.end() ? 0 : prev_it->second;
        auto cur_it = rows_before_current_round_.find(atom.relation);
        size_t delta_end =
            cur_it == rows_before_current_round_.end() ? 0 : cur_it->second;
        PushRowSlices(p, /*delta=*/true, pivot, delta_begin, delta_end,
                      &slices);
      }
    } else {
      splits[p] = matchers[p].PlanRoot({});
      if (splits[p].atom < 0) {
        MatchSlice s;
        s.part = p;
        s.whole_search = true;
        slices.push_back(s);
      } else {
        PushRowSlices(p, /*delta=*/false, 0, 0, splits[p].NumCandidates(),
                      &slices);
      }
    }
  }

  std::vector<SliceResult> results(slices.size());
  StageAbort abort;
  std::function<bool()> periodic =
      MakePeriodicCheck(limits_, governor_, &abort);
  pool_->ParallelFor(slices.size(), [&](size_t i) {
    const MatchSlice& s = slices[i];
    const Atom* pivot_atom =
        s.delta ? &rules_.parts[s.part].body[s.pivot] : nullptr;
    RunSlice(matchers[s.part], splits[s.part], *arena_, instance_,
             pivot_atom, /*head_filter=*/nullptr, s, periodic, abort,
             &results[i]);
  });
  if (abort.Requested()) {
    // Time-based abort (deadline/cancel): discard the staged round whole.
    // Nothing was committed, so the instance is still the round-start
    // instance — the same state a serial run stopping mid-round leaves.
    Halt(abort.Reason());
    return false;
  }

  // MERGE (serial, deterministic): charge each slice's staged work, then
  // process its triggers, in slice order — the order the serial engine
  // enumerates. Step/fact/depth budgets trip here at thread-count-
  // independent points.
  for (size_t i = 0; i < slices.size(); ++i) {
    if (!governor_.PollN(results[i].steps)) {
      Halt(governor_.reason());
      return false;
    }
    const SoPart& part = rules_.parts[slices[i].part];
    for (const Assignment& assignment : results[i].matches) {
      if (!ProcessTrigger(part, assignment, pending)) return false;
    }
  }
  return true;
}

bool ChaseEngine::InstanceGrewSinceRoundStart() const {
  for (RelationId rel : instance_.ActiveRelations()) {
    auto it = rows_before_current_round_.find(rel);
    size_t at_start = it == rows_before_current_round_.end() ? 0 : it->second;
    if (instance_.NumTuples(rel) != at_start) return true;
  }
  return false;
}

bool ChaseEngine::Step() {
  if (done_) return false;
  ChaseGuard guard(limits_, &governor_);
  bool replay = replay_round_ && rounds_ > 0;
  replay_round_ = false;
  if (replay) {
    // Resume: redo the interrupted round under its restored semi-naive
    // windows. The round was already counted, so no increment; the budget
    // is still re-checked before firing anything.
    if (!governor_.CheckNow()) {
      Halt(governor_.reason());
      return false;
    }
  } else {
    if (!guard.BeginRound(rounds_)) {
      Halt(governor_.reason());
      return false;
    }
    ++rounds_;
    // Window bookkeeping runs in full evaluation too: it costs one count
    // per active relation and gives checkpoints (and the replay fixpoint
    // test below) round-start row counts in either mode.
    rows_before_prev_round_ = std::move(rows_before_current_round_);
    rows_before_current_round_.clear();
    for (RelationId rel : instance_.ActiveRelations()) {
      rows_before_current_round_[rel] = instance_.NumTuples(rel);
    }
  }

  bool use_delta = limits_.semi_naive && rounds_ > 1;
  // Stage the whole round first, then commit once: enumeration always
  // sees the round-start instance, so replaying a round from any
  // checkpoint taken inside it re-enumerates identically.
  std::vector<std::vector<Fact>> pending;
  if (!StageAndMergeRound(use_delta, &pending)) return false;
  bool any = FlushPending(pending);
  if (deferred_checkpoint_) {
    deferred_checkpoint_ = false;
    if (checkpoint_hook_) checkpoint_hook_(*this);
  }
  if (done_) return false;
  if (replay) {
    // A replayed round re-fires triggers whose facts were committed before
    // the checkpoint; those insertions deduplicate, so "no fact added this
    // Step" does not mean fixpoint. Compare against the round's start.
    any = InstanceGrewSinceRoundStart();
  }
  if (!any) {
    done_ = true;
    stop_reason_ = ChaseStop::kFixpoint;
  }
  return any;
}

void ChaseEngine::Run() {
  while (Step()) {
  }
}

std::string ChaseResult::ExplainValue(const TermArena& arena,
                                      const Vocabulary& vocab,
                                      Value v) const {
  if (v.is_constant()) return instance.ValueToString(v);
  if (v.index() < null_provenance.size() &&
      null_provenance[v.index()] != kInvalidTerm) {
    return arena.ToString(null_provenance[v.index()], vocab);
  }
  return instance.ValueToString(v);  // input null: opaque
}

ChaseResult Chase(TermArena* arena, Vocabulary* vocab, const SoTgd& rules,
                  const Instance& input, ChaseLimits limits) {
  ChaseEngine engine(arena, vocab, rules, input, limits);
  engine.Run();
  ChaseResult result{engine.TakeInstance(), engine.stop_reason(),
                     engine.rounds(), engine.facts_created(), {}};
  result.budget_steps = engine.governor().total_steps();
  result.budget_bytes = engine.governor().memory_bytes();
  uint32_t num_nulls = result.instance.num_nulls();
  result.null_provenance.reserve(num_nulls);
  for (uint32_t i = 0; i < num_nulls; ++i) {
    result.null_provenance.push_back(engine.NullProvenance(i));
  }
  return result;
}

RestrictedChaseEngine::RestrictedChaseEngine(TermArena* arena,
                                             std::span<const Tgd> tgds,
                                             const Instance& input,
                                             ChaseLimits limits)
    : arena_(arena),
      tgds_(tgds.begin(), tgds.end()),
      limits_(limits),
      governor_(limits.budget),
      pool_(std::make_unique<ThreadPool>(ResolveThreads(limits.threads))),
      instance_(&input.vocab()) {
  TermArena* arena_ptr = arena_;
  governor_.AddMemorySource([arena_ptr] { return arena_ptr->ApproxBytes(); });
  Instance* instance_ptr = &instance_;
  governor_.AddMemorySource(
      [instance_ptr] { return instance_ptr->ApproxBytes(); });
  CopyFacts(input, &instance_);
}

RestrictedChaseEngine::RestrictedChaseEngine(TermArena* arena,
                                             std::span<const Tgd> tgds,
                                             RestrictedChaseState&& state,
                                             ChaseLimits limits)
    : arena_(arena),
      tgds_(tgds.begin(), tgds.end()),
      limits_(limits),
      governor_(limits.budget),
      pool_(std::make_unique<ThreadPool>(ResolveThreads(limits.threads))),
      instance_(std::move(state.instance)) {
  TermArena* arena_ptr = arena_;
  governor_.AddMemorySource([arena_ptr] { return arena_ptr->ApproxBytes(); });
  Instance* instance_ptr = &instance_;
  governor_.AddMemorySource(
      [instance_ptr] { return instance_ptr->ApproxBytes(); });
  rounds_ = state.rounds;
  facts_created_ = state.facts_created;
  governor_.RestorePriorConsumption(state.governor_steps,
                                    state.governor_charged_bytes);
  if (state.done && state.stop_reason == ChaseStop::kFixpoint) {
    done_ = true;
  }
  // Resource-stopped states re-open with stop_reason_ = kFixpoint; the
  // state was captured between rounds, so Run() simply continues.
}

void RestrictedChaseEngine::Halt(StopReason reason) {
  governor_.MarkExhausted(reason);
  stop_reason_ = governor_.exhausted() ? governor_.reason() : reason;
  done_ = true;
}

RestrictedChaseState RestrictedChaseEngine::CaptureState() const {
  RestrictedChaseState state(&instance_.vocab());
  state.instance = instance_;
  state.done = done_;
  state.stop_reason = stop_reason_;
  state.rounds = rounds_;
  state.facts_created = facts_created_;
  state.governor_steps = governor_.total_steps();
  state.governor_charged_bytes = governor_.total_charged_bytes();
  return state;
}

bool RestrictedChaseEngine::StageActive(const Matcher& body_matcher,
                                        const Matcher& head_matcher,
                                        std::vector<Assignment>* active) {
  Matcher::RootSplit split = body_matcher.PlanRoot({});
  std::vector<MatchSlice> slices;
  if (split.atom < 0) {
    MatchSlice s;
    s.whole_search = true;
    slices.push_back(s);
  } else {
    PushRowSlices(0, /*delta=*/false, 0, 0, split.NumCandidates(), &slices);
  }
  std::vector<SliceResult> results(slices.size());
  StageAbort abort;
  std::function<bool()> periodic =
      MakePeriodicCheck(limits_, governor_, &abort);
  pool_->ParallelFor(slices.size(), [&](size_t i) {
    // Restricted chase: fire only when no extension to the existential
    // variables satisfies the head already. The Exists filter runs in the
    // worker (it is read-only and uncounted, as in serial evaluation).
    RunSlice(body_matcher, split, *arena_, instance_, /*pivot_atom=*/nullptr,
             &head_matcher, slices[i], periodic, abort, &results[i]);
  });
  if (abort.Requested()) {
    Halt(abort.Reason());
    return false;
  }
  for (size_t i = 0; i < slices.size(); ++i) {
    if (!governor_.PollN(results[i].steps)) {
      Halt(governor_.reason());
      return false;
    }
    for (Assignment& assignment : results[i].matches) {
      active->push_back(std::move(assignment));
    }
  }
  return true;
}

void RestrictedChaseEngine::SetCheckpointHook(
    uint64_t every_rounds,
    std::function<void(const RestrictedChaseEngine&)> hook) {
  checkpoint_every_rounds_ = every_rounds == 0 ? 1 : every_rounds;
  checkpoint_hook_ = std::move(hook);
  rounds_since_checkpoint_ = 0;
}

bool RestrictedChaseEngine::Step() {
  if (done_) return false;
  ChaseGuard guard(limits_, &governor_);
  if (!guard.BeginRound(rounds_)) {
    Halt(governor_.reason());
    return false;
  }
  ++rounds_;
  // The restricted chase commits as it fires (fresh nulls per firing), so
  // a state captured inside a round is not resumable; mark the round
  // in-flight so Run() withholds the checkpoint hook on a mid-round halt.
  in_round_ = true;
  Instance& j = instance_;
  bool any = false;
  for (const Tgd& tgd : tgds_) {
    // The restricted chase commits inside the round (tgd k+1 must see tgd
    // k's firings), so staging parallelizes per tgd: enumerate + filter
    // this tgd's triggers against the current instance in parallel, then
    // fire serially.
    Matcher body_matcher(arena_, &j, tgd.body);
    Matcher head_matcher(arena_, &j, tgd.head);
    std::vector<Assignment> active;
    if (!StageActive(body_matcher, head_matcher, &active)) return false;
    for (const Assignment& assignment : active) {
      if (!governor_.Poll()) {
        Halt(governor_.reason());
        return false;
      }
      // Re-check: an earlier firing this round may have satisfied it.
      if (head_matcher.Exists(assignment)) continue;
      Assignment extended = assignment;
      for (VariableId y : tgd.exist_vars) {
        extended[y] = j.FreshNull();
      }
      // Stage the head first so the fact cap applies to the firing as a
      // whole (triggers commit atomically, as in ChaseEngine).
      std::vector<Fact> staged;
      for (const Atom& atom : tgd.head) {
        Fact fact;
        fact.relation = atom.relation;
        for (TermId t : atom.args) {
          if (arena_->IsVariable(t)) {
            fact.args.push_back(extended.at(arena_->symbol(t)));
          } else {
            fact.args.push_back(Value::Constant(arena_->symbol(t)));
          }
        }
        staged.push_back(std::move(fact));
      }
      if (!guard.CanCommit(j.NumFacts(), staged.size())) {
        Halt(governor_.reason());
        return false;
      }
      for (const Fact& fact : staged) {
        if (j.AddFact(fact)) ++facts_created_;
      }
      any = true;
    }
  }
  in_round_ = false;
  if (!any) {
    done_ = true;
    stop_reason_ = ChaseStop::kFixpoint;
  }
  return any;
}

void RestrictedChaseEngine::Run() {
  while (Step()) {
    if (checkpoint_hook_ &&
        ++rounds_since_checkpoint_ >= checkpoint_every_rounds_) {
      rounds_since_checkpoint_ = 0;
      checkpoint_hook_(*this);
    }
  }
  // A final consistent point — unless the run halted inside a round: the
  // partially-fired round is not resumable, so the last per-round
  // checkpoint stays the authoritative one.
  if (checkpoint_hook_ && !in_round_) checkpoint_hook_(*this);
}

ChaseResult RestrictedChaseEngine::TakeResult() {
  ChaseResult result{std::move(instance_), stop_reason_, rounds_,
                     facts_created_, {}};
  result.budget_steps = governor_.total_steps();
  result.budget_bytes = governor_.memory_bytes();
  return result;
}

ChaseResult RestrictedChaseTgds(TermArena* arena, Vocabulary* vocab,
                                std::span<const Tgd> tgds,
                                const Instance& input, ChaseLimits limits) {
  (void)vocab;
  RestrictedChaseEngine engine(arena, tgds, input, limits);
  engine.Run();
  return engine.TakeResult();
}

}  // namespace tgdkit
