#include "chase/chase.h"

#include <cassert>

#include "base/strings.h"

namespace tgdkit {

namespace {

/// Round/fact bookkeeping shared by ChaseEngine and RestrictedChaseTgds:
/// both engines historically duplicated these checks; they now funnel
/// through the governor so every stop carries one StopReason.
class ChaseGuard {
 public:
  ChaseGuard(const ChaseLimits& limits, ResourceGovernor* governor)
      : limits_(limits), governor_(governor) {}

  /// Gate for starting another round: false on the round cap or when the
  /// cross-cutting budget (deadline/bytes/steps/cancel) is exhausted.
  bool BeginRound(uint64_t completed_rounds) {
    if (completed_rounds >= limits_.max_rounds) {
      governor_->MarkExhausted(StopReason::kRoundLimit);
      return false;
    }
    return governor_->CheckNow();
  }

  /// Gate for committing one trigger's head atomically: false when the
  /// commit would push the instance past the fact cap.
  bool CanCommit(size_t current_facts, size_t incoming) {
    if (current_facts + incoming > limits_.max_facts) {
      governor_->MarkExhausted(StopReason::kFactLimit);
      return false;
    }
    return true;
  }

 private:
  const ChaseLimits& limits_;
  ResourceGovernor* governor_;
};

}  // namespace

ChaseEngine::ChaseEngine(TermArena* arena, Vocabulary* vocab,
                         const SoTgd& rules, const Instance& input,
                         ChaseLimits limits)
    : arena_(arena),
      vocab_(vocab),
      rules_(rules),
      limits_(limits),
      governor_(limits.budget),
      instance_(&input.vocab()) {
  TermArena* arena_ptr = arena_;
  governor_.AddMemorySource([arena_ptr] { return arena_ptr->ApproxBytes(); });
  Instance* instance_ptr = &instance_;
  governor_.AddMemorySource(
      [instance_ptr] { return instance_ptr->ApproxBytes(); });
  CopyFacts(input, &instance_);
  null_provenance_.assign(instance_.num_nulls(), kInvalidTerm);
}

void ChaseEngine::Halt(StopReason reason) {
  governor_.MarkExhausted(reason);
  stop_reason_ = governor_.reason();
  done_ = true;
}

TermId ChaseEngine::NullProvenance(uint32_t null_index) const {
  if (null_index >= null_provenance_.size()) return kInvalidTerm;
  return null_provenance_[null_index];
}

TermId ChaseEngine::ValueToTerm(Value v) {
  if (v.is_constant()) return arena_->MakeConstant(v.index());
  // Input nulls behave like opaque individuals: represent null i as the
  // 0-ary function term @innull<i>().
  TermId provenance = NullProvenance(v.index());
  if (provenance != kInvalidTerm) return provenance;
  FunctionId f = vocab_->InternFunction(Cat("@innull", v.index()), 0);
  TermId t = arena_->MakeFunction(f, {});
  term_to_value_.emplace(t, v);
  if (v.index() < null_provenance_.size()) {
    null_provenance_[v.index()] = t;
  }
  return t;
}

Value ChaseEngine::TermToValue(TermId t) {
  if (arena_->IsConstant(t)) return Value::Constant(arena_->symbol(t));
  assert(arena_->IsGround(t) && "chase head terms must ground under the trigger");
  auto it = term_to_value_.find(t);
  if (it != term_to_value_.end()) return it->second;
  if (arena_->Depth(t) > limits_.max_term_depth) return Value();
  Value null = instance_.FreshNull();
  term_to_value_.emplace(t, null);
  null_provenance_.push_back(t);
  assert(null_provenance_.size() == instance_.num_nulls());
  return null;
}

bool ChaseEngine::ProcessTrigger(const SoPart& part,
                                 const Assignment& assignment,
                                 std::vector<std::vector<Fact>>* pending) {
  if (!governor_.Poll()) {
    Halt(governor_.reason());
    return false;
  }
  Substitution subst;
  for (const auto& [var, value] : assignment) {
    subst.Bind(var, ValueToTerm(value));
  }
  // Equalities: free interpretation — ground terms must coincide.
  for (const SoEquality& eq : part.equalities) {
    TermId lhs = subst.Apply(arena_, eq.lhs);
    TermId rhs = subst.Apply(arena_, eq.rhs);
    if (lhs != rhs) return true;  // trigger inactive
  }
  // Stage the whole head locally first: if any head term overflows the
  // depth budget, the trigger contributes nothing (never a partial head).
  std::vector<Fact> staged;
  for (const Atom& atom : part.head) {
    Fact fact;
    fact.relation = atom.relation;
    for (TermId t : atom.args) {
      TermId ground = subst.Apply(arena_, t);
      Value v = TermToValue(ground);
      if (!v.valid()) {
        Halt(StopReason::kDepthLimit);
        return false;
      }
      fact.args.push_back(v);
    }
    staged.push_back(std::move(fact));
  }
  pending->push_back(std::move(staged));
  return true;
}

bool ChaseEngine::FlushPending(const std::vector<std::vector<Fact>>& pending) {
  ChaseGuard guard(limits_, &governor_);
  bool added = false;
  for (const std::vector<Fact>& trigger : pending) {
    // Triggers commit atomically: either the whole head or nothing.
    if (!guard.CanCommit(instance_.NumFacts(), trigger.size())) {
      Halt(governor_.reason());
      return added;
    }
    for (const Fact& fact : trigger) {
      if (instance_.AddFact(fact)) {
        added = true;
        ++facts_created_;
      }
    }
  }
  return added;
}

bool ChaseEngine::FireRuleFull(const SoPart& part) {
  Matcher matcher(arena_, &instance_, part.body);
  matcher.set_governor(&governor_);
  // Collect new facts first: inserting while enumerating would let this
  // round's conclusions re-trigger within the same round (still sound for
  // the oblivious chase, but rounds would lose their meaning).
  std::vector<std::vector<Fact>> pending;
  matcher.ForEach({}, [&](const Assignment& assignment) {
    return ProcessTrigger(part, assignment, &pending);
  });
  if (governor_.exhausted() && !done_) Halt(governor_.reason());
  if (done_) return false;
  return FlushPending(pending);
}

bool ChaseEngine::FireRuleDelta(const SoPart& part) {
  Matcher matcher(arena_, &instance_, part.body);
  matcher.set_governor(&governor_);
  std::vector<std::vector<Fact>> pending;

  // For each body atom acting as the pivot, seed the matcher with each
  // fact of the previous round's delta. Triggers touching no delta fact
  // were already fired in an earlier round (Skolem-chase idempotence makes
  // re-fired overlapping triggers harmless).
  for (size_t pivot = 0; pivot < part.body.size() && !done_; ++pivot) {
    const Atom& atom = part.body[pivot];
    auto prev_it = rows_before_prev_round_.find(atom.relation);
    size_t delta_begin =
        prev_it == rows_before_prev_round_.end() ? 0 : prev_it->second;
    auto cur_it = rows_before_current_round_.find(atom.relation);
    size_t delta_end =
        cur_it == rows_before_current_round_.end() ? 0 : cur_it->second;
    for (size_t row = delta_begin; row < delta_end && !done_; ++row) {
      if (!governor_.Poll()) {
        Halt(governor_.reason());
        break;
      }
      std::span<const Value> tuple =
          instance_.Tuple(atom.relation, static_cast<uint32_t>(row));
      Assignment seed;
      bool consistent = true;
      for (size_t i = 0; i < atom.args.size(); ++i) {
        TermId t = atom.args[i];
        if (arena_->IsConstant(t)) {
          if (Value::Constant(arena_->symbol(t)) != tuple[i]) {
            consistent = false;
            break;
          }
        } else {
          VariableId v = arena_->symbol(t);
          auto [it, inserted] = seed.emplace(v, tuple[i]);
          if (!inserted && it->second != tuple[i]) {
            consistent = false;
            break;
          }
        }
      }
      if (!consistent) continue;
      matcher.ForEach(seed, [&](const Assignment& assignment) {
        return ProcessTrigger(part, assignment, &pending);
      });
    }
  }
  if (governor_.exhausted() && !done_) Halt(governor_.reason());
  if (done_) return false;
  return FlushPending(pending);
}

bool ChaseEngine::Step() {
  if (done_) return false;
  ChaseGuard guard(limits_, &governor_);
  if (!guard.BeginRound(rounds_)) {
    Halt(governor_.reason());
    return false;
  }
  ++rounds_;

  bool use_delta = limits_.semi_naive && rounds_ > 1;
  if (limits_.semi_naive) {
    rows_before_prev_round_ = std::move(rows_before_current_round_);
    rows_before_current_round_.clear();
    for (RelationId rel : instance_.ActiveRelations()) {
      rows_before_current_round_[rel] = instance_.NumTuples(rel);
    }
  }

  bool any = false;
  for (const SoPart& part : rules_.parts) {
    bool fired = use_delta ? FireRuleDelta(part) : FireRuleFull(part);
    if (fired) any = true;
    if (done_) return false;
  }
  if (!any) {
    done_ = true;
    stop_reason_ = ChaseStop::kFixpoint;
  }
  return any;
}

void ChaseEngine::Run() {
  while (Step()) {
  }
}

std::string ChaseResult::ExplainValue(const TermArena& arena,
                                      const Vocabulary& vocab,
                                      Value v) const {
  if (v.is_constant()) return instance.ValueToString(v);
  if (v.index() < null_provenance.size() &&
      null_provenance[v.index()] != kInvalidTerm) {
    return arena.ToString(null_provenance[v.index()], vocab);
  }
  return instance.ValueToString(v);  // input null: opaque
}

ChaseResult Chase(TermArena* arena, Vocabulary* vocab, const SoTgd& rules,
                  const Instance& input, ChaseLimits limits) {
  ChaseEngine engine(arena, vocab, rules, input, limits);
  engine.Run();
  ChaseResult result{engine.TakeInstance(), engine.stop_reason(),
                     engine.rounds(), engine.facts_created(), {}};
  result.budget_steps = engine.governor().steps();
  result.budget_bytes = engine.governor().memory_bytes();
  uint32_t num_nulls = result.instance.num_nulls();
  result.null_provenance.reserve(num_nulls);
  for (uint32_t i = 0; i < num_nulls; ++i) {
    result.null_provenance.push_back(engine.NullProvenance(i));
  }
  return result;
}

ChaseResult RestrictedChaseTgds(TermArena* arena, Vocabulary* vocab,
                                std::span<const Tgd> tgds,
                                const Instance& input, ChaseLimits limits) {
  (void)vocab;
  ResourceGovernor governor(limits.budget);
  governor.AddMemorySource([arena] { return arena->ApproxBytes(); });
  ChaseGuard guard(limits, &governor);
  ChaseResult result{Instance(&input.vocab()), ChaseStop::kFixpoint, 0, 0};
  CopyFacts(input, &result.instance);
  Instance& j = result.instance;
  governor.AddMemorySource([&j] { return j.ApproxBytes(); });

  auto finish = [&](StopReason reason) -> ChaseResult {
    governor.MarkExhausted(reason);
    result.stop_reason = governor.exhausted() ? governor.reason() : reason;
    result.budget_steps = governor.steps();
    result.budget_bytes = governor.memory_bytes();
    return std::move(result);
  };

  for (;;) {
    if (!guard.BeginRound(result.rounds)) {
      return finish(governor.reason());
    }
    ++result.rounds;
    bool any = false;
    for (const Tgd& tgd : tgds) {
      Matcher body_matcher(arena, &j, tgd.body);
      body_matcher.set_governor(&governor);
      Matcher head_matcher(arena, &j, tgd.head);
      std::vector<Assignment> active;
      body_matcher.ForEach({}, [&](const Assignment& assignment) {
        // Restricted chase: fire only when no extension to the existential
        // variables satisfies the head already.
        if (!head_matcher.Exists(assignment)) active.push_back(assignment);
        return true;
      });
      if (governor.exhausted()) return finish(governor.reason());
      for (const Assignment& assignment : active) {
        if (!governor.Poll()) return finish(governor.reason());
        // Re-check: an earlier firing this round may have satisfied it.
        if (head_matcher.Exists(assignment)) continue;
        Assignment extended = assignment;
        for (VariableId y : tgd.exist_vars) {
          extended[y] = j.FreshNull();
        }
        // Stage the head first so the fact cap applies to the firing as a
        // whole (triggers commit atomically, as in ChaseEngine).
        std::vector<Fact> staged;
        for (const Atom& atom : tgd.head) {
          Fact fact;
          fact.relation = atom.relation;
          for (TermId t : atom.args) {
            if (arena->IsVariable(t)) {
              fact.args.push_back(extended.at(arena->symbol(t)));
            } else {
              fact.args.push_back(Value::Constant(arena->symbol(t)));
            }
          }
          staged.push_back(std::move(fact));
        }
        if (!guard.CanCommit(j.NumFacts(), staged.size())) {
          return finish(governor.reason());
        }
        for (const Fact& fact : staged) {
          if (j.AddFact(fact)) ++result.facts_created;
        }
        any = true;
      }
    }
    if (!any) {
      return finish(StopReason::kFixpoint);
    }
  }
}

}  // namespace tgdkit
