// The chase: the universal-model construction underlying certain-answer
// query answering for dependencies.
//
// Two engines are provided:
//
//  * ChaseEngine / Chase — the Skolem (oblivious) chase over SO tgds, the
//    library's executable common form of all dependency classes (Figure 1).
//    Every ground Skolem term is interned once and mapped to a canonical
//    labeled null, so the result is deterministic and firing is idempotent.
//    Equalities in rule bodies are evaluated under the free interpretation
//    of function symbols (ground-term identity), the standard reading for
//    Skolemized dependencies.
//
//  * RestrictedChaseTgds — the classical standard chase for first-order
//    tgds, which fires a trigger only when the head is not already
//    satisfiable by extension. Used for comparison and ablations.
//
// For weakly acyclic rule sets the chase terminates (Fagin et al. 2005;
// the paper notes this lifts to SO tgds, Section 5). For the undecidable
// encodings of Section 5 the chase is a semi-decision procedure, driven
// round-by-round with resource limits.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/budget.h"
#include "dep/dependency.h"
#include "homo/matcher.h"

namespace tgdkit {

struct ChaseLimits {
  uint64_t max_rounds = 10000;
  uint64_t max_facts = 1000000;
  /// Maximum nesting depth of ground Skolem terms; deeper terms abort the
  /// run (semi-decision budget for non-terminating chases).
  uint32_t max_term_depth = 256;
  /// Semi-naive evaluation: from round two on, only fire triggers that
  /// touch at least one fact created in the previous round. Produces the
  /// same result as naive evaluation (the Skolem chase is idempotent);
  /// disable only for the ablation benchmark.
  bool semi_naive = true;
  /// Cross-cutting resource budget (deadline, bytes, steps, cancellation)
  /// enforced by a ResourceGovernor on top of the structural caps above.
  /// One chase step = one trigger processed or one delta row probed.
  ExecutionBudget budget;
};

/// Round-by-round Skolem chase over one SO tgd (= rule set).
class ChaseEngine {
 public:
  /// `input` is copied; `arena` receives ground Skolem terms; `vocab` is
  /// used for null provenance labels.
  ChaseEngine(TermArena* arena, Vocabulary* vocab, const SoTgd& rules,
              const Instance& input, ChaseLimits limits = {});

  /// The governor registers the arena and the growing instance as memory
  /// sources; moving the engine would invalidate those hooks.
  ChaseEngine(const ChaseEngine&) = delete;
  ChaseEngine& operator=(const ChaseEngine&) = delete;

  /// Runs one full round (every rule, every trigger). Returns true if at
  /// least one new fact was added and no limit was hit.
  bool Step();

  /// Runs rounds until fixpoint or a limit.
  void Run();

  const Instance& instance() const { return instance_; }
  Instance&& TakeInstance() { return std::move(instance_); }

  bool done() const { return done_; }
  ChaseStop stop_reason() const { return stop_reason_; }
  uint64_t rounds() const { return rounds_; }
  uint64_t facts_created() const { return facts_created_; }

  /// The governor enforcing limits_.budget (for steps/bytes telemetry).
  const ResourceGovernor& governor() const { return governor_; }

  /// Provenance: the ground Skolem term a chase-created null stands for
  /// (kInvalidTerm for nulls already present in the input).
  TermId NullProvenance(uint32_t null_index) const;

 private:
  /// Maps a value to the ground term representing it.
  TermId ValueToTerm(Value v);
  /// Maps a ground term to a value, creating a canonical null if needed.
  /// Returns an invalid Value when the depth limit is exceeded.
  Value TermToValue(TermId t);

  /// Processes one trigger (a complete body homomorphism): checks the
  /// equalities and stages the head facts as one atomic unit. Returns
  /// false on a limit; a trigger that hits a limit mid-head stages
  /// nothing (no partial head facts are ever committed).
  bool ProcessTrigger(const SoPart& part, const Assignment& assignment,
                      std::vector<std::vector<Fact>>* pending);
  /// Fires all triggers of `part` (full evaluation).
  bool FireRuleFull(const SoPart& part);
  /// Fires only triggers touching a fact from the previous round's delta.
  bool FireRuleDelta(const SoPart& part);
  bool FlushPending(const std::vector<std::vector<Fact>>& pending);
  /// Records the first stop reason and marks the run done.
  void Halt(StopReason reason);

  TermArena* arena_;
  Vocabulary* vocab_;
  SoTgd rules_;
  ChaseLimits limits_;
  ResourceGovernor governor_;
  Instance instance_;
  std::unordered_map<TermId, Value> term_to_value_;
  std::vector<TermId> null_provenance_;  // null index -> ground term
  // Semi-naive bookkeeping: per-relation row counts at the start of the
  // previous and the current round.
  std::unordered_map<RelationId, size_t> rows_before_prev_round_;
  std::unordered_map<RelationId, size_t> rows_before_current_round_;
  bool done_ = false;
  ChaseStop stop_reason_ = ChaseStop::kFixpoint;
  uint64_t rounds_ = 0;
  uint64_t facts_created_ = 0;
};

struct ChaseResult {
  Instance instance;
  ChaseStop stop_reason;
  uint64_t rounds;
  uint64_t facts_created;
  /// Provenance: for each null index, the ground Skolem term it stands
  /// for (kInvalidTerm for input nulls).
  std::vector<TermId> null_provenance;
  /// Governor telemetry: steps consumed and last observed bytes.
  uint64_t budget_steps = 0;
  uint64_t budget_bytes = 0;

  bool Terminated() const { return stop_reason == ChaseStop::kFixpoint; }

  /// Machine-readable outcome: Ok on fixpoint, ResourceExhausted with the
  /// stop reason otherwise (the instance is then a sound partial model).
  Status ToStatus() const { return StopReasonToStatus(stop_reason, "chase"); }

  /// Renders the Skolem term behind a chase-created null, e.g.
  /// "sk_dm$0(\"cs\")". Input nulls and constants render as themselves.
  std::string ExplainValue(const TermArena& arena, const Vocabulary& vocab,
                           Value v) const;
};

/// Convenience wrapper: chases `input` under `rules` to fixpoint or limit.
ChaseResult Chase(TermArena* arena, Vocabulary* vocab, const SoTgd& rules,
                  const Instance& input, ChaseLimits limits = {});

/// The classical restricted (standard) chase for first-order tgds: a
/// trigger fires only if its head cannot be satisfied by any extension
/// homomorphism; new nulls are fresh per firing. Non-deterministic in
/// general; this implementation processes triggers in a fixed order.
ChaseResult RestrictedChaseTgds(TermArena* arena, Vocabulary* vocab,
                                std::span<const Tgd> tgds,
                                const Instance& input, ChaseLimits limits = {});

}  // namespace tgdkit
