// The chase: the universal-model construction underlying certain-answer
// query answering for dependencies.
//
// Two engines are provided:
//
//  * ChaseEngine / Chase — the Skolem (oblivious) chase over SO tgds, the
//    library's executable common form of all dependency classes (Figure 1).
//    Every ground Skolem term is interned once and mapped to a canonical
//    labeled null, so the result is deterministic and firing is idempotent.
//    Equalities in rule bodies are evaluated under the free interpretation
//    of function symbols (ground-term identity), the standard reading for
//    Skolemized dependencies.
//
//  * RestrictedChaseTgds — the classical standard chase for first-order
//    tgds, which fires a trigger only when the head is not already
//    satisfiable by extension. Used for comparison and ablations.
//
// For weakly acyclic rule sets the chase terminates (Fagin et al. 2005;
// the paper notes this lifts to SO tgds, Section 5). For the undecidable
// encodings of Section 5 the chase is a semi-decision procedure, driven
// round-by-round with resource limits.
#pragma once

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "base/budget.h"
#include "base/thread_pool.h"
#include "dep/dependency.h"
#include "homo/matcher.h"

namespace tgdkit {

struct ChaseLimits {
  uint64_t max_rounds = 10000;
  uint64_t max_facts = 1000000;
  /// Maximum nesting depth of ground Skolem terms; deeper terms abort the
  /// run (semi-decision budget for non-terminating chases).
  uint32_t max_term_depth = 256;
  /// Semi-naive evaluation: from round two on, only fire triggers that
  /// touch at least one fact created in the previous round. Produces the
  /// same result as naive evaluation (the Skolem chase is idempotent);
  /// disable only for the ablation benchmark.
  bool semi_naive = true;
  /// Cross-cutting resource budget (deadline, bytes, steps, cancellation)
  /// enforced by a ResourceGovernor on top of the structural caps above.
  /// One chase step = one trigger processed or one matcher/delta row
  /// probed.
  ExecutionBudget budget;
  /// Execution lanes for round staging (1 = serial, 0 = one per hardware
  /// thread). Any value produces byte-identical results — instance text,
  /// stop reason, step counts and snapshots — because trigger matching is
  /// staged over fixed-geometry slices whose results merge in a
  /// deterministic order (see docs/PARALLELISM.md).
  uint32_t threads = 1;
  /// Out-of-core mode (docs/STORAGE.md): when non-empty, the engine's
  /// instance spills sealed fact segments into this directory and the
  /// governor's memory-pressure path evicts hot segments before giving up
  /// with kMemoryLimit. Empty (the default) keeps the fully in-core
  /// store. Either mode produces byte-identical chase results.
  std::string spill_dir;
  /// Segment payload size for the spill store, in KiB.
  uint64_t spill_segment_kb = 256;
};

/// Complete resumable state of a ChaseEngine, as captured by
/// CaptureState() and restored by the resume constructor. The snapshot
/// layer (src/snapshot) serializes this struct; the engine itself only
/// defines what "resumable" means.
///
/// Consistency model: a checkpoint may be taken at any governor poll, i.e.
/// in the middle of a round. On resume the engine REPLAYS the round it was
/// in from that round's start. The Skolem chase is idempotent (facts
/// dedup, ground-term-to-null mapping is memoized in term_to_value), so
/// the replay commits exactly the facts the uninterrupted run would have,
/// in the same order, and the final result is bit-identical.
struct ChaseEngineState {
  explicit ChaseEngineState(const Vocabulary* vocab) : instance(vocab) {}

  Instance instance;
  /// Spill mode capture: instead of deep-copying a mostly-on-disk store
  /// into `instance`, CaptureState points at the live engine's instance
  /// (sealed segment files are immutable, so the snapshot layer can
  /// reference them by name after flushing dirty ones). Null for in-core
  /// captures and for states restored from disk (the loader materializes
  /// `instance` instead).
  const Instance* spill_instance = nullptr;
  /// Spill-mode torn-round rollback: per-relation row counts to keep
  /// (round-start counts), in ActiveRelations order. Empty means keep
  /// everything (the capture was at a round boundary).
  std::vector<std::pair<RelationId, uint64_t>> spill_keep_rows;
  /// Ground term -> value memo (term ids index the serialized arena).
  std::vector<std::pair<TermId, Value>> term_to_value;
  std::vector<TermId> null_provenance;
  /// Semi-naive windows: per-relation row counts at the start of the
  /// previous / current round (row ids are stable, so counts suffice).
  std::vector<std::pair<RelationId, uint64_t>> rows_before_prev_round;
  std::vector<std::pair<RelationId, uint64_t>> rows_before_current_round;
  bool done = false;
  ChaseStop stop_reason = ChaseStop::kFixpoint;
  uint64_t rounds = 0;
  uint64_t facts_created = 0;
  /// Governor consumption already paid for (telemetry only on resume;
  /// never re-charged against new budget limits).
  uint64_t governor_steps = 0;
  uint64_t governor_charged_bytes = 0;
};

/// Round-by-round Skolem chase over one SO tgd (= rule set).
class ChaseEngine {
 public:
  /// `input` is copied; `arena` receives ground Skolem terms; `vocab` is
  /// used for null provenance labels.
  ChaseEngine(TermArena* arena, Vocabulary* vocab, const SoTgd& rules,
              const Instance& input, ChaseLimits limits = {});

  /// Resumes from a state captured by CaptureState(). `arena` and `vocab`
  /// must hold exactly the contents they had at capture time (the
  /// snapshot layer restores them alongside the state). A state whose
  /// stop_reason is a resource stop is re-opened: the engine clears
  /// done and continues (replaying the interrupted round) under the new
  /// `limits`; a kFixpoint state stays complete.
  ChaseEngine(TermArena* arena, Vocabulary* vocab, const SoTgd& rules,
              ChaseEngineState&& state, ChaseLimits limits = {});

  /// The governor registers the arena and the growing instance as memory
  /// sources; moving the engine would invalidate those hooks.
  ChaseEngine(const ChaseEngine&) = delete;
  ChaseEngine& operator=(const ChaseEngine&) = delete;

  /// Runs one full round (every rule, every trigger). Returns true if at
  /// least one new fact was added and no limit was hit.
  bool Step();

  /// Runs rounds until fixpoint or a limit.
  void Run();

  const Instance& instance() const { return instance_; }
  Instance&& TakeInstance() { return std::move(instance_); }

  bool done() const { return done_; }
  ChaseStop stop_reason() const { return stop_reason_; }
  uint64_t rounds() const { return rounds_; }
  uint64_t facts_created() const { return facts_created_; }

  /// The governor enforcing limits_.budget (for steps/bytes telemetry).
  const ResourceGovernor& governor() const { return governor_; }

  /// Effective execution lanes (ChaseLimits::threads with 0 resolved to
  /// the hardware thread count).
  unsigned threads() const { return pool_->threads(); }

  /// Provenance: the ground Skolem term a chase-created null stands for
  /// (kInvalidTerm for nulls already present in the input).
  TermId NullProvenance(uint32_t null_index) const;

  /// Deep-copies the engine's resumable state. Safe to call at any
  /// governor poll (see ChaseEngineState for the consistency model) and
  /// after the run ended.
  ChaseEngineState CaptureState() const;

  /// Registers a periodic checkpoint hook on the engine's governor: every
  /// `every_steps` steps / `every_ms` milliseconds (whichever fires first;
  /// 0 = unconstrained) the hook receives the live engine to snapshot via
  /// CaptureState(). The hook must not mutate the engine.
  void SetCheckpointHook(uint64_t every_steps, uint64_t every_ms,
                         std::function<void(const ChaseEngine&)> hook);

 private:
  /// Maps a value to the ground term representing it.
  TermId ValueToTerm(Value v);
  /// Maps a ground term to a value, creating a canonical null if needed.
  /// Returns an invalid Value when the depth limit is exceeded.
  Value TermToValue(TermId t);

  /// Processes one trigger (a complete body homomorphism): checks the
  /// equalities and stages the head facts as one atomic unit. Returns
  /// false on a limit; a trigger that hits a limit mid-head stages
  /// nothing (no partial head facts are ever committed).
  bool ProcessTrigger(const SoPart& part, const Assignment& assignment,
                      std::vector<std::vector<Fact>>* pending);
  /// One round's trigger enumeration: stages matching over fixed-geometry
  /// slices fanned across the pool (read-only against the round-frozen
  /// instance), then merges the per-slice results serially in slice order
  /// — charging governor steps and running ProcessTrigger for each match.
  /// The slice geometry and merge order are independent of the thread
  /// count, so any `threads` setting observes the identical step/trigger
  /// sequence. Returns false when the round halted (reason recorded).
  bool StageAndMergeRound(bool use_delta,
                          std::vector<std::vector<Fact>>* pending);
  /// Commits a whole round's staged triggers. The instance only mutates
  /// here: enumeration always sees the round-start instance, which is
  /// what makes round replay (and therefore resume) deterministic.
  bool FlushPending(const std::vector<std::vector<Fact>>& pending);
  /// Records the first stop reason and marks the run done.
  void Halt(StopReason reason);
  /// Spill mode: registers the governor's memory-pressure hook
  /// (spill-and-evict before a kMemoryLimit stop).
  void InstallSpillPressureHandler();
  /// True iff any relation gained rows since the current round started
  /// (fixpoint test for replayed rounds).
  bool InstanceGrewSinceRoundStart() const;

  TermArena* arena_;
  Vocabulary* vocab_;
  SoTgd rules_;
  ChaseLimits limits_;
  ResourceGovernor governor_;
  /// Staging lanes (never serialized; rebuilt from limits on resume).
  std::unique_ptr<ThreadPool> pool_;
  Instance instance_;
  std::unordered_map<TermId, Value> term_to_value_;
  std::vector<TermId> null_provenance_;  // null index -> ground term
  // Semi-naive bookkeeping: per-relation row counts at the start of the
  // previous and the current round.
  std::unordered_map<RelationId, size_t> rows_before_prev_round_;
  std::unordered_map<RelationId, size_t> rows_before_current_round_;
  bool done_ = false;
  ChaseStop stop_reason_ = ChaseStop::kFixpoint;
  uint64_t rounds_ = 0;
  uint64_t facts_created_ = 0;
  /// Resume: the next Step() re-runs the round the captured engine was in
  /// (same semi-naive windows, no round increment); fixpoint detection for
  /// that round compares row counts against the round-start windows
  /// instead of the replay's (deduplicated) insertions.
  bool replay_round_ = false;
  /// Checkpoint safety: a capture taken while FlushPending is mutating
  /// the instance would record a half-committed round, whose replay is
  /// not deterministic. Hook firings that land inside the flush are
  /// deferred to the round's end.
  std::function<void(const ChaseEngine&)> checkpoint_hook_;
  bool in_flush_ = false;
  bool deferred_checkpoint_ = false;
};

struct ChaseResult {
  Instance instance;
  ChaseStop stop_reason;
  uint64_t rounds;
  uint64_t facts_created;
  /// Provenance: for each null index, the ground Skolem term it stands
  /// for (kInvalidTerm for input nulls).
  std::vector<TermId> null_provenance;
  /// Governor telemetry: steps consumed and last observed bytes.
  uint64_t budget_steps = 0;
  uint64_t budget_bytes = 0;

  bool Terminated() const { return stop_reason == ChaseStop::kFixpoint; }

  /// Machine-readable outcome: Ok on fixpoint, ResourceExhausted with the
  /// stop reason otherwise (the instance is then a sound partial model).
  Status ToStatus() const { return StopReasonToStatus(stop_reason, "chase"); }

  /// Renders the Skolem term behind a chase-created null, e.g.
  /// "sk_dm$0(\"cs\")". Input nulls and constants render as themselves.
  std::string ExplainValue(const TermArena& arena, const Vocabulary& vocab,
                           Value v) const;
};

/// Convenience wrapper: chases `input` under `rules` to fixpoint or limit.
ChaseResult Chase(TermArena* arena, Vocabulary* vocab, const SoTgd& rules,
                  const Instance& input, ChaseLimits limits = {});

/// Resumable state of the restricted chase. Unlike ChaseEngineState this
/// is round-granular: it is only captured between rounds (the restricted
/// chase invents fresh, unmemoized nulls per firing, so a mid-round replay
/// would not be deterministic). The engine's checkpoint hook therefore
/// fires after completed rounds, never inside one.
struct RestrictedChaseState {
  explicit RestrictedChaseState(const Vocabulary* vocab) : instance(vocab) {}

  Instance instance;
  bool done = false;
  ChaseStop stop_reason = ChaseStop::kFixpoint;
  uint64_t rounds = 0;
  uint64_t facts_created = 0;
  uint64_t governor_steps = 0;
  uint64_t governor_charged_bytes = 0;
};

/// The classical restricted (standard) chase for first-order tgds as a
/// steppable engine: a trigger fires only if its head cannot be satisfied
/// by any extension homomorphism; new nulls are fresh per firing.
/// Non-deterministic in general; this implementation processes triggers in
/// a fixed order, so runs (and resumed runs) are reproducible.
class RestrictedChaseEngine {
 public:
  RestrictedChaseEngine(TermArena* arena, std::span<const Tgd> tgds,
                        const Instance& input, ChaseLimits limits = {});

  /// Resumes from a state captured between rounds. `arena` must hold the
  /// contents it had at capture time. Resource-stopped states are
  /// re-opened under the new limits; kFixpoint states stay complete.
  RestrictedChaseEngine(TermArena* arena, std::span<const Tgd> tgds,
                        RestrictedChaseState&& state,
                        ChaseLimits limits = {});

  RestrictedChaseEngine(const RestrictedChaseEngine&) = delete;
  RestrictedChaseEngine& operator=(const RestrictedChaseEngine&) = delete;

  /// Runs one full round. Returns true if at least one trigger fired and
  /// no limit was hit.
  bool Step();
  /// Runs rounds until fixpoint or a limit, invoking the checkpoint hook
  /// (if any) after each completed round.
  void Run();

  bool done() const { return done_; }
  ChaseStop stop_reason() const { return stop_reason_; }
  const ResourceGovernor& governor() const { return governor_; }

  /// Effective execution lanes (ChaseLimits::threads with 0 resolved to
  /// the hardware thread count).
  unsigned threads() const { return pool_->threads(); }

  /// Deep-copies the resumable state. Call between rounds (or after the
  /// run ended); the checkpoint hook is invoked at exactly such points.
  RestrictedChaseState CaptureState() const;

  /// Round-granular checkpointing: after each completed round, once at
  /// least `every_rounds` rounds have passed since the last call (0 = 1),
  /// the hook receives the live engine to snapshot via CaptureState().
  void SetCheckpointHook(uint64_t every_rounds,
                         std::function<void(const RestrictedChaseEngine&)> hook);

  /// Finalizes the run into a ChaseResult (moves the instance out).
  ChaseResult TakeResult();

 private:
  void Halt(StopReason reason);
  /// Stages one tgd's body matches in parallel over fixed-geometry root
  /// slices, filtering out triggers whose head is already satisfiable
  /// (Exists is uncounted, as in serial evaluation), then merges the
  /// surviving assignments into `active` in slice order — the serial
  /// enumeration order. Returns false when the round halted.
  bool StageActive(const Matcher& body_matcher, const Matcher& head_matcher,
                   std::vector<Assignment>* active);

  TermArena* arena_;
  std::vector<Tgd> tgds_;
  ChaseLimits limits_;
  ResourceGovernor governor_;
  /// Staging lanes (never serialized; rebuilt from limits on resume).
  std::unique_ptr<ThreadPool> pool_;
  Instance instance_;
  bool done_ = false;
  ChaseStop stop_reason_ = ChaseStop::kFixpoint;
  uint64_t rounds_ = 0;
  uint64_t facts_created_ = 0;
  std::function<void(const RestrictedChaseEngine&)> checkpoint_hook_;
  uint64_t checkpoint_every_rounds_ = 1;
  uint64_t rounds_since_checkpoint_ = 0;
  /// True while a round is firing; a halt that leaves this set means the
  /// engine state is mid-round and must not be offered for checkpointing.
  bool in_round_ = false;
};

/// Convenience wrapper: restricted-chases `input` under `tgds` to fixpoint
/// or limit. (`vocab` is unused but kept for signature symmetry with
/// Chase.)
ChaseResult RestrictedChaseTgds(TermArena* arena, Vocabulary* vocab,
                                std::span<const Tgd> tgds,
                                const Instance& input, ChaseLimits limits = {});

}  // namespace tgdkit
