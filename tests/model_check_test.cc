#include <gtest/gtest.h>

#include "dep/skolem.h"
#include "mc/model_check.h"
#include "parse/parser.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

class ModelCheckTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;
};

TEST_F(ModelCheckTest, TgdSatisfied) {
  Tgd tgd;
  tgd.body = {ws_.A("Emp", {ws_.V("e")})};
  tgd.head = {ws_.A("Mgr", {ws_.V("e"), ws_.V("m")})};
  tgd.exist_vars = {ws_.Vid("m")};
  Instance inst(&ws_.vocab);
  inst.AddFact(ws_.Fc("Emp", {"alice"}));
  inst.AddFact(ws_.Fc("Mgr", {"alice", "boss"}));
  EXPECT_TRUE(CheckTgd(ws_.arena, inst, tgd));
}

TEST_F(ModelCheckTest, TgdViolated) {
  Tgd tgd;
  tgd.body = {ws_.A("Emp", {ws_.V("e")})};
  tgd.head = {ws_.A("Mgr", {ws_.V("e"), ws_.V("m")})};
  tgd.exist_vars = {ws_.Vid("m")};
  Instance inst(&ws_.vocab);
  inst.AddFact(ws_.Fc("Emp", {"alice"}));
  inst.AddFact(ws_.Fc("Emp", {"bob"}));
  inst.AddFact(ws_.Fc("Mgr", {"alice", "boss"}));
  EXPECT_FALSE(CheckTgd(ws_.arena, inst, tgd));  // bob has no manager
}

TEST_F(ModelCheckTest, FullTgdJoin) {
  Tgd trans;
  trans.body = {ws_.A("E", {ws_.V("x"), ws_.V("y")}),
                ws_.A("E", {ws_.V("y"), ws_.V("z")})};
  trans.head = {ws_.A("E", {ws_.V("x"), ws_.V("z")})};
  Instance closed(&ws_.vocab);
  closed.AddFact(ws_.Fc("E", {"a", "b"}));
  closed.AddFact(ws_.Fc("E", {"b", "c"}));
  closed.AddFact(ws_.Fc("E", {"a", "c"}));
  EXPECT_TRUE(CheckTgd(ws_.arena, closed, trans));
  Instance open(&ws_.vocab);
  open.AddFact(ws_.Fc("E", {"a", "b"}));
  open.AddFact(ws_.Fc("E", {"b", "c"}));
  EXPECT_FALSE(CheckTgd(ws_.arena, open, trans));
}

TEST_F(ModelCheckTest, TgdVacuouslyTrueOnEmptyInstance) {
  Tgd tgd;
  tgd.body = {ws_.A("P", {ws_.V("x")})};
  tgd.head = {ws_.A("Q", {ws_.V("x")})};
  Instance inst(&ws_.vocab);
  EXPECT_TRUE(CheckTgd(ws_.arena, inst, tgd));
  std::vector<Tgd> set{tgd};
  EXPECT_TRUE(CheckTgds(ws_.arena, inst, set));
}

TEST_F(ModelCheckTest, NestedTgdExistentialOnlyInChild) {
  // ∀d Dep(d) → ∃dm [ ∀e Emp(e,d) → Mgr(e,dm) ]: dm is chosen per
  // department and must work for all its employees.
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies(
      "nested Dep(d) -> exists dm . [ Emp(e, d) -> Mgr(e, dm) ] .");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const NestedTgd& tau = program->dependencies[0].nested;

  Instance good(&ws_.vocab);
  Parser p2(&ws_.arena, &ws_.vocab);
  ASSERT_TRUE(p2.ParseInstanceInto(
                   "Dep(cs). Emp(alice, cs). Emp(bob, cs)."
                   "Mgr(alice, carol). Mgr(bob, carol).",
                   &good)
                  .ok());
  EXPECT_TRUE(CheckNested(ws_.arena, good, tau));

  // Different managers per employee: no single dm exists.
  Instance bad(&ws_.vocab);
  ASSERT_TRUE(p2.ParseInstanceInto(
                   "Dep(cs). Emp(alice, cs). Emp(bob, cs)."
                   "Mgr(alice, carol). Mgr(bob, dave).",
                   &bad)
                  .ok());
  EXPECT_FALSE(CheckNested(ws_.arena, bad, tau));
}

TEST_F(ModelCheckTest, NestedVersusFlatTgdSemantics) {
  // The flat tgd Emp(e,d) -> exists m . Mgr(e,m) IS satisfied by the
  // per-employee-manager instance that violates the nested variant above.
  Tgd flat;
  flat.body = {ws_.A("Emp", {ws_.V("e"), ws_.V("d")})};
  flat.head = {ws_.A("Mgr", {ws_.V("e"), ws_.V("m")})};
  flat.exist_vars = {ws_.Vid("m")};
  Instance inst(&ws_.vocab);
  Parser p(&ws_.arena, &ws_.vocab);
  ASSERT_TRUE(p.ParseInstanceInto(
                   "Dep(cs). Emp(alice, cs). Emp(bob, cs)."
                   "Mgr(alice, carol). Mgr(bob, dave).",
                   &inst)
                  .ok());
  EXPECT_TRUE(CheckTgd(ws_.arena, inst, flat));
}

TEST_F(ModelCheckTest, SoTgdNeedsSingleFunctionChoice) {
  // Emp(e,d) -> Mgr(e, fdm(d)): the same fdm(d) must serve every employee
  // of the department.
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies(
      "so exists fdm { Emp(e, d) -> Mgr(e, fdm(d)) } .");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const SoTgd& so = program->dependencies[0].so;

  Instance good(&ws_.vocab);
  ASSERT_TRUE(p.ParseInstanceInto(
                   "Emp(alice, cs). Emp(bob, cs)."
                   "Mgr(alice, carol). Mgr(bob, carol).",
                   &good)
                  .ok());
  EXPECT_TRUE(CheckSo(ws_.arena, good, so).satisfied);

  Instance bad(&ws_.vocab);
  ASSERT_TRUE(p.ParseInstanceInto(
                   "Emp(alice, cs). Emp(bob, cs)."
                   "Mgr(alice, carol). Mgr(bob, dave).",
                   &bad)
                  .ok());
  // Mgr(alice, carol) forces fdm(cs)=carol, but then bob needs
  // Mgr(bob, carol), which is absent... unless another fact helps. It
  // doesn't: violated.
  EXPECT_FALSE(CheckSo(ws_.arena, bad, so).satisfied);
}

TEST_F(ModelCheckTest, SoTgdWithEquality) {
  // The paper's self-manager SO tgd.
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies(
      "so exists fmgr {"
      " Emp(e) -> Mgr(e, fmgr(e)) ;"
      " Emp(e) & e = fmgr(e) -> SelfMgr(e) } .");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const SoTgd& so = program->dependencies[0].so;

  // carol manages herself and is marked: satisfiable with fmgr(carol)=carol.
  Instance good(&ws_.vocab);
  ASSERT_TRUE(p.ParseInstanceInto(
                   "Emp(carol). Mgr(carol, carol). SelfMgr(carol).", &good)
                  .ok());
  EXPECT_TRUE(CheckSo(ws_.arena, good, so).satisfied);

  // carol can ONLY be her own manager but SelfMgr is missing: violated.
  Instance bad(&ws_.vocab);
  ASSERT_TRUE(
      p.ParseInstanceInto("Emp(carol). Mgr(carol, carol).", &bad).ok());
  EXPECT_FALSE(CheckSo(ws_.arena, bad, so).satisfied);

  // carol has a different manager available: fmgr(carol)=dave avoids the
  // equality, so SelfMgr is not required.
  Instance alt(&ws_.vocab);
  ASSERT_TRUE(p.ParseInstanceInto(
                   "Emp(carol). Mgr(carol, carol). Mgr(carol, dave).", &alt)
                  .ok());
  EXPECT_TRUE(CheckSo(ws_.arena, alt, so).satisfied);
}

TEST_F(ModelCheckTest, SoTgdNestedTerms) {
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies(
      "so exists f, g { P(x) -> R(x, f(g(x))) } .");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const SoTgd& so = program->dependencies[0].so;

  Instance good(&ws_.vocab);
  ASSERT_TRUE(p.ParseInstanceInto("P(a). R(a, b).", &good).ok());
  // g(a)=anything, f(that)=b works.
  EXPECT_TRUE(CheckSo(ws_.arena, good, so).satisfied);

  Instance bad(&ws_.vocab);
  ASSERT_TRUE(p.ParseInstanceInto("P(a). S(a, b).", &bad).ok());
  EXPECT_FALSE(CheckSo(ws_.arena, bad, so).satisfied);
}

TEST_F(ModelCheckTest, HenkinTgdSharedVsIndependent) {
  // henkin { forall e, d ; exists dm(d) } Emp(e,d) -> Mgr(e,dm):
  // equivalent to the fdm SO tgd above.
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies(
      "henkin { forall e, d ; exists dm(d) } Emp(e, d) -> Mgr(e, dm) .");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const HenkinTgd& henkin = program->dependencies[0].henkin;

  Instance shared(&ws_.vocab);
  ASSERT_TRUE(p.ParseInstanceInto(
                   "Emp(alice, cs). Emp(bob, cs)."
                   "Mgr(alice, carol). Mgr(bob, carol).",
                   &shared)
                  .ok());
  EXPECT_TRUE(CheckHenkin(&ws_.arena, &ws_.vocab, shared, henkin).satisfied);

  Instance split(&ws_.vocab);
  ASSERT_TRUE(p.ParseInstanceInto(
                   "Emp(alice, cs). Emp(bob, cs)."
                   "Mgr(alice, carol). Mgr(bob, dave).",
                   &split)
                  .ok());
  EXPECT_FALSE(CheckHenkin(&ws_.arena, &ws_.vocab, split, henkin).satisfied);
}

TEST_F(ModelCheckTest, HenkinEmployeeIdExample) {
  // (∀d∃dm / ∀e∃eid) Emp(e,d) -> Pair(e,d,eid,dm): the head is protected
  // by the universal variables (the paper's Idea 2), so the choices of
  // eid(e) and dm(d) are pinned per employee and per department.
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies(
      "henkin { forall e, d ; exists eid(e) ; exists dm(d) }"
      " Emp(e, d) -> Pair(e, d, eid, dm) .");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const HenkinTgd& henkin = program->dependencies[0].henkin;

  Instance good(&ws_.vocab);
  ASSERT_TRUE(p.ParseInstanceInto(
                   "Emp(alice, cs). Emp(bob, cs)."
                   "Pair(alice, cs, id_a, m_cs). Pair(bob, cs, id_b, m_cs).",
                   &good)
                  .ok());
  EXPECT_TRUE(CheckHenkin(&ws_.arena, &ws_.vocab, good, henkin).satisfied);

  // Same department, different manager values: dm(cs) cannot be both.
  Instance split_dm(&ws_.vocab);
  ASSERT_TRUE(p.ParseInstanceInto(
                   "Emp(alice, cs). Emp(bob, cs)."
                   "Pair(alice, cs, id_a, m1). Pair(bob, cs, id_b, m2).",
                   &split_dm)
                  .ok());
  EXPECT_FALSE(
      CheckHenkin(&ws_.arena, &ws_.vocab, split_dm, henkin).satisfied);

  // Employee in two departments: eid(alice) must be a single value.
  Instance two_dep(&ws_.vocab);
  ASSERT_TRUE(p.ParseInstanceInto(
                   "Emp(alice, cs). Emp(alice, math)."
                   "Pair(alice, cs, id1, m_cs). Pair(alice, math, id2, m_math).",
                   &two_dep)
                  .ok());
  EXPECT_FALSE(
      CheckHenkin(&ws_.arena, &ws_.vocab, two_dep, henkin).satisfied);

  Instance two_dep_ok(&ws_.vocab);
  ASSERT_TRUE(p.ParseInstanceInto(
                   "Emp(alice, cs). Emp(alice, math)."
                   "Pair(alice, cs, id1, m_cs). Pair(alice, math, id1, m_math).",
                   &two_dep_ok)
                  .ok());
  EXPECT_TRUE(
      CheckHenkin(&ws_.arena, &ws_.vocab, two_dep_ok, henkin).satisfied);
}

TEST_F(ModelCheckTest, NestedViolationWitness) {
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies(
      "nested Dep(d) -> exists dm . [ Emp(e, d) -> Mgr(e, dm) ] .");
  ASSERT_TRUE(program.ok());
  const NestedTgd& tau = program->dependencies[0].nested;
  Instance bad(&ws_.vocab);
  ASSERT_TRUE(p.ParseInstanceInto(
                   "Dep(cs). Dep(math). Emp(alice, cs). Emp(bob, cs)."
                   "Mgr(alice, carol). Mgr(bob, dave).",
                   &bad)
                  .ok());
  auto violation = FindNestedViolation(ws_.arena, bad, tau);
  ASSERT_TRUE(violation.has_value());
  // The failing department is cs (math has no employees, so it's fine).
  EXPECT_EQ(violation->trigger.at(ws_.Vid("d")), ws_.Cv("cs"));
  EXPECT_EQ(violation->ToString(ws_.vocab, bad), "d=cs");
  // Agreement with the Boolean checker.
  EXPECT_FALSE(CheckNested(ws_.arena, bad, tau));
  // And no violation on a model.
  Instance good(&ws_.vocab);
  ASSERT_TRUE(p.ParseInstanceInto(
                   "Dep(cs). Emp(alice, cs). Mgr(alice, carol).", &good)
                  .ok());
  EXPECT_FALSE(FindNestedViolation(ws_.arena, good, tau).has_value());
}

TEST_F(ModelCheckTest, EmptyInstanceSatisfiesSoTgd) {
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies(
      "so exists f { P(x) -> R(f(x)) } .");
  ASSERT_TRUE(program.ok());
  Instance empty(&ws_.vocab);
  EXPECT_TRUE(CheckSo(ws_.arena, empty, program->dependencies[0].so).satisfied);
}

TEST_F(ModelCheckTest, BudgetExceededIsReported) {
  // Satisfiable, but the first two domain values fail for f(a), so the
  // search needs three branches; a budget of two must report exhaustion.
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies(
      "so exists f { P(x) -> R(x, f(x)) } .");
  ASSERT_TRUE(program.ok());
  Instance inst(&ws_.vocab);
  ASSERT_TRUE(p.ParseInstanceInto("P(a). P(b). R(a, a2). R(b, b2).", &inst)
                  .ok());
  McOptions options;
  options.max_branches = 2;
  McResult result =
      CheckSo(ws_.arena, inst, program->dependencies[0].so, options);
  EXPECT_TRUE(result.budget_exceeded);
  EXPECT_FALSE(result.satisfied);
  // With an ample budget the same check succeeds.
  McResult ok = CheckSo(ws_.arena, inst, program->dependencies[0].so);
  EXPECT_TRUE(ok.satisfied);
  EXPECT_FALSE(ok.budget_exceeded);
}

}  // namespace
}  // namespace tgdkit
