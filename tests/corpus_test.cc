// Sweeps the shipped corpus/ files through the whole pipeline: every file
// must parse, validate, classify, Skolemize, and (where an instance is
// provided) chase and answer queries. Exercises the library exactly the
// way the CLI and a downstream user would.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "chase/chase.h"
#include "classify/criteria.h"
#include "dep/skolem.h"
#include "dep/syntactic.h"
#include "parse/parser.h"
#include "query/query.h"
#include "tests/test_util.h"
#include "transform/nested.h"

namespace tgdkit {
namespace {

std::string CorpusPath(const std::string& name) {
  // Tests run from the build tree; the corpus lives in the source tree.
  return std::string(TGDKIT_SOURCE_DIR) + "/corpus/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

class CorpusTest : public ::testing::TestWithParam<const char*> {};

INSTANTIATE_TEST_SUITE_P(Files, CorpusTest,
                         ::testing::Values("paper_intro.tgd",
                                           "paper_selfmgr.tgd",
                                           "paper_tau.tgd",
                                           "paper_theorem41.tgd",
                                           "university.tgd",
                                           "triangular_frontier.tgd",
                                           "tier_polynomial.tgd",
                                           "tier_exponential.tgd",
                                           "tier_nonelementary.tgd"));

TEST_P(CorpusTest, ParsesClassifiesAndSkolemizes) {
  TestWorkspace ws;
  Parser parser(&ws.arena, &ws.vocab);
  auto program = parser.ParseDependencies(ReadAll(CorpusPath(GetParam())));
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_FALSE(program->dependencies.empty());
  for (const ParsedDependency& dep : program->dependencies) {
    SoTgd so;
    switch (dep.kind) {
      case ParsedDependency::Kind::kTgd:
        so = TgdToSo(&ws.arena, &ws.vocab, dep.tgd);
        break;
      case ParsedDependency::Kind::kSo:
        so = dep.so;
        break;
      case ParsedDependency::Kind::kNested:
        so = NestedToSo(&ws.arena, &ws.vocab, dep.nested);
        break;
      case ParsedDependency::Kind::kHenkin:
        so = HenkinToSo(&ws.arena, &ws.vocab, dep.henkin);
        break;
    }
    EXPECT_TRUE(ValidateSoTgd(ws.arena, so).ok()) << dep.label;
    // Classification must never crash and must respect the diagrams'
    // monotone edges.
    Figure1Membership f1 = ClassifyFigure1(ws.arena, so);
    if (f1.tgd) {
      EXPECT_TRUE(f1.standard_henkin) << dep.label;
    }
    if (f1.standard_henkin) {
      EXPECT_TRUE(f1.henkin) << dep.label;
    }
    Figure2Membership f2 = ClassifyFigure2(ws.arena, so);
    if (f2.linear) {
      EXPECT_TRUE(f2.guarded) << dep.label;
    }
    if (f2.guarded) {
      EXPECT_TRUE(f2.weakly_guarded) << dep.label;
    }
  }
}

TEST(CorpusUniversityTest, ChasesAndAnswers) {
  TestWorkspace ws;
  Parser parser(&ws.arena, &ws.vocab);
  auto program =
      parser.ParseDependencies(ReadAll(CorpusPath("university.tgd")));
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  Instance source(&ws.vocab);
  ASSERT_TRUE(parser.ParseInstanceInto(
                   ReadAll(CorpusPath("university.facts")), &source)
                  .ok());

  std::vector<SoTgd> pieces;
  std::vector<Tgd> tgds = program->Tgds();
  pieces.push_back(TgdsToSo(&ws.arena, &ws.vocab, tgds));
  for (const SoTgd& so : program->Sos()) pieces.push_back(so);
  for (const NestedTgd& nested : program->Nesteds()) {
    pieces.push_back(NestedToSo(&ws.arena, &ws.vocab, nested));
  }
  SoTgd rules = MergeSo(pieces);
  EXPECT_TRUE(IsWeaklyAcyclic(ws.arena, rules));

  ChaseResult model = Chase(&ws.arena, &ws.vocab, rules, source);
  ASSERT_TRUE(model.Terminated());

  auto attends = parser.ParseQuery("ans(s) :- Attends(s).");
  ASSERT_TRUE(attends.ok());
  CertainAnswers who =
      ComputeCertainAnswers(&ws.arena, &ws.vocab, rules, source, *attends);
  EXPECT_TRUE(who.Complete());
  EXPECT_EQ(who.answers.size(), 3u);  // ada, bob, eve

  // Every student taking a course is seated in some section of it.
  auto seated = parser.ParseQuery(
      "ans(s) :- Section(c, sec), Seated(sec, s).");
  ASSERT_TRUE(seated.ok());
  CertainAnswers seats =
      ComputeCertainAnswers(&ws.arena, &ws.vocab, rules, source, *seated);
  EXPECT_EQ(seats.answers.size(), 3u);
}

TEST(CorpusTheorem41Test, MatchesBuiltInWitness) {
  // The corpus file and reduce/separation.h must express the same Σ.
  TestWorkspace ws;
  Parser parser(&ws.arena, &ws.vocab);
  auto program = parser.ParseDependencies(
      ReadAll(CorpusPath("paper_theorem41.tgd")));
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->Henkins().size(), 1u);
  ASSERT_EQ(program->Tgds().size(), 3u);
  EXPECT_TRUE(program->Henkins()[0].IsStandard());

  // Chase I_2 and verify the 2x2 bipartite structure appears.
  Instance source(&ws.vocab);
  ASSERT_TRUE(parser.ParseInstanceInto(
                   "P(a1, b1). P(a1, b2). P(a2, b1). P(a2, b2).", &source)
                  .ok());
  std::vector<Tgd> tgds = program->Tgds();
  std::vector<HenkinTgd> henkins = program->Henkins();
  std::vector<SoTgd> pieces{TgdsToSo(&ws.arena, &ws.vocab, tgds),
                            HenkinsToSo(&ws.arena, &ws.vocab, henkins)};
  SoTgd rules = MergeSo(pieces);
  ChaseResult model = Chase(&ws.arena, &ws.vocab, rules, source);
  ASSERT_TRUE(model.Terminated());
  EXPECT_EQ(model.instance.NumTuples(ws.vocab.FindRelation("R")), 4u);
  EXPECT_EQ(model.instance.NumTuples(ws.vocab.FindRelation("Q")), 2u);
  EXPECT_EQ(model.instance.NumTuples(ws.vocab.FindRelation("S")), 2u);
}

TEST(CorpusFrontierTest, TriangularFrontierHasExactlyTheNewClass) {
  // The expected-verdict gate for the flagship corpus program: TG and
  // nothing else — the ruleset CI formerly flagged "no decidable class".
  TestWorkspace ws;
  Parser parser(&ws.arena, &ws.vocab);
  auto program = parser.ParseDependencies(
      ReadAll(CorpusPath("triangular_frontier.tgd")));
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->Sos().size(), 1u);
  Figure2Membership m = ClassifyFigure2(ws.arena, program->Sos()[0]);
  EXPECT_EQ(ToString(m), "triangularly-guarded");
  EXPECT_EQ(ChaseComplexityTier(ws.arena, program->Sos()[0]),
            ComplexityTier::kExponential);
}

TEST(CorpusFrontierTest, TierFilesLandOnTheirAdvertisedTier) {
  struct Expected {
    const char* file;
    ComplexityTier tier;
  };
  const Expected cases[] = {
      {"tier_polynomial.tgd", ComplexityTier::kPolynomial},
      {"tier_exponential.tgd", ComplexityTier::kExponential},
      {"tier_nonelementary.tgd", ComplexityTier::kNonElementary},
  };
  for (const Expected& c : cases) {
    TestWorkspace ws;
    Parser parser(&ws.arena, &ws.vocab);
    auto program = parser.ParseDependencies(ReadAll(CorpusPath(c.file)));
    ASSERT_TRUE(program.ok()) << c.file;
    std::vector<Tgd> tgds = program->Tgds();
    SoTgd rules = TgdsToSo(&ws.arena, &ws.vocab, tgds);
    EXPECT_EQ(ChaseComplexityTier(ws.arena, rules), c.tier) << c.file;
  }
}

}  // namespace
}  // namespace tgdkit
