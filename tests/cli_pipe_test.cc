// Tests for the CLI's broken-stdout contract (docs/FORMAT.md): when the
// consumer of `tgdkit ... | head` goes away, the process must exit with
// the dedicated code 6 (kExitPipe) — distinct from both success and the
// engine's own failures, so pipelines can tell "the run was fine but
// the output was not delivered" from everything else. The child is
// forked so the SIGPIPE/stdout plumbing of the real entry point
// (CliMain) is what gets exercised.
#include <gtest/gtest.h>

#include <fcntl.h>
#include <sys/wait.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "cli/cli.h"

namespace tgdkit {
namespace {

int RunCliMainWithStdout(int stdout_fd,
                         const std::vector<std::string>& args) {
  pid_t pid = fork();
  if (pid == 0) {
    dup2(stdout_fd, STDOUT_FILENO);
    close(stdout_fd);
    _exit(CliMain(args));
  }
  int status = 0;
  waitpid(pid, &status, 0);
  EXPECT_TRUE(WIFEXITED(status));
  return WIFEXITED(status) ? WEXITSTATUS(status) : -1;
}

TEST(CliPipe, ClosedStdoutPipeExitsWithTheDedicatedCode) {
  int fds[2];
  ASSERT_EQ(pipe(fds), 0);
  // Parent closes both ends before the child writes: the child's stdout
  // is a broken pipe. SIGPIPE is ignored by CliMain, so the failed
  // write surfaces as a stream error, not a silent kill.
  pid_t pid = fork();
  ASSERT_GE(pid, 0);
  if (pid == 0) {
    dup2(fds[1], STDOUT_FILENO);
    close(fds[0]);
    close(fds[1]);
    // Enough output to overflow the pipe buffer no matter its size.
    _exit(CliMain({"selftest", "--stdout-lines", "200000"}));
  }
  close(fds[0]);
  close(fds[1]);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status))
      << "child was killed by signal " << WTERMSIG(status)
      << " instead of exiting (SIGPIPE not ignored?)";
  EXPECT_EQ(WEXITSTATUS(status), kExitPipe);
}

TEST(CliPipe, HealthyStdoutKeepsTheNormalExitCode) {
  int devnull = open("/dev/null", O_WRONLY);
  ASSERT_GE(devnull, 0);
  EXPECT_EQ(RunCliMainWithStdout(devnull,
                                 {"selftest", "--stdout-lines", "10"}),
            kExitOk);
  close(devnull);
}

TEST(CliPipe, VerdictExitCodesPassThroughUnchanged) {
  int devnull = open("/dev/null", O_WRONLY);
  ASSERT_GE(devnull, 0);
  // An engine failure must stay distinguishable from a delivery failure.
  EXPECT_EQ(RunCliMainWithStdout(devnull, {"selftest", "--die-exit", "5"}),
            kExitInternal);
  close(devnull);
}

}  // namespace
}  // namespace tgdkit
