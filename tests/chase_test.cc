#include <gtest/gtest.h>

#include "chase/chase.h"
#include "dep/skolem.h"
#include "homo/core.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

class ChaseTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;
};

TEST_F(ChaseTest, SingleRuleCreatesNull) {
  // Emp(e, d) -> exists dm . Mgr(e, dm), Skolemized.
  Tgd tgd;
  tgd.body = {ws_.A("Emp", {ws_.V("e"), ws_.V("d")})};
  tgd.head = {ws_.A("Mgr", {ws_.V("e"), ws_.V("dm")})};
  tgd.exist_vars = {ws_.Vid("dm")};
  SoTgd so = TgdToSo(&ws_.arena, &ws_.vocab, tgd);

  Instance input(&ws_.vocab);
  input.AddFact(ws_.Fc("Emp", {"alice", "cs"}));

  ChaseResult result = Chase(&ws_.arena, &ws_.vocab, so, input);
  EXPECT_TRUE(result.Terminated());
  RelationId mgr = ws_.vocab.FindRelation("Mgr");
  ASSERT_EQ(result.instance.NumTuples(mgr), 1u);
  auto tuple = result.instance.Tuple(mgr, 0);
  EXPECT_EQ(tuple[0], ws_.Cv("alice"));
  EXPECT_TRUE(tuple[1].is_null());
}

TEST_F(ChaseTest, SkolemChaseIsCanonical) {
  // Two employees in the same department share the department manager when
  // the Skolem term depends only on d (the paper's motivating example).
  FunctionId fdm = ws_.vocab.InternFunction("fdm", 1);
  SoTgd so;
  so.functions = {fdm};
  SoPart p;
  p.body = {ws_.A("Emp", {ws_.V("e"), ws_.V("d")})};
  p.head = {ws_.A("Mgr", {ws_.V("e"), ws_.F("fdm", {ws_.V("d")})})};
  so.parts = {p};

  Instance input(&ws_.vocab);
  input.AddFact(ws_.Fc("Emp", {"alice", "cs"}));
  input.AddFact(ws_.Fc("Emp", {"bob", "cs"}));
  input.AddFact(ws_.Fc("Emp", {"carol", "math"}));

  ChaseResult result = Chase(&ws_.arena, &ws_.vocab, so, input);
  RelationId mgr = ws_.vocab.FindRelation("Mgr");
  ASSERT_EQ(result.instance.NumTuples(mgr), 3u);
  // alice and bob share one null; carol gets a different one.
  Value alice_mgr, bob_mgr, carol_mgr;
  for (uint32_t row = 0; row < 3; ++row) {
    auto t = result.instance.Tuple(mgr, row);
    if (t[0] == ws_.Cv("alice")) alice_mgr = t[1];
    if (t[0] == ws_.Cv("bob")) bob_mgr = t[1];
    if (t[0] == ws_.Cv("carol")) carol_mgr = t[1];
  }
  EXPECT_EQ(alice_mgr, bob_mgr);
  EXPECT_NE(alice_mgr, carol_mgr);
}

TEST_F(ChaseTest, TgdSkolemizationSeparatesManagers) {
  // Under plain-tgd Skolemization f(e, d), alice and bob do NOT share.
  Tgd tgd;
  tgd.body = {ws_.A("Emp", {ws_.V("e"), ws_.V("d")})};
  tgd.head = {ws_.A("Mgr", {ws_.V("e"), ws_.V("dm")})};
  tgd.exist_vars = {ws_.Vid("dm")};
  SoTgd so = TgdToSo(&ws_.arena, &ws_.vocab, tgd);

  Instance input(&ws_.vocab);
  input.AddFact(ws_.Fc("Emp", {"alice", "cs"}));
  input.AddFact(ws_.Fc("Emp", {"bob", "cs"}));

  ChaseResult result = Chase(&ws_.arena, &ws_.vocab, so, input);
  RelationId mgr = ws_.vocab.FindRelation("Mgr");
  auto t0 = result.instance.Tuple(mgr, 0);
  auto t1 = result.instance.Tuple(mgr, 1);
  EXPECT_NE(t0[1], t1[1]);
}

TEST_F(ChaseTest, FiringIsIdempotent) {
  FunctionId f = ws_.vocab.InternFunction("fid", 1);
  SoTgd so;
  so.functions = {f};
  SoPart p;
  p.body = {ws_.A("P", {ws_.V("x")})};
  p.head = {ws_.A("R", {ws_.V("x"), ws_.F("fid", {ws_.V("x")})})};
  so.parts = {p};

  Instance input(&ws_.vocab);
  input.AddFact(ws_.Fc("P", {"a"}));
  ChaseEngine engine(&ws_.arena, &ws_.vocab, so, input);
  EXPECT_TRUE(engine.Step());
  EXPECT_FALSE(engine.Step());  // same trigger produces the same null
  EXPECT_TRUE(engine.done());
  EXPECT_EQ(engine.stop_reason(), ChaseStop::kFixpoint);
}

TEST_F(ChaseTest, TransitiveClosureFullTgd) {
  Tgd trans;
  trans.body = {ws_.A("E", {ws_.V("x"), ws_.V("y")}),
                ws_.A("E", {ws_.V("y"), ws_.V("z")})};
  trans.head = {ws_.A("E", {ws_.V("x"), ws_.V("z")})};
  SoTgd so = TgdToSo(&ws_.arena, &ws_.vocab, trans);

  Instance input(&ws_.vocab);
  input.AddFact(ws_.Fc("E", {"a", "b"}));
  input.AddFact(ws_.Fc("E", {"b", "c"}));
  input.AddFact(ws_.Fc("E", {"c", "d"}));

  ChaseResult result = Chase(&ws_.arena, &ws_.vocab, so, input);
  EXPECT_TRUE(result.Terminated());
  RelationId e = ws_.vocab.FindRelation("E");
  EXPECT_EQ(result.instance.NumTuples(e), 6u);  // all pairs a<b<c<d
}

TEST_F(ChaseTest, NonTerminatingChaseHitsDepthLimit) {
  // P(x) -> P(f(x)): classic non-terminating Skolem chase.
  FunctionId f = ws_.vocab.InternFunction("succ", 1);
  SoTgd so;
  so.functions = {f};
  SoPart p;
  p.body = {ws_.A("P", {ws_.V("x")})};
  p.head = {ws_.A("P", {ws_.F("succ", {ws_.V("x")})})};
  so.parts = {p};

  Instance input(&ws_.vocab);
  input.AddFact(ws_.Fc("P", {"zero"}));

  ChaseLimits limits;
  limits.max_term_depth = 10;
  ChaseResult result = Chase(&ws_.arena, &ws_.vocab, so, input, limits);
  EXPECT_FALSE(result.Terminated());
  EXPECT_EQ(result.stop_reason, ChaseStop::kDepthLimit);
  RelationId pr = ws_.vocab.FindRelation("P");
  EXPECT_GE(result.instance.NumTuples(pr), 10u);
}

TEST_F(ChaseTest, FactLimitStopsChase) {
  FunctionId f = ws_.vocab.InternFunction("wide", 1);
  SoTgd so;
  so.functions = {f};
  SoPart p;
  p.body = {ws_.A("P", {ws_.V("x")})};
  p.head = {ws_.A("P", {ws_.F("wide", {ws_.V("x")})})};
  so.parts = {p};
  Instance input(&ws_.vocab);
  input.AddFact(ws_.Fc("P", {"zero"}));
  ChaseLimits limits;
  limits.max_facts = 5;
  ChaseResult result = Chase(&ws_.arena, &ws_.vocab, so, input, limits);
  EXPECT_EQ(result.stop_reason, ChaseStop::kFactLimit);
  EXPECT_LE(result.instance.NumFacts(), 5u);
}

TEST_F(ChaseTest, EqualityFreeInterpretation) {
  // Emp(e) -> Mgr(e, f(e));  Emp(e) & e = f(e) -> SelfMgr(e).
  // Under the free interpretation e != f(e) always, so SelfMgr stays empty.
  FunctionId f = ws_.vocab.InternFunction("fmgr", 1);
  SoTgd so;
  so.functions = {f};
  SoPart p1;
  p1.body = {ws_.A("Emp", {ws_.V("e")})};
  p1.head = {ws_.A("Mgr", {ws_.V("e"), ws_.F("fmgr", {ws_.V("e")})})};
  SoPart p2;
  p2.body = {ws_.A("Emp", {ws_.V("e")})};
  p2.equalities = {{ws_.V("e"), ws_.F("fmgr", {ws_.V("e")})}};
  p2.head = {ws_.A("SelfMgr", {ws_.V("e")})};
  so.parts = {p1, p2};

  Instance input(&ws_.vocab);
  input.AddFact(ws_.Fc("Emp", {"alice"}));
  ChaseResult result = Chase(&ws_.arena, &ws_.vocab, so, input);
  EXPECT_TRUE(result.Terminated());
  EXPECT_EQ(result.instance.NumTuples(ws_.vocab.FindRelation("SelfMgr")), 0u);
  EXPECT_EQ(result.instance.NumTuples(ws_.vocab.FindRelation("Mgr")), 1u);
}

TEST_F(ChaseTest, EqualitySatisfiedBySameTerm) {
  // R(x, y) & f(x) = f(y) fires only when x == y (free interpretation).
  FunctionId f = ws_.vocab.InternFunction("feq", 1);
  SoTgd so;
  so.functions = {f};
  SoPart p;
  p.body = {ws_.A("R", {ws_.V("x"), ws_.V("y")})};
  p.equalities = {{ws_.F("feq", {ws_.V("x")}), ws_.F("feq", {ws_.V("y")})}};
  p.head = {ws_.A("Same", {ws_.V("x"), ws_.V("y")})};
  so.parts = {p};

  Instance input(&ws_.vocab);
  input.AddFact(ws_.Fc("R", {"a", "a"}));
  input.AddFact(ws_.Fc("R", {"a", "b"}));
  ChaseResult result = Chase(&ws_.arena, &ws_.vocab, so, input);
  RelationId same = ws_.vocab.FindRelation("Same");
  ASSERT_EQ(result.instance.NumTuples(same), 1u);
  auto t = result.instance.Tuple(same, 0);
  EXPECT_EQ(t[0], ws_.Cv("a"));
  EXPECT_EQ(t[1], ws_.Cv("a"));
}

TEST_F(ChaseTest, InputNullsAreOpaqueIndividuals) {
  FunctionId f = ws_.vocab.InternFunction("fnul", 1);
  SoTgd so;
  so.functions = {f};
  SoPart p;
  p.body = {ws_.A("P", {ws_.V("x")})};
  p.head = {ws_.A("R", {ws_.V("x"), ws_.F("fnul", {ws_.V("x")})})};
  so.parts = {p};

  Instance input(&ws_.vocab);
  RelationId pr = ws_.vocab.InternRelation("P", 1);
  Value n = input.FreshNull();
  input.AddFact(pr, std::vector<Value>{n});

  ChaseResult result = Chase(&ws_.arena, &ws_.vocab, so, input);
  RelationId r = ws_.vocab.FindRelation("R");
  ASSERT_EQ(result.instance.NumTuples(r), 1u);
  auto t = result.instance.Tuple(r, 0);
  EXPECT_EQ(t[0], n);
  EXPECT_TRUE(t[1].is_null());
  EXPECT_NE(t[1], n);
}

TEST_F(ChaseTest, NullProvenanceRecordsSkolemTerm) {
  FunctionId f = ws_.vocab.InternFunction("fprov", 1);
  SoTgd so;
  so.functions = {f};
  SoPart p;
  p.body = {ws_.A("P", {ws_.V("x")})};
  p.head = {ws_.A("R", {ws_.F("fprov", {ws_.V("x")})})};
  so.parts = {p};
  Instance input(&ws_.vocab);
  input.AddFact(ws_.Fc("P", {"a"}));
  ChaseEngine engine(&ws_.arena, &ws_.vocab, so, input);
  engine.Run();
  RelationId r = ws_.vocab.FindRelation("R");
  auto t = engine.instance().Tuple(r, 0);
  ASSERT_TRUE(t[0].is_null());
  TermId prov = engine.NullProvenance(t[0].index());
  ASSERT_NE(prov, kInvalidTerm);
  EXPECT_EQ(ws_.arena.ToString(prov, ws_.vocab), "fprov(\"a\")");
}

TEST_F(ChaseTest, ChaseResultExplainsNulls) {
  // Dep(d) -> Dep2(fd(d)); Dep2 null explains as fd("cs"); deep chains
  // explain as nested terms.
  FunctionId fd = ws_.vocab.InternFunction("fdx", 1);
  FunctionId fe = ws_.vocab.InternFunction("fex", 1);
  SoTgd so;
  so.functions = {fd, fe};
  SoPart p1;
  p1.body = {ws_.A("Dep", {ws_.V("d")})};
  p1.head = {ws_.A("Dep2", {ws_.F("fdx", {ws_.V("d")})})};
  SoPart p2;
  p2.body = {ws_.A("Dep2", {ws_.V("u")})};
  p2.head = {ws_.A("Dep3", {ws_.F("fex", {ws_.V("u")})})};
  so.parts = {p1, p2};
  Instance input(&ws_.vocab);
  input.AddFact(ws_.Fc("Dep", {"cs"}));
  ChaseResult result = Chase(&ws_.arena, &ws_.vocab, so, input);
  ASSERT_TRUE(result.Terminated());
  RelationId dep2 = ws_.vocab.FindRelation("Dep2");
  RelationId dep3 = ws_.vocab.FindRelation("Dep3");
  Value u = result.instance.Tuple(dep2, 0)[0];
  EXPECT_EQ(result.ExplainValue(ws_.arena, ws_.vocab, u), "fdx(\"cs\")");
  Value w = result.instance.Tuple(dep3, 0)[0];
  EXPECT_EQ(result.ExplainValue(ws_.arena, ws_.vocab, w),
            "fex(fdx(\"cs\"))");
  // Constants explain as themselves.
  EXPECT_EQ(result.ExplainValue(ws_.arena, ws_.vocab, ws_.Cv("cs")), "cs");
}

TEST_F(ChaseTest, RestrictedChaseAvoidsRedundantNulls) {
  // Emp(e) -> exists m . Mgr(e, m), with Mgr(alice, boss) already present:
  // the restricted chase does not fire; the oblivious chase does.
  Tgd tgd;
  tgd.body = {ws_.A("Emp", {ws_.V("e")})};
  tgd.head = {ws_.A("Mgr", {ws_.V("e"), ws_.V("m")})};
  tgd.exist_vars = {ws_.Vid("m")};

  Instance input(&ws_.vocab);
  input.AddFact(ws_.Fc("Emp", {"alice"}));
  input.AddFact(ws_.Fc("Mgr", {"alice", "boss"}));

  std::vector<Tgd> tgds{tgd};
  ChaseResult restricted =
      RestrictedChaseTgds(&ws_.arena, &ws_.vocab, tgds, input);
  EXPECT_TRUE(restricted.Terminated());
  EXPECT_EQ(restricted.instance.NumFacts(), 2u);

  SoTgd so = TgdToSo(&ws_.arena, &ws_.vocab, tgd);
  ChaseResult oblivious = Chase(&ws_.arena, &ws_.vocab, so, input);
  EXPECT_EQ(oblivious.instance.NumFacts(), 3u);
}

TEST_F(ChaseTest, RestrictedAndObliviousAreHomEquivalent) {
  Tgd tgd;
  tgd.body = {ws_.A("P", {ws_.V("x")})};
  tgd.head = {ws_.A("R", {ws_.V("x"), ws_.V("y")})};
  tgd.exist_vars = {ws_.Vid("y")};
  Tgd copy;
  copy.body = {ws_.A("R", {ws_.V("x"), ws_.V("y")})};
  copy.head = {ws_.A("S", {ws_.V("y")})};

  Instance input(&ws_.vocab);
  input.AddFact(ws_.Fc("P", {"a"}));
  input.AddFact(ws_.Fc("P", {"b"}));

  std::vector<Tgd> tgds{tgd, copy};
  ChaseResult restricted =
      RestrictedChaseTgds(&ws_.arena, &ws_.vocab, tgds, input);
  SoTgd so = TgdsToSo(&ws_.arena, &ws_.vocab, tgds);
  ChaseResult oblivious = Chase(&ws_.arena, &ws_.vocab, so, input);
  EXPECT_TRUE(HomomorphicallyEquivalent(&ws_.arena, &ws_.vocab,
                                        restricted.instance,
                                        oblivious.instance));
}

TEST_F(ChaseTest, MultiPartRuleChains) {
  // Dep(d) -> Dep2(fd(d));  Dep(d) & Grp(d,g) -> Grp2(fd(d), fg(d,g)).
  FunctionId fd = ws_.vocab.InternFunction("fdc", 1);
  FunctionId fg = ws_.vocab.InternFunction("fgc", 2);
  SoTgd so;
  so.functions = {fd, fg};
  TermId d = ws_.V("d"), g = ws_.V("g");
  SoPart p1;
  p1.body = {ws_.A("Dep", {d})};
  p1.head = {ws_.A("Dep2", {ws_.F("fdc", {d})})};
  SoPart p2;
  p2.body = {ws_.A("Dep", {d}), ws_.A("Grp", {d, g})};
  p2.head = {ws_.A("Grp2", {ws_.F("fdc", {d}), ws_.F("fgc", {d, g})})};
  so.parts = {p1, p2};

  Instance input(&ws_.vocab);
  input.AddFact(ws_.Fc("Dep", {"cs"}));
  input.AddFact(ws_.Fc("Grp", {"cs", "a"}));
  input.AddFact(ws_.Fc("Grp", {"cs", "b"}));

  ChaseResult result = Chase(&ws_.arena, &ws_.vocab, so, input);
  RelationId dep2 = ws_.vocab.FindRelation("Dep2");
  RelationId grp2 = ws_.vocab.FindRelation("Grp2");
  EXPECT_EQ(result.instance.NumTuples(dep2), 1u);
  EXPECT_EQ(result.instance.NumTuples(grp2), 2u);
  // Both Grp2 facts share the same fd(cs) null, which also appears in Dep2.
  Value dep_null = result.instance.Tuple(dep2, 0)[0];
  EXPECT_EQ(result.instance.Tuple(grp2, 0)[0], dep_null);
  EXPECT_EQ(result.instance.Tuple(grp2, 1)[0], dep_null);
}

}  // namespace
}  // namespace tgdkit
