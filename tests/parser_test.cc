#include <gtest/gtest.h>

#include "dep/skolem.h"
#include "dep/syntactic.h"
#include "parse/parser.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

class ParserTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;
  Parser MakeParser() { return Parser(&ws_.arena, &ws_.vocab); }
};

TEST_F(ParserTest, ParsesTgd) {
  Parser p = MakeParser();
  auto program = p.ParseDependencies(
      "Emp(e, d) -> exists dm . Mgr(e, dm) .");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->dependencies.size(), 1u);
  const ParsedDependency& dep = program->dependencies[0];
  EXPECT_EQ(dep.kind, ParsedDependency::Kind::kTgd);
  EXPECT_EQ(dep.tgd.body.size(), 1u);
  EXPECT_EQ(dep.tgd.exist_vars.size(), 1u);
  EXPECT_EQ(ToString(ws_.arena, ws_.vocab, dep.tgd),
            "Emp(e, d) -> exists dm . Mgr(e, dm)");
}

TEST_F(ParserTest, ParsesFullTgdWithConjunction) {
  Parser p = MakeParser();
  auto program = p.ParseDependencies(
      "E(x, y) & E(y, z) -> E(x, z) .");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_TRUE(program->dependencies[0].tgd.IsFull());
  EXPECT_EQ(program->dependencies[0].tgd.body.size(), 2u);
}

TEST_F(ParserTest, ParsesLabels) {
  Parser p = MakeParser();
  auto program = p.ParseDependencies(
      "copy_q: Q0(x, y) -> Q(x, y) . copy_r: R0(x, y) -> R(x, y) .");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  ASSERT_EQ(program->dependencies.size(), 2u);
  EXPECT_EQ(program->dependencies[0].label, "copy_q");
  EXPECT_EQ(program->dependencies[1].label, "copy_r");
}

TEST_F(ParserTest, ParsesConstantsInDependencies) {
  Parser p = MakeParser();
  auto program = p.ParseDependencies(
      R"(P(x) -> Goal("yes", 42) .)");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const Atom& goal = program->dependencies[0].tgd.head[0];
  EXPECT_TRUE(ws_.arena.IsConstant(goal.args[0]));
  EXPECT_TRUE(ws_.arena.IsConstant(goal.args[1]));
  EXPECT_EQ(ws_.vocab.ConstantName(ws_.arena.symbol(goal.args[1])), "42");
}

TEST_F(ParserTest, ParsesSoTgdWithEquality) {
  Parser p = MakeParser();
  auto program = p.ParseDependencies(
      "so exists fmgr {"
      "  Emp(e) -> Mgr(e, fmgr(e)) ;"
      "  Emp(e) & e = fmgr(e) -> SelfMgr(e)"
      "} .");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const SoTgd& so = program->dependencies[0].so;
  ASSERT_EQ(so.parts.size(), 2u);
  EXPECT_EQ(so.functions.size(), 1u);
  EXPECT_EQ(so.parts[1].equalities.size(), 1u);
  EXPECT_FALSE(so.IsPlain(ws_.arena));
}

TEST_F(ParserTest, ParsesPlainSoTgd) {
  Parser p = MakeParser();
  auto program = p.ParseDependencies(
      "so exists f, g { P(x1, x2) -> Q(x1, f(x1)) & R(f(x1), g(x2)) &"
      " S(g(x2), x2) } .");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const SoTgd& so = program->dependencies[0].so;
  EXPECT_TRUE(so.IsPlain(ws_.arena));
  EXPECT_TRUE(IsSkolemizedStandardHenkin(ws_.arena, so));
}

TEST_F(ParserTest, ParsesNestedTgd) {
  Parser p = MakeParser();
  auto program = p.ParseDependencies(
      "nested Dep(d) -> exists dm . Dep2(d, dm) &"
      " [ Emp(e, d) -> Mgr(e, d, dm) ] .");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const NestedTgd& nested = program->dependencies[0].nested;
  EXPECT_EQ(nested.NumParts(), 2u);
  EXPECT_EQ(nested.Depth(), 2u);
  // Inner part's inferred universal is e only (d bound by the outer part).
  ASSERT_EQ(nested.root.children.size(), 1u);
  EXPECT_EQ(nested.root.children[0].univ_vars,
            std::vector<VariableId>{ws_.Vid("e")});
}

TEST_F(ParserTest, ParsesThreeLevelNestedTgd) {
  Parser p = MakeParser();
  auto program = p.ParseDependencies(
      "nested Dep(d) -> exists d2 . Dep2(d2) &"
      " [ Grp(d, g) -> exists g2 . Grp2(d2, g2) &"
      "   [ Emp(d, g, e) -> Emp2(d2, g2, e) ] ] .");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const NestedTgd& nested = program->dependencies[0].nested;
  EXPECT_EQ(nested.NumParts(), 3u);
  EXPECT_EQ(nested.Depth(), 3u);
}

TEST_F(ParserTest, ParsesHenkinTgd) {
  Parser p = MakeParser();
  auto program = p.ParseDependencies(
      "henkin { forall e, d ; exists eid(e) ; exists dm(d) }"
      " Emp(e, d) -> Mgr(eid, dm) .");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  const HenkinTgd& henkin = program->dependencies[0].henkin;
  EXPECT_TRUE(henkin.IsStandard());
  auto essential = henkin.quantifier.EssentialOrder();
  ASSERT_EQ(essential.size(), 2u);
  EXPECT_EQ(essential[0].second, std::vector<VariableId>{ws_.Vid("e")});
  EXPECT_EQ(essential[1].second, std::vector<VariableId>{ws_.Vid("d")});
}

TEST_F(ParserTest, ParsesNonStandardHenkinTgd) {
  Parser p = MakeParser();
  auto program = p.ParseDependencies(
      "henkin { forall x1, x2, x3 ; exists y1(x1, x2) ; exists y2(x2, x3) }"
      " P(x1, x2, x3) -> R(y1, y2) .");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_FALSE(program->dependencies[0].henkin.IsStandard());
}

TEST_F(ParserTest, RejectsArityMismatch) {
  Parser p = MakeParser();
  auto program = p.ParseDependencies("R(x, y) -> R(x) .");
  ASSERT_FALSE(program.ok());
  EXPECT_EQ(program.status().code(), Status::Code::kParseError);
  EXPECT_NE(program.status().message().find("arity"), std::string::npos);
}

TEST_F(ParserTest, RejectsUnlistedExistential) {
  Parser p = MakeParser();
  auto program = p.ParseDependencies("P(x) -> R(x, y) .");
  ASSERT_FALSE(program.ok());
}

TEST_F(ParserTest, RejectsMissingDot) {
  Parser p = MakeParser();
  auto program = p.ParseDependencies("P(x) -> R(x)");
  ASSERT_FALSE(program.ok());
}

TEST_F(ParserTest, RejectsReservedWordAsRelation) {
  Parser p = MakeParser();
  auto program = p.ParseDependencies("exists(x) -> R(x) .");
  ASSERT_FALSE(program.ok());
}

TEST_F(ParserTest, ReportsLineAndColumn) {
  Parser p = MakeParser();
  auto program = p.ParseDependencies("P(x) -> R(x) .\nQ(x) -> ) .");
  ASSERT_FALSE(program.ok());
  EXPECT_NE(program.status().message().find("line 2"), std::string::npos);
}

TEST_F(ParserTest, ParsesInstance) {
  Parser p = MakeParser();
  Instance inst(&ws_.vocab);
  Status s = p.ParseInstanceInto(
      "Emp(alice, cs). Emp(bob, cs).\n"
      "# a comment\n"
      "Mgr(alice, _m). Mgr(bob, _m).",
      &inst);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(inst.NumFacts(), 4u);
  EXPECT_EQ(inst.num_nulls(), 1u);  // _m shared
  RelationId mgr = ws_.vocab.FindRelation("Mgr");
  EXPECT_EQ(inst.Tuple(mgr, 0)[1], inst.Tuple(mgr, 1)[1]);
}

TEST_F(ParserTest, InstanceDistinctNullLabels) {
  Parser p = MakeParser();
  Instance inst(&ws_.vocab);
  Status s = p.ParseInstanceInto("R(_a, _b). R(_b, _c).", &inst);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(inst.num_nulls(), 3u);
}

TEST_F(ParserTest, ParsesQuery) {
  Parser p = MakeParser();
  auto q = p.ParseQuery("ans(x, z) :- R(x, y), S(y, z).");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_EQ(q->free_vars.size(), 2u);
  EXPECT_EQ(q->atoms.size(), 2u);
}

TEST_F(ParserTest, ParsesBooleanQuery) {
  Parser p = MakeParser();
  auto q = p.ParseQuery("ans() :- R(x, x).");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(q->IsBoolean());
}

TEST_F(ParserTest, QueryRejectsUnsafeFreeVariable) {
  Parser p = MakeParser();
  auto q = p.ParseQuery("ans(w) :- R(x, y).");
  ASSERT_FALSE(q.ok());
}

TEST_F(ParserTest, QueryWithConstants) {
  Parser p = MakeParser();
  auto q = p.ParseQuery(R"(ans(x) :- Emp(x, "cs").)");
  ASSERT_TRUE(q.ok()) << q.status().ToString();
  EXPECT_TRUE(ws_.arena.IsConstant(q->atoms[0].args[1]));
}

TEST_F(ParserTest, RoundTripTgdPrintParse) {
  Parser p = MakeParser();
  auto program = p.ParseDependencies(
      "Emp(e, d) -> exists dm . Mgr(e, dm) .");
  ASSERT_TRUE(program.ok());
  std::string printed = ToString(ws_.arena, ws_.vocab,
                                 program->dependencies[0].tgd) + " .";
  auto reparsed = p.ParseDependencies(printed);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(ToString(ws_.arena, ws_.vocab, reparsed->dependencies[0].tgd),
            ToString(ws_.arena, ws_.vocab, program->dependencies[0].tgd));
}

TEST_F(ParserTest, RoundTripHenkinPrintParse) {
  Parser p = MakeParser();
  auto program = p.ParseDependencies(
      "henkin { forall e, d ; exists eid(e) ; exists dm(d) }"
      " Emp(e, d) -> Mgr(eid, dm) .");
  ASSERT_TRUE(program.ok());
  std::string printed =
      ToString(ws_.arena, ws_.vocab, program->dependencies[0].henkin) + " .";
  auto reparsed = p.ParseDependencies(printed);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(
      ToString(ws_.arena, ws_.vocab, reparsed->dependencies[0].henkin),
      ToString(ws_.arena, ws_.vocab, program->dependencies[0].henkin));
}

TEST_F(ParserTest, RoundTripNestedPrintParse) {
  Parser p = MakeParser();
  auto program = p.ParseDependencies(
      "nested Dep(d) -> exists dm . Dep2(d, dm) &"
      " [ Emp(e, d) -> Mgr(e, d, dm) ] .");
  ASSERT_TRUE(program.ok());
  std::string printed =
      ToString(ws_.arena, ws_.vocab, program->dependencies[0].nested) + " .";
  auto reparsed = p.ParseDependencies(printed);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(
      ToString(ws_.arena, ws_.vocab, reparsed->dependencies[0].nested),
      ToString(ws_.arena, ws_.vocab, program->dependencies[0].nested));
}

TEST_F(ParserTest, MixedProgram) {
  Parser p = MakeParser();
  auto program = p.ParseDependencies(
      "P(x) -> Q(x) .\n"
      "so exists f { Q(x) -> R(x, f(x)) } .\n"
      "henkin { forall a ; exists b(a) } Q(a) -> S(a, b) .\n"
      "nested Q(x) -> exists y . T(x, y) & [ U(x, z) -> W(y, z) ] .\n");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->Tgds().size(), 1u);
  EXPECT_EQ(program->Sos().size(), 1u);
  EXPECT_EQ(program->Henkins().size(), 1u);
  EXPECT_EQ(program->Nesteds().size(), 1u);
}

TEST_F(ParserTest, NestedPrintedFormIsReparsable) {
  // The printed form includes explicit forall lists; ensure the explicit
  // form also parses correctly with proper scoping.
  Parser p = MakeParser();
  auto program = p.ParseDependencies(
      "nested forall d Dep(d) -> exists dm . Dep2(d, dm) &"
      " [ forall e Emp(e, d) -> Mgr(e, d, dm) ] .");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  EXPECT_EQ(program->dependencies[0].nested.NumParts(), 2u);
}

}  // namespace
}  // namespace tgdkit
