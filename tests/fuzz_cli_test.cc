// CLI contract of `tgdkit fuzz` (docs/FUZZING.md) and of --auto-budget
// (docs/BUDGETS.md): exit codes, same-seed determinism of the verdict
// log, the seeded-defect reproducer corpus, the --replay regression
// gate, and the budget echo on '# status:' lines.
#include <gtest/gtest.h>

#include <unistd.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.h"

namespace tgdkit {
namespace {

namespace fs = std::filesystem;

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun RunTool(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  int code = RunCli(args, out, err);
  return {code, out.str(), err.str()};
}

class FuzzCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = testing::TempDir() + "/tgdkit_fuzz_cli_" +
           std::to_string(getpid()) + "_" + std::to_string(counter++);
    fs::create_directories(dir_);
    scratch_ = dir_ + "/scratch";
    corpus_ = dir_ + "/corpus";
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::string dir_, scratch_, corpus_;
};

TEST_F(FuzzCliTest, CleanCampaignExitsZeroWithSummary) {
  CliRun run = RunTool({"fuzz", "--seeds", "3", "--scratch-dir", scratch_});
  EXPECT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("# fuzz summary seeds=3 violations=0"),
            std::string::npos)
      << run.out;
  EXPECT_NE(run.out.find("# status: OK"), std::string::npos);
  // One verdict line per seed, each naming its shape and fault schedule.
  EXPECT_NE(run.out.find("# fuzz seed=1 shape="), std::string::npos);
  EXPECT_NE(run.out.find("# fuzz seed=3 shape="), std::string::npos);
}

TEST_F(FuzzCliTest, SameSeedsSameVerdictLog) {
  std::vector<std::string> args = {"fuzz",        "--seeds",   "4",
                                   "--seed-start", "11",        "--scratch-dir",
                                   scratch_};
  CliRun one = RunTool(args);
  CliRun two = RunTool(args);
  EXPECT_EQ(one.code, two.code);
  EXPECT_EQ(one.out, two.out);
}

TEST_F(FuzzCliTest, ShapeFilterRestrictsTheCampaign) {
  CliRun run = RunTool({"fuzz", "--seeds", "3", "--shape", "skolem-tower",
                        "--scratch-dir", scratch_});
  EXPECT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("shape=skolem-tower"), std::string::npos);
  EXPECT_EQ(run.out.find("shape=wide-guard"), std::string::npos);
}

TEST_F(FuzzCliTest, BadFlagsAreUsageErrors) {
  EXPECT_EQ(RunTool({"fuzz", "--shape", "moebius-strip"}).code, 1);
  EXPECT_EQ(RunTool({"fuzz", "--seeds"}).code, 1);
  EXPECT_EQ(RunTool({"fuzz", "--seeds", "xyz"}).code, 1);
  EXPECT_EQ(RunTool({"fuzz", "--inject-bug", "imaginary"}).code, 1);
  EXPECT_EQ(RunTool({"fuzz", "stray-positional"}).code, 1);
}

TEST_F(FuzzCliTest, SeededDefectIsCaughtShrunkAndGatesReplay) {
  // The deliberately seeded analyzer defect must be caught, shrunk to a
  // reproducer, and keep failing when the corpus is replayed.
  CliRun campaign =
      RunTool({"fuzz", "--seeds", "2", "--inject-bug", "tamper-witness",
               "--corpus-dir", corpus_, "--scratch-dir", scratch_});
  EXPECT_EQ(campaign.code, 3) << campaign.out;
  EXPECT_NE(campaign.out.find("verdict=FAIL invariant=witness-replay"),
            std::string::npos)
      << campaign.out;
  EXPECT_NE(campaign.out.find("# fuzz shrunk seed="), std::string::npos);
  EXPECT_NE(campaign.out.find("# fuzz reproducer: "), std::string::npos);
  ASSERT_TRUE(fs::exists(corpus_));
  bool has_repro = false;
  for (const auto& entry : fs::directory_iterator(corpus_)) {
    has_repro |= entry.path().extension() == ".repro";
  }
  ASSERT_TRUE(has_repro);

  CliRun replay = RunTool({"fuzz", "--replay", corpus_});
  EXPECT_EQ(replay.code, 3) << replay.out;
  EXPECT_NE(replay.out.find("verdict=FAIL"), std::string::npos);
}

TEST_F(FuzzCliTest, ReplayOfMissingCorpusPasses) {
  CliRun run = RunTool({"fuzz", "--replay", dir_ + "/no-such-dir"});
  EXPECT_EQ(run.code, 0);
  EXPECT_NE(run.out.find("no reproducers"), std::string::npos);
}

TEST_F(FuzzCliTest, ReplayOfMissingFileIsAnInputError) {
  CliRun run = RunTool({"fuzz", "--replay", dir_ + "/no-such.repro"});
  EXPECT_EQ(run.code, 2);
}

TEST_F(FuzzCliTest, ReplayOfMalformedReproducerIsAnInputError) {
  std::string bad = dir_ + "/bad.repro";
  std::ofstream(bad) << "this is not a reproducer\n";
  CliRun run = RunTool({"fuzz", "--replay", bad});
  EXPECT_EQ(run.code, 2);
  EXPECT_NE(run.err.find("reproducer"), std::string::npos);
}

// --- --auto-budget --------------------------------------------------------

class AutoBudgetTest : public FuzzCliTest {
 protected:
  std::string WriteFile(const std::string& name, const std::string& text) {
    std::string path = dir_ + "/" + name;
    std::ofstream(path) << text;
    return path;
  }
};

TEST_F(AutoBudgetTest, ChaseEchoesDerivedBudgetForPolynomialTier) {
  std::string rules = WriteFile("wa.tgd", "r: P(x) -> exists u . Q(x, u) .\n");
  std::string inst = WriteFile("wa.inst", "P(a) .\n");
  CliRun run = RunTool({"chase", rules, inst, "--auto-budget"});
  EXPECT_EQ(run.code, 0) << run.err;
  // Rank 1 (one special edge): (rank + 1) * 2M steps.
  EXPECT_NE(
      run.out.find(
          "auto_budget=polynomial:max-steps=4000000:deadline-ms=120000"),
      std::string::npos)
      << run.out;
}

TEST_F(AutoBudgetTest, WithoutTheFlagOutputIsUnchanged) {
  std::string rules = WriteFile("wa.tgd", "r: P(x) -> exists u . Q(x, u) .\n");
  std::string inst = WriteFile("wa.inst", "P(a) .\n");
  CliRun run = RunTool({"chase", rules, inst});
  EXPECT_EQ(run.code, 0);
  EXPECT_EQ(run.out.find("auto_budget"), std::string::npos);
}

TEST_F(AutoBudgetTest, ExplicitFlagsOutrankTheDerivedBudget) {
  std::string rules = WriteFile("wa.tgd", "r: P(x) -> exists u . Q(x, u) .\n");
  std::string inst = WriteFile("wa.inst", "P(a) .\n");
  CliRun run = RunTool(
      {"chase", rules, inst, "--auto-budget", "--max-steps", "12345"});
  EXPECT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("auto_budget=polynomial:max-steps=12345"),
            std::string::npos)
      << run.out;
}

TEST_F(AutoBudgetTest, HigherTiersGetTighterBudgets) {
  // A generating cycle: Q's existential feeds back into P, so the tier
  // is exponential and the derived step budget drops accordingly.
  std::string rules = WriteFile(
      "exp.tgd",
      "r: P(x) -> exists u . P(u) .\n");
  std::string inst = WriteFile("exp.inst", "P(a) .\n");
  CliRun run = RunTool({"chase", rules, inst, "--auto-budget",
                        "--max-rounds", "5"});
  EXPECT_NE(run.out.find("auto_budget=exponential:max-steps=1000000"),
            std::string::npos)
      << run.out;
}

TEST_F(AutoBudgetTest, CertainAndExplainEchoTheBudgetToo) {
  std::string rules = WriteFile("wa.tgd", "r: P(x) -> exists u . Q(x, u) .\n");
  std::string inst = WriteFile("wa.inst", "P(a) .\n");
  CliRun certain =
      RunTool({"certain", rules, inst, "ans(x) :- P(x).", "--auto-budget"});
  EXPECT_EQ(certain.code, 0) << certain.err;
  EXPECT_NE(certain.out.find("auto_budget=polynomial"), std::string::npos)
      << certain.out;
  CliRun explain = RunTool({"explain", rules, inst, "--auto-budget"});
  EXPECT_EQ(explain.code, 0) << explain.err;
  EXPECT_NE(explain.out.find("auto_budget=polynomial"), std::string::npos)
      << explain.out;
}

}  // namespace
}  // namespace tgdkit
