// Kill-and-resume fault injection: a forked child runs the CLI chase with
// periodic checkpointing and the TGDKIT_CRASH_AT hook armed, so the nth
// snapshot write SIGKILLs it — before the write, mid-write (torn temp
// file), or between fsync and rename. The parent then resumes from
// whatever the dead process left behind and requires the final output to
// be bit-identical to an uninterrupted run. Kill points are randomized
// but seeded: failures reproduce.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/rng.h"
#include "cli/cli.h"
#include "snapshot/snapshot.h"

namespace tgdkit {
namespace {

constexpr char kRules[] =
    "t: E(x, y) & E(y, z) -> E(x, z) .\n"
    "m: E(x, y) -> exists w . M(x, w) .\n";

std::string PathInstanceText(int nodes) {
  std::string out;
  for (int i = 0; i + 1 < nodes; ++i) {
    out += "E(n" + std::to_string(i) + ", n" + std::to_string(i + 1) + ") .\n";
  }
  return out;
}

class CrashResumeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/tgdkit_crash_" + std::to_string(getpid());
    ASSERT_EQ(::system(("mkdir -p " + dir_).c_str()), 0);
    rules_path_ = dir_ + "/rules.tgd";
    inst_path_ = dir_ + "/input.inst";
    snap_path_ = dir_ + "/ckpt.snap";
    std::ofstream(rules_path_) << kRules;
    std::ofstream(inst_path_) << PathInstanceText(16);

    std::ostringstream out, err;
    int code = RunCli({"chase", rules_path_, inst_path_, "--seed", "5"},
                      out, err);
    ASSERT_EQ(code, 0) << err.str();
    golden_ = out.str();
    ASSERT_NE(golden_.find("# status: OK seed=5"), std::string::npos);
  }

  /// Forks a child that runs the checkpointing chase with the crash hook
  /// armed to die at snapshot write `crash_at` in `phase`. Returns true
  /// if the child was SIGKILLed, false if it finished first.
  bool RunChildToDeath(uint64_t crash_at, const char* phase) {
    std::remove(snap_path_.c_str());
    std::remove((snap_path_ + ".tmp").c_str());
    pid_t pid = fork();
    if (pid == 0) {
      setenv("TGDKIT_CRASH_AT", std::to_string(crash_at).c_str(), 1);
      setenv("TGDKIT_CRASH_PHASE", phase, 1);
      std::ostringstream out, err;
      RunCli({"chase", rules_path_, inst_path_, "--seed", "5", "--checkpoint",
              snap_path_, "--checkpoint-every-steps", "1"},
             out, err);
      _exit(0);
    }
    int status = 0;
    EXPECT_EQ(waitpid(pid, &status, 0), pid);
    if (WIFSIGNALED(status)) {
      EXPECT_EQ(WTERMSIG(status), SIGKILL);
      return true;
    }
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
    return false;
  }

  bool SnapshotExists() const {
    std::ifstream in(snap_path_, std::ios::binary);
    return in.good();
  }

  /// Resumes from the surviving snapshot and requires output bit-identical
  /// to the uninterrupted run.
  void ResumeAndCompare(const std::string& label) {
    std::ostringstream out, err;
    int code = RunCli({"chase", "--resume", snap_path_}, out, err);
    ASSERT_EQ(code, 0) << label << ": " << err.str();
    EXPECT_EQ(out.str(), golden_) << label;
  }

  std::string dir_, rules_path_, inst_path_, snap_path_, golden_;
};

TEST_F(CrashResumeTest, TornTempFileNeverParses) {
  // Mid-write kills leave a half-written .tmp next to the target; the
  // commit path never renamed it, so the target (if present) is a
  // complete previous snapshot and the .tmp must be rejected.
  ASSERT_TRUE(RunChildToDeath(2, "mid"));
  std::ifstream tmp(snap_path_ + ".tmp", std::ios::binary);
  ASSERT_TRUE(tmp.good()) << "mid-write kill left no torn temp file";
  std::ostringstream buffer;
  buffer << tmp.rdbuf();
  auto parsed = ParseChaseSnapshot(buffer.str());
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), Status::Code::kDataLoss);
  ASSERT_TRUE(SnapshotExists());
  ResumeAndCompare("after mid-write kill");
}

TEST_F(CrashResumeTest, RandomizedKillPointsAllResumeBitIdentical) {
  // At least 20 randomized kill points across all three crash phases.
  // Every kill that leaves a snapshot must resume to the golden output;
  // kills before the first commit legitimately leave nothing to resume.
  Rng rng(0xC0FFEE);
  const char* phases[] = {"begin", "mid", "commit"};
  int resumed = 0, no_snapshot = 0, completed = 0;
  for (int trial = 0; trial < 24; ++trial) {
    uint64_t crash_at = 1 + rng.Below(8);
    const char* phase = phases[rng.Below(3)];
    std::string label = "trial " + std::to_string(trial) + ": crash_at=" +
                        std::to_string(crash_at) + " phase=" + phase;
    bool killed = RunChildToDeath(crash_at, phase);
    if (!killed) {
      // The run finished before the nth write: the final snapshot must
      // still resume (to the already-complete result).
      ++completed;
      ASSERT_TRUE(SnapshotExists()) << label;
      ResumeAndCompare(label + " (completed)");
      continue;
    }
    if (!SnapshotExists()) {
      ++no_snapshot;
      EXPECT_EQ(crash_at, 1u) << label
                              << ": only a first-write kill may leave nothing";
      continue;
    }
    ++resumed;
    ResumeAndCompare(label);
  }
  // The randomized mix must actually exercise resume-after-kill.
  EXPECT_GE(resumed, 10) << "resumed=" << resumed
                         << " no_snapshot=" << no_snapshot
                         << " completed=" << completed;
}

TEST_F(CrashResumeTest, ChainedKillsConvergeToGolden) {
  // Kill, resume with a checkpoint, kill the resumed leg, resume again:
  // the snapshot file is overwritten atomically each leg, so any prefix
  // of legs may die and the final leg still reaches the golden output.
  ASSERT_TRUE(RunChildToDeath(3, "mid"));
  ASSERT_TRUE(SnapshotExists());

  std::remove((snap_path_ + ".tmp").c_str());
  pid_t pid = fork();
  if (pid == 0) {
    setenv("TGDKIT_CRASH_AT", "2", 1);
    setenv("TGDKIT_CRASH_PHASE", "commit", 1);
    std::ostringstream out, err;
    RunCli({"chase", "--resume", snap_path_, "--checkpoint", snap_path_,
            "--checkpoint-every-steps", "1"},
           out, err);
    _exit(0);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "second leg was expected to die at its second snapshot write";
  ASSERT_TRUE(SnapshotExists());
  ResumeAndCompare("after two chained kills");
}

}  // namespace
}  // namespace tgdkit
