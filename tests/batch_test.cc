// Tests for the fault-isolated batch supervisor (src/supervise): manifest
// parsing, ledger round-trips and replay, argv-rewriting policy helpers,
// and end-to-end supervision of forked workers — retries with backoff,
// crash quarantine with triage, deadline kills with SIGTERM -> SIGKILL
// escalation, checkpointed chase resume, idempotent reruns, and the
// stdout/stderr hygiene contract.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <iterator>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/fileio.h"
#include "cli/cli.h"
#include "snapshot/snapshot.h"
#include "supervise/ledger.h"
#include "supervise/manifest.h"
#include "supervise/supervisor.h"

namespace tgdkit {
namespace {

class BatchTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = testing::TempDir() + "/tgdkit_batch_" + std::to_string(getpid()) +
           "_" + std::to_string(counter++);
    ASSERT_TRUE(MakeDirectories(dir_).ok());
  }

  std::string Write(const std::string& name, const std::string& content) {
    std::string path = dir_ + "/" + name;
    std::ofstream out(path);
    out << content;
    return path;
  }

  struct BatchRun {
    int code;
    std::string out;
    std::string err;
  };

  BatchRun RunBatchCli(std::vector<std::string> extra_args,
                       const std::string& manifest_path) {
    std::vector<std::string> args = {"batch", manifest_path};
    args.insert(args.end(), extra_args.begin(), extra_args.end());
    std::ostringstream out, err;
    int code = RunCli(args, out, err);
    return {code, out.str(), err.str()};
  }

  std::vector<LedgerRecord> MustLoadLedger(const std::string& manifest_path) {
    Result<std::vector<LedgerRecord>> loaded =
        LoadLedger(manifest_path + ".runs/ledger.jsonl");
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    return loaded.ok() ? *loaded : std::vector<LedgerRecord>{};
  }

  std::string dir_;
};

// ---------------------------------------------------------------------------
// Manifest parsing

TEST_F(BatchTest, ManifestParsesDirectivesAttributesAndEnv) {
  Result<Manifest> parsed = ParseManifest(
      "# header comment\n"
      "batch max-parallel=4 retries=3 backoff-ms=50 accept-resource=true\n"
      "\n"
      "task quick : selftest --stdout-lines 1\n"
      "task slow deadline-ms=250 retries=0 env A=1 env B=x=y : \\\n"
      "  chase deps.tgd seed.inst --seed 7  // trailing comment\n"
      "task quoted : lint \"a file.tgd\" --fail-on=note\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->defaults.max_parallel, 4u);
  EXPECT_EQ(parsed->defaults.retries, 3u);
  EXPECT_EQ(parsed->defaults.backoff_ms, 50u);
  EXPECT_EQ(parsed->defaults.accept_resource, true);
  ASSERT_EQ(parsed->tasks.size(), 3u);
  const ManifestTask& slow = parsed->tasks[1];
  EXPECT_EQ(slow.id, "slow");
  EXPECT_EQ(slow.deadline_ms, 250u);
  EXPECT_EQ(slow.retries, 0u);
  ASSERT_EQ(slow.env.size(), 2u);
  EXPECT_EQ(slow.env[0].first, "A");
  EXPECT_EQ(slow.env[0].second, "1");
  EXPECT_EQ(slow.env[1].second, "x=y");
  // Line continuation joined the argv; the comment was stripped.
  EXPECT_EQ(slow.args,
            (std::vector<std::string>{"chase", "deps.tgd", "seed.inst",
                                      "--seed", "7"}));
  EXPECT_EQ(parsed->tasks[2].args[1], "a file.tgd");
}

TEST_F(BatchTest, ManifestRejectsMalformedInput) {
  auto expect_bad = [](const std::string& text, const std::string& needle) {
    Result<Manifest> parsed = ParseManifest(text);
    ASSERT_FALSE(parsed.ok()) << text;
    EXPECT_NE(parsed.status().ToString().find(needle), std::string::npos)
        << parsed.status().ToString();
  };
  expect_bad("task a : lint x\ntask a : lint y\n", "duplicate task id");
  expect_bad("task -bad : lint x\n", "invalid task id");
  expect_bad("task a/b : lint x\n", "invalid task id");
  expect_bad("task a lint x\n", "unexpected token");
  expect_bad("task a :\n", "empty command");
  expect_bad("task a : batch m\n", "cannot itself be 'batch'");
  expect_bad("launch a : lint x\n", "unknown directive");
  expect_bad("batch max-parallel=zero\ntask a : lint x\n", "invalid value");
  expect_bad("batch max-parallel=0\ntask a : lint x\n", "between 1 and 256");
  expect_bad("", "no tasks");
}

// ---------------------------------------------------------------------------
// Argv-rewriting policy helpers

TEST_F(BatchTest, WithForcedOptionReplacesOrAppends) {
  EXPECT_EQ(WithForcedOption({"chase", "a", "--threads", "8"}, "--threads",
                             "1"),
            (std::vector<std::string>{"chase", "a", "--threads", "1"}));
  EXPECT_EQ(WithForcedOption({"chase", "a"}, "--threads", "1"),
            (std::vector<std::string>{"chase", "a", "--threads", "1"}));
}

TEST_F(BatchTest, WithScaledBudgetsScalesOnlyBudgetOptionsAndSaturates) {
  std::vector<std::string> scaled = WithScaledBudgets(
      {"chase", "a", "--max-steps", "100", "--seed", "9", "--deadline-ms",
       "50", "--max-rounds", "3"},
      2);
  EXPECT_EQ(scaled,
            (std::vector<std::string>{"chase", "a", "--max-steps", "200",
                                      "--seed", "9", "--deadline-ms", "100",
                                      "--max-rounds", "3"}));
  std::vector<std::string> saturated = WithScaledBudgets(
      {"chase", "--max-steps", "18446744073709551615"}, 2);
  EXPECT_EQ(saturated[2], "18446744073709551615");
}

TEST_F(BatchTest, RewriteChaseForResumeDropsPositionalsKeepsOptions) {
  std::vector<std::string> rewritten = RewriteChaseForResume(
      {"chase", "deps.tgd", "seed.inst", "--seed", "7", "--checkpoint",
       "old.snap", "--max-rounds", "9"},
      "ck/t.snap");
  EXPECT_EQ(rewritten,
            (std::vector<std::string>{"chase", "--resume", "ck/t.snap",
                                      "--seed", "7", "--max-rounds", "9",
                                      "--checkpoint", "ck/t.snap"}));
}

TEST_F(BatchTest, TaskCheckpointPathSanitizesTheId) {
  EXPECT_EQ(TaskCheckpointPath("d", "ok-task.1"), "d/ok-task.1.snap");
  // IsValidTaskId already forbids these, but the path derivation must be
  // safe on its own (defense in depth).
  EXPECT_EQ(TaskCheckpointPath("d", "../evil"), "d/_.._evil.snap");
  EXPECT_EQ(TaskCheckpointPath("d", "a/b"), "d/a_b.snap");
}

// ---------------------------------------------------------------------------
// Ledger

TEST_F(BatchTest, LedgerRecordsRoundTrip) {
  AttemptRecord attempt;
  attempt.task = "t1";
  attempt.attempt = 2;
  attempt.outcome = AttemptOutcome::kCrash;
  attempt.exit_code = -1;
  attempt.signal = 11;
  attempt.stop = "deadline";
  attempt.status_line = "# status: weird \"quotes\" and \\ slash";
  attempt.duration_ms = 12.5;
  attempt.cmd = "tgdkit chase 'a b'";
  attempt.stderr_tail = "line1\nline2\ttabbed";
  attempt.degraded = true;
  attempt.next = "retry";
  for (const LedgerRecord& record :
       {LedgerRecord::Run({"m.manifest", 3}),
        LedgerRecord::Attempt(attempt),
        LedgerRecord::Done({"t1", false, -1, 3, "triage\ntext"})}) {
    std::string line = RenderLedgerRecord(record);
    EXPECT_EQ(line.find('\n'), std::string::npos) << line;
    Result<LedgerRecord> parsed = ParseLedgerRecord(line);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString() << "\n" << line;
    EXPECT_EQ(RenderLedgerRecord(*parsed), line);
  }
}

TEST_F(BatchTest, LedgerSkipsTornTrailingLineButRejectsInteriorGarbage) {
  std::string path = dir_ + "/ledger.jsonl";
  ASSERT_TRUE(
      AppendLedgerRecord(path, LedgerRecord::Run({"m", 1})).ok());
  ASSERT_TRUE(
      AppendLedgerRecord(
          path, LedgerRecord::Done({"t", true, 0, 1, ""}))
          .ok());
  // Simulate a crash mid-append: a torn final line without a newline.
  {
    std::ofstream out(path, std::ios::app);
    out << "{\"type\":\"attempt\",\"task\":\"t";
  }
  Result<std::vector<LedgerRecord>> loaded = LoadLedger(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 2u);

  // Healing truncates the fragment so a later append cannot merge with
  // it; the two committed records survive untouched.
  ASSERT_TRUE(TruncateTornLedgerTail(path).ok());
  ASSERT_TRUE(
      AppendLedgerRecord(path, LedgerRecord::Run({"m", 1})).ok());
  loaded = LoadLedger(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->size(), 3u);
  EXPECT_TRUE(TruncateTornLedgerTail(dir_ + "/missing.jsonl").ok());

  // Interior garbage is a hard error: earlier durable records must never
  // be silently dropped.
  std::string bad = dir_ + "/bad.jsonl";
  {
    std::ofstream out(bad);
    out << "not json\n"
        << RenderLedgerRecord(LedgerRecord::Run({"m", 1})) << "\n";
  }
  EXPECT_FALSE(LoadLedger(bad).ok());
  EXPECT_FALSE(LoadLedger(dir_ + "/missing.jsonl").ok());
}

TEST_F(BatchTest, ReplayFoldsAttemptsIntoTerminalState) {
  std::vector<LedgerRecord> records;
  AttemptRecord a1;
  a1.task = "t";
  a1.attempt = 1;
  a1.outcome = AttemptOutcome::kCrash;
  a1.next = "retry";
  AttemptRecord a2 = a1;
  a2.attempt = 2;
  a2.degraded = true;
  a2.outcome = AttemptOutcome::kOk;
  a2.exit_code = 0;
  a2.next = "done";
  records.push_back(LedgerRecord::Run({"m", 2}));
  records.push_back(LedgerRecord::Attempt(a1));
  records.push_back(LedgerRecord::Attempt(a2));
  records.push_back(LedgerRecord::Done({"t", true, 0, 2, ""}));
  AttemptRecord other;
  other.task = "u";
  other.attempt = 1;
  other.outcome = AttemptOutcome::kCancelled;
  other.next = "interrupted";
  records.push_back(LedgerRecord::Attempt(other));

  std::map<std::string, TaskReplay> replay = ReplayLedger(records);
  EXPECT_TRUE(replay["t"].terminal);
  EXPECT_TRUE(replay["t"].completed);
  EXPECT_EQ(replay["t"].attempts, 2u);
  EXPECT_TRUE(replay["t"].degraded);
  EXPECT_FALSE(replay["u"].terminal);
  EXPECT_EQ(replay["u"].attempts, 1u);
}

// ---------------------------------------------------------------------------
// End-to-end supervision

TEST_F(BatchTest, SupervisesMixedOutcomesAndQuarantinesWithTriage) {
  std::string manifest = Write(
      "m.manifest",
      "batch max-parallel=2 retries=1 backoff-ms=1 grace-ms=200\n"
      "task good : selftest --stdout-lines 1\n"
      "task verdict : selftest --die-exit 3\n"
      "task usage : selftest --bogus-flag\n"
      "task crashy : selftest --die-signal 9\n");
  BatchRun run = RunBatchCli({}, manifest);
  // Quarantines and the negative verdict make the batch exit 3.
  EXPECT_EQ(run.code, kExitVerdict) << run.out << run.err;
  EXPECT_NE(run.out.find("# batch: tasks=4 completed=2 quarantined=2"),
            std::string::npos)
      << run.out;

  std::vector<LedgerRecord> records = MustLoadLedger(manifest);
  int crash_attempts = 0;
  bool saw_usage_quarantine = false, saw_crash_triage = false;
  for (const LedgerRecord& record : records) {
    if (record.kind == LedgerRecord::Kind::kAttempt &&
        record.attempt.task == "crashy") {
      ++crash_attempts;
      EXPECT_EQ(record.attempt.outcome, AttemptOutcome::kCrash);
      EXPECT_EQ(record.attempt.signal, 9);
    }
    if (record.kind != LedgerRecord::Kind::kDone) continue;
    if (record.done.task == "usage") {
      // Deterministic usage errors quarantine on the FIRST attempt.
      saw_usage_quarantine = true;
      EXPECT_FALSE(record.done.completed);
      EXPECT_EQ(record.done.attempts, 1u);
    }
    if (record.done.task == "crashy") {
      saw_crash_triage = true;
      EXPECT_NE(record.done.triage.find("killed by signal 9"),
                std::string::npos)
          << record.done.triage;
      EXPECT_NE(record.done.triage.find("reproduce: tgdkit selftest"),
                std::string::npos)
          << record.done.triage;
    }
  }
  // retries=1 means two charged attempts before quarantine.
  EXPECT_EQ(crash_attempts, 2);
  EXPECT_TRUE(saw_usage_quarantine);
  EXPECT_TRUE(saw_crash_triage);

  // Artifacts: captured stdout per task, triage for the quarantined one.
  std::ifstream good_out(manifest + ".runs/good.out");
  std::string line;
  ASSERT_TRUE(std::getline(good_out, line));
  EXPECT_EQ(line, "selftest stdout line 0");
  EXPECT_TRUE(std::ifstream(manifest + ".runs/crashy.triage.txt").good());
}

TEST_F(BatchTest, RerunSkipsTerminalTasksAndStaysIdempotent) {
  std::string manifest = Write(
      "m.manifest",
      "batch retries=0 backoff-ms=1\n"
      "task good : selftest\n"
      "task crashy : selftest --die-signal 9\n");
  BatchRun first = RunBatchCli({}, manifest);
  EXPECT_EQ(first.code, kExitVerdict);
  BatchRun second = RunBatchCli({}, manifest);
  EXPECT_EQ(second.code, kExitVerdict);
  EXPECT_NE(second.out.find("skipped=2"), std::string::npos) << second.out;
  EXPECT_NE(second.out.find("attempts=0"), std::string::npos) << second.out;

  // Exactly one done record per task across both runs.
  std::map<std::string, int> done_count;
  for (const LedgerRecord& record : MustLoadLedger(manifest)) {
    if (record.kind == LedgerRecord::Kind::kDone) {
      ++done_count[record.done.task];
    }
  }
  EXPECT_EQ(done_count["good"], 1);
  EXPECT_EQ(done_count["crashy"], 1);
}

TEST_F(BatchTest, DeadlineKillsTheWorkerEvenWhenItIgnoresSigterm) {
  std::string manifest = Write(
      "m.manifest",
      "batch retries=0 backoff-ms=1 grace-ms=50\n"
      "task hung deadline-ms=150 : selftest --spin-ms 60000 --ignore-term\n");
  BatchRun run = RunBatchCli({}, manifest);
  EXPECT_EQ(run.code, kExitVerdict) << run.out;
  bool saw_timeout = false;
  for (const LedgerRecord& record : MustLoadLedger(manifest)) {
    if (record.kind == LedgerRecord::Kind::kAttempt) {
      EXPECT_EQ(record.attempt.outcome, AttemptOutcome::kTimeout);
      // SIGTERM was ignored; the kill escalation had to SIGKILL it.
      EXPECT_EQ(record.attempt.signal, SIGKILL);
      saw_timeout = true;
    }
  }
  EXPECT_TRUE(saw_timeout);
}

TEST_F(BatchTest, DeadlinedWorkerStopsCooperativelyWithinGrace) {
  // Without --ignore-term the worker reacts to the supervisor's SIGTERM
  // by cancelling cooperatively: it exits on its own, within the grace
  // window, reporting the cancellation on stdout.
  std::string manifest = Write(
      "m.manifest",
      "batch retries=0 backoff-ms=1 grace-ms=5000\n"
      "task polite deadline-ms=150 : selftest --spin-ms 60000\n");
  BatchRun run = RunBatchCli({}, manifest);
  EXPECT_EQ(run.code, kExitVerdict) << run.out;
  for (const LedgerRecord& record : MustLoadLedger(manifest)) {
    if (record.kind != LedgerRecord::Kind::kAttempt) continue;
    EXPECT_EQ(record.attempt.outcome, AttemptOutcome::kTimeout);
    EXPECT_EQ(record.attempt.signal, 0) << "worker should exit, not die";
    EXPECT_EQ(record.attempt.exit_code, kExitResource);
    EXPECT_NE(record.attempt.status_line.find("cancelled"),
              std::string::npos)
        << record.attempt.status_line;
  }
}

TEST_F(BatchTest, ResourceStopEscalatesOnceThenResumesFromCheckpoint) {
  Write("deps.tgd", "t: E(x, y) & E(y, z) -> E(x, z) .\n");
  std::string inst;
  for (int i = 0; i + 1 < 12; ++i) {
    inst += "E(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
            ") .\n";
  }
  Write("seed.inst", inst);
  // --max-steps 1 cannot finish; the escalated retry gets a huge factor
  // and completes, resuming from the checkpoint the first leg wrote.
  std::string manifest = Write(
      "m.manifest",
      "batch retries=2 backoff-ms=1 escalate-factor=100000\n"
      "task tc : chase " + dir_ + "/deps.tgd " + dir_ + "/seed.inst "
      "--max-steps 1 --checkpoint-every-steps 1\n");
  BatchRun run = RunBatchCli({}, manifest);
  EXPECT_EQ(run.code, kExitOk) << run.out << run.err;

  bool saw_escalated_resume = false;
  for (const LedgerRecord& record : MustLoadLedger(manifest)) {
    if (record.kind == LedgerRecord::Kind::kAttempt &&
        record.attempt.attempt == 2) {
      EXPECT_TRUE(record.attempt.escalated);
      EXPECT_TRUE(record.attempt.resumed);
      EXPECT_EQ(record.attempt.next, "done");
      saw_escalated_resume = true;
    }
    if (record.kind == LedgerRecord::Kind::kDone) {
      EXPECT_TRUE(record.done.completed);
      EXPECT_EQ(record.done.exit_code, kExitOk);
    }
  }
  EXPECT_TRUE(saw_escalated_resume);
  // The per-task checkpoint lives under the run directory and parses.
  std::string snap = TaskCheckpointPath(manifest + ".runs/ck", "tc");
  EXPECT_TRUE(LoadChaseSnapshot(snap).ok());
}

TEST_F(BatchTest, AcceptResourceTreatsBudgetStopsAsCompleted) {
  Write("inf.tgd", "succ: N(x) -> exists y . N(y) & E(x, y) .\n");
  Write("seed.inst", "N(a) .\n");
  std::string manifest = Write(
      "m.manifest",
      "batch retries=0 backoff-ms=1 accept-resource=true\n"
      "task partial : chase " + dir_ + "/inf.tgd " + dir_ + "/seed.inst "
      "--max-rounds 2 --max-depth 100000000\n");
  BatchRun run = RunBatchCli({}, manifest);
  EXPECT_EQ(run.code, kExitOk) << run.out;
  EXPECT_NE(run.out.find("completed=1"), std::string::npos);
  for (const LedgerRecord& record : MustLoadLedger(manifest)) {
    if (record.kind == LedgerRecord::Kind::kAttempt) {
      EXPECT_EQ(record.attempt.outcome, AttemptOutcome::kResource);
      EXPECT_EQ(record.attempt.stop, "round-limit");
    }
  }
}

TEST_F(BatchTest, CrashedParallelChaseDegradesResumesAndQuarantines) {
  Write("deps.tgd", "t: E(x, y) & E(y, z) -> E(x, z) .\n");
  Write("seed.inst", "E(a, b) .\nE(b, c) .\nE(c, d) .\n");
  // The per-task env arms fault injection in EVERY worker attempt: each
  // one dies (SIGKILL) at its second durable checkpoint write. The policy
  // under test: a crashed parallel chase retries with --threads forced to
  // 1, later attempts resume from the checkpoints their dead predecessors
  // committed, and a persistent crasher ends up quarantined with a
  // SIGKILL triage — never an infinite retry loop.
  std::string manifest = Write(
      "m.manifest",
      "batch retries=2 backoff-ms=1\n"
      "task par env TGDKIT_CRASH_AT=2 env TGDKIT_CRASH_PHASE=commit : "
      "chase " + dir_ + "/deps.tgd " + dir_ + "/seed.inst "
      "--threads 4 --checkpoint-every-steps 1\n");
  BatchRun run = RunBatchCli({}, manifest);
  EXPECT_EQ(run.code, kExitVerdict) << run.out << run.err;

  std::vector<LedgerRecord> records = MustLoadLedger(manifest);
  ASSERT_FALSE(records.empty());
  bool saw_degraded_resume = false, saw_quarantine = false;
  for (const LedgerRecord& record : records) {
    if (record.kind == LedgerRecord::Kind::kAttempt) {
      EXPECT_EQ(record.attempt.outcome, AttemptOutcome::kCrash);
      EXPECT_EQ(record.attempt.signal, SIGKILL);
      if (record.attempt.attempt > 1) {
        saw_degraded_resume = true;
        EXPECT_TRUE(record.attempt.degraded);
        EXPECT_TRUE(record.attempt.resumed);
        // The degraded argv forces --threads 1 and resumes the snapshot.
        EXPECT_NE(record.attempt.cmd.find("--threads 1"), std::string::npos)
            << record.attempt.cmd;
        EXPECT_NE(record.attempt.cmd.find("--resume"), std::string::npos)
            << record.attempt.cmd;
      }
    }
    if (record.kind == LedgerRecord::Kind::kDone) {
      saw_quarantine = true;
      EXPECT_FALSE(record.done.completed);
      EXPECT_EQ(record.done.attempts, 3u);  // retries=2 -> 3 attempts
      EXPECT_NE(record.done.triage.find("SIGKILL"), std::string::npos)
          << record.done.triage;
    }
  }
  EXPECT_TRUE(saw_degraded_resume);
  EXPECT_TRUE(saw_quarantine);
  // The checkpoint the dead workers committed survives and is loadable —
  // the quarantined task can be resumed by hand from the triage repro.
  std::string snap = TaskCheckpointPath(manifest + ".runs/ck", "par");
  EXPECT_TRUE(LoadChaseSnapshot(snap).ok());
}

TEST_F(BatchTest, CliFlagsOverrideManifestDefaults) {
  BatchDefaults defaults;
  defaults.retries = 7;
  defaults.max_parallel = 9;
  SupervisorOptions options;
  SupervisorCliOverrides cli_set;
  cli_set.retries = true;
  options.retries = 1;
  ApplyManifestDefaults(defaults, cli_set, &options);
  EXPECT_EQ(options.retries, 1u);      // CLI wins
  EXPECT_EQ(options.max_parallel, 9u);  // manifest fills the gap
}

TEST_F(BatchTest, StreamHygieneStdoutIsMachineReadableDiagnosticsOnStderr) {
  Write("deps.tgd", "t: E(x, y) & E(y, z) -> E(x, z) .\n");
  Write("seed.inst", "E(a, b) .\nE(b, c) .\n");
  std::string manifest = Write(
      "m.manifest",
      "batch retries=0 backoff-ms=1\n"
      "task chase-ok : chase " + dir_ + "/deps.tgd " + dir_ + "/seed.inst\n"
      "task chase-missing : chase /nonexistent.tgd " + dir_ + "/seed.inst\n"
      "task lint-missing : lint /nonexistent.tgd\n"
      "task noisy : selftest --stdout-lines 3 --stderr-lines 3\n");
  BatchRun run = RunBatchCli({}, manifest);
  EXPECT_EQ(run.code, kExitVerdict) << run.out;

  // Property over the whole batch: every supervisor stdout line is
  // '#'-prefixed (machine-readable). Triage lines may quote worker
  // stderr, but they are still '#'-framed.
  std::istringstream lines(run.out);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    EXPECT_EQ(line[0], '#') << "unexpected stdout line: " << line;
  }

  // Worker-level property, checked through the captured artifacts: no
  // task's stdout contains a "tgdkit:" diagnostic; failing tasks put
  // their diagnostic in the recorded stderr tail instead.
  for (const LedgerRecord& record : MustLoadLedger(manifest)) {
    if (record.kind != LedgerRecord::Kind::kAttempt) continue;
    std::ifstream task_out(manifest + ".runs/" + record.attempt.task +
                           ".out");
    std::string task_stdout((std::istreambuf_iterator<char>(task_out)),
                            std::istreambuf_iterator<char>());
    EXPECT_EQ(task_stdout.find("tgdkit:"), std::string::npos)
        << record.attempt.task << " stdout: " << task_stdout;
    if (record.attempt.outcome == AttemptOutcome::kInputError) {
      EXPECT_NE(record.attempt.stderr_tail.find("tgdkit:"),
                std::string::npos)
          << record.attempt.task;
    }
  }
}

// ---------------------------------------------------------------------------
// Cooperative cancellation (SIGTERM satellite)

TEST_F(BatchTest, SigtermedChaseWritesAFinalCheckpoint) {
  std::string deps = Write("inf.tgd",
                           "succ: N(x) -> exists y . N(y) & E(x, y) .\n");
  std::string inst = Write("seed.inst", "N(a) .\n");
  std::string snap = dir_ + "/term.snap";
  pid_t pid = fork();
  if (pid == 0) {
    // The child is a faithful model of both the standalone binary and a
    // batch worker: handlers installed, then an unbounded chase.
    GlobalCancellationToken().Reset();
    InstallCancellationSignalHandlers();
    std::ostringstream out, err;
    int code = RunCli({"chase", deps, inst, "--max-rounds", "100000000",
                       "--max-depth", "100000000", "--max-facts",
                       "100000000", "--checkpoint", snap,
                       "--checkpoint-every-ms", "86400000"},
                      out, err);
    _exit(code);
  }
  ASSERT_GT(pid, 0);
  // Let the chase get going, then ask it to stop.
  usleep(200 * 1000);
  ASSERT_EQ(kill(pid, SIGTERM), 0);
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "chase did not exit cleanly";
  // Cooperative cancellation is a resource stop.
  EXPECT_EQ(WEXITSTATUS(status), kExitResource);
  // The final checkpoint was written on the way out (the periodic cadence
  // above is a day — only the final save can have produced it) and it is
  // a complete, loadable snapshot.
  Result<ChaseSnapshot> loaded = LoadChaseSnapshot(snap);
  EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
}

TEST_F(BatchTest, SupervisorShutdownCancelsWorkersAndStaysResumable) {
  std::string manifest = Write(
      "m.manifest",
      "batch retries=1 backoff-ms=1 max-parallel=1 grace-ms=5000\n"
      "task spin : selftest --spin-ms 60000\n"
      "task after : selftest\n");
  SupervisorOptions options;
  options.manifest_path = manifest;
  options.run_dir = manifest + ".runs";
  options.ledger_path = options.run_dir + "/ledger.jsonl";
  options.backoff_ms = 1;
  options.retries = 1;
  options.max_parallel = 1;
  // Cancel the supervisor shortly after it starts; the running worker is
  // SIGTERMed, stops cooperatively, and its attempt is recorded as
  // cancelled — burning no retry budget.
  std::thread canceller([&options] {
    std::this_thread::sleep_for(std::chrono::milliseconds(300));
    options.cancel.Cancel();
  });
  Result<Manifest> manifest_data = LoadManifest(manifest);
  ASSERT_TRUE(manifest_data.ok());
  std::ostringstream out, err;
  Result<SupervisorReport> report =
      RunBatch(*manifest_data, options, out, err);
  canceller.join();
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_TRUE(report->interrupted);
  EXPECT_EQ(report->ExitCode(), kExitResource);

  Result<std::vector<LedgerRecord>> records =
      LoadLedger(options.ledger_path);
  ASSERT_TRUE(records.ok());
  bool saw_cancelled = false;
  for (const LedgerRecord& record : *records) {
    if (record.kind == LedgerRecord::Kind::kAttempt &&
        record.attempt.outcome == AttemptOutcome::kCancelled) {
      saw_cancelled = true;
    }
  }
  EXPECT_TRUE(saw_cancelled);

  // The rerun finishes the interrupted work; cancelled attempts did not
  // count, so the spin task still has its full retry budget... but spin
  // would hang again — give the rerun a deadline to bound it.
  options.cancel.Reset();
  options.task_deadline_ms = 200;
  options.grace_ms = 3000;
  options.retries = 0;
  std::ostringstream out2, err2;
  Result<SupervisorReport> rerun =
      RunBatch(*manifest_data, options, out2, err2);
  ASSERT_TRUE(rerun.ok()) << rerun.status().ToString();
  EXPECT_FALSE(rerun->interrupted);
  EXPECT_EQ(rerun->completed + rerun->quarantined, 2u);
}

// ---------------------------------------------------------------------------
// isolation=none: the in-process fast path

TEST_F(BatchTest, ManifestParsesAndRestrictsIsolationAttribute) {
  Result<Manifest> parsed = ParseManifest(
      "task fast isolation=none : lint rules.tgd\n"
      "task slow isolation=fork : chase rules.tgd seed.inst\n");
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_TRUE(parsed->tasks[0].in_process);
  EXPECT_FALSE(parsed->tasks[1].in_process);

  // Only cheap, read-only commands may opt out of fault isolation.
  Result<Manifest> chase =
      ParseManifest("task t isolation=none : chase d.tgd s.inst\n");
  ASSERT_FALSE(chase.ok());
  EXPECT_NE(chase.status().ToString().find("isolation=none"),
            std::string::npos);
  // env needs a worker process to scope the variables to.
  Result<Manifest> env = ParseManifest(
      "task t isolation=none env A=1 : lint d.tgd\n");
  ASSERT_FALSE(env.ok());
  EXPECT_NE(env.status().ToString().find("env"), std::string::npos);
  // And the value set is closed.
  EXPECT_FALSE(
      ParseManifest("task t isolation=maybe : lint d.tgd\n").ok());
}

TEST_F(BatchTest, InProcessTasksRunWhileForkedCrashStaysContained) {
  std::string rules = Write("ok.tgd", "p(X) -> q(X) .\n");
  std::string manifest = Write(
      "mixed.manifest",
      "task fast-classify isolation=none : classify " + rules + "\n" +
          "task fast-lint isolation=none : lint " + rules + "\n" +
          // A forked worker that dies by SIGSEGV next to the in-process
          // tasks: the crash must be contained and quarantined without
          // taking the supervisor (and with it the fast tasks) down.
          "task boom retries=0 : selftest --die-signal 11\n");
  BatchRun run = RunBatchCli({"--max-parallel", "3"}, manifest);
  EXPECT_EQ(run.code, kExitVerdict) << run.out << run.err;
  EXPECT_NE(run.out.find("# task fast-classify: completed exit=0"),
            std::string::npos)
      << run.out;
  EXPECT_NE(run.out.find("# task fast-lint: completed exit=0"),
            std::string::npos)
      << run.out;
  EXPECT_NE(run.out.find("# task boom: quarantined"), std::string::npos)
      << run.out;

  // The ledger records the in-process attempts like any other.
  std::vector<LedgerRecord> records = MustLoadLedger(manifest);
  int in_process_ok = 0;
  for (const LedgerRecord& record : records) {
    if (record.kind == LedgerRecord::Kind::kAttempt &&
        record.attempt.outcome == AttemptOutcome::kOk &&
        record.attempt.task.rfind("fast-", 0) == 0) {
      ++in_process_ok;
    }
  }
  EXPECT_EQ(in_process_ok, 2);
}

}  // namespace
}  // namespace tgdkit
