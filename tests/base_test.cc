#include <gtest/gtest.h>

#include "base/rng.h"
#include "base/status.h"
#include "base/strings.h"
#include "base/symbol_table.h"
#include "base/vocabulary.h"

namespace tgdkit {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::ParseError("unexpected token ')'");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kParseError);
  EXPECT_EQ(s.ToString(), "ParseError: unexpected token ')'");
}

TEST(StatusTest, AllConstructorsSetMatchingCode) {
  EXPECT_EQ(Status::InvalidArgument("x").code(),
            Status::Code::kInvalidArgument);
  EXPECT_EQ(Status::NotFound("x").code(), Status::Code::kNotFound);
  EXPECT_EQ(Status::ResourceExhausted("x").code(),
            Status::Code::kResourceExhausted);
  EXPECT_EQ(Status::Unsupported("x").code(), Status::Code::kUnsupported);
  EXPECT_EQ(Status::Internal("x").code(), Status::Code::kInternal);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kNotFound);
}

TEST(SymbolTableTest, InternIsIdempotent) {
  SymbolTable table;
  SymbolId a = table.Intern("Emp");
  SymbolId b = table.Intern("Dep");
  EXPECT_NE(a, b);
  EXPECT_EQ(table.Intern("Emp"), a);
  EXPECT_EQ(table.Name(a), "Emp");
  EXPECT_EQ(table.size(), 2u);
}

TEST(SymbolTableTest, FindMissingReturnsInvalid) {
  SymbolTable table;
  EXPECT_EQ(table.Find("missing"), kInvalidSymbol);
  table.Intern("present");
  EXPECT_NE(table.Find("present"), kInvalidSymbol);
  EXPECT_TRUE(table.Contains("present"));
  EXPECT_FALSE(table.Contains("missing"));
}

TEST(SymbolTableTest, IdsAreDense) {
  SymbolTable table;
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(table.Intern("sym" + std::to_string(i)),
              static_cast<SymbolId>(i));
  }
}

TEST(VocabularyTest, RelationArityIsRecorded) {
  Vocabulary vocab;
  RelationId emp = vocab.InternRelation("Emp", 2);
  RelationId dep = vocab.InternRelation("Dep", 1);
  EXPECT_EQ(vocab.RelationArity(emp), 2u);
  EXPECT_EQ(vocab.RelationArity(dep), 1u);
  EXPECT_EQ(vocab.RelationName(emp), "Emp");
  EXPECT_EQ(vocab.InternRelation("Emp", 2), emp);
}

TEST(VocabularyTest, SymbolSpacesAreIndependent) {
  Vocabulary vocab;
  RelationId r = vocab.InternRelation("f", 2);
  FunctionId f = vocab.InternFunction("f", 1);
  ConstantId c = vocab.InternConstant("f");
  VariableId v = vocab.InternVariable("f");
  // Same name in four spaces; ids may coincide numerically but resolve
  // independently.
  EXPECT_EQ(vocab.RelationName(r), "f");
  EXPECT_EQ(vocab.FunctionName(f), "f");
  EXPECT_EQ(vocab.ConstantName(c), "f");
  EXPECT_EQ(vocab.VariableName(v), "f");
  EXPECT_EQ(vocab.RelationArity(r), 2u);
  EXPECT_EQ(vocab.FunctionArity(f), 1u);
}

TEST(VocabularyTest, FreshVariableAvoidsCollisions) {
  Vocabulary vocab;
  VariableId x = vocab.InternVariable("x$0");
  VariableId f1 = vocab.FreshVariable("x");
  EXPECT_NE(f1, x);
  VariableId f2 = vocab.FreshVariable("x");
  EXPECT_NE(f1, f2);
}

TEST(VocabularyTest, FreshFunctionRegistersArity) {
  Vocabulary vocab;
  FunctionId f = vocab.FreshFunction("sk", 3);
  EXPECT_EQ(vocab.FunctionArity(f), 3u);
}

TEST(RngTest, Deterministic) {
  Rng a(7), b(7);
  for (int i = 0; i < 50; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(123);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.Below(17), 17u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(5);
  bool saw_lo = false, saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    uint64_t v = rng.Range(3, 5);
    EXPECT_GE(v, 3u);
    EXPECT_LE(v, 5u);
    saw_lo |= (v == 3);
    saw_hi |= (v == 5);
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(9);
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7};
  std::vector<int> orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(StringsTest, Join) {
  std::vector<std::string> items{"a", "b", "c"};
  EXPECT_EQ(Join(items, ", "), "a, b, c");
  EXPECT_EQ(Join(std::vector<std::string>{}, ","), "");
}

TEST(StringsTest, JoinMapped) {
  std::vector<int> items{1, 2, 3};
  EXPECT_EQ(JoinMapped(items, "+", [](int i) { return std::to_string(i); }),
            "1+2+3");
}

TEST(StringsTest, Cat) {
  EXPECT_EQ(Cat("x=", 42, "!"), "x=42!");
}

TEST(StringsTest, HashRangeDiffers) {
  std::vector<int> a{1, 2, 3}, b{3, 2, 1};
  EXPECT_NE(HashRange(a.begin(), a.end()), HashRange(b.begin(), b.end()));
}

}  // namespace
}  // namespace tgdkit
