// Shared helpers for concise construction of terms, atoms, facts and
// instances in tests.
#pragma once

#include <string>
#include <vector>

#include "data/instance.h"
#include "dep/dependency.h"
#include "term/term.h"

namespace tgdkit {

/// One vocabulary + arena + convenience builders, shared by a test fixture.
class TestWorkspace {
 public:
  Vocabulary vocab;
  TermArena arena;

  /// Variable term.
  TermId V(const std::string& name) {
    return arena.MakeVariable(vocab.InternVariable(name));
  }
  /// Constant term.
  TermId C(const std::string& name) {
    return arena.MakeConstant(vocab.InternConstant(name));
  }
  /// Function term (arity = args.size()).
  TermId F(const std::string& name, std::vector<TermId> args) {
    return arena.MakeFunction(
        vocab.InternFunction(name, static_cast<uint32_t>(args.size())), args);
  }
  /// Variable id (not a term).
  VariableId Vid(const std::string& name) {
    return vocab.InternVariable(name);
  }

  /// Atom over a relation whose arity is args.size().
  Atom A(const std::string& relation, std::vector<TermId> args) {
    Atom atom;
    atom.relation = vocab.InternRelation(
        relation, static_cast<uint32_t>(args.size()));
    atom.args = std::move(args);
    return atom;
  }

  /// Constant value for instances.
  Value Cv(const std::string& name) {
    return Value::Constant(vocab.InternConstant(name));
  }

  /// Ground fact over constants.
  Fact Fc(const std::string& relation, std::vector<std::string> constants) {
    Fact fact;
    fact.relation = vocab.InternRelation(
        relation, static_cast<uint32_t>(constants.size()));
    for (const std::string& c : constants) fact.args.push_back(Cv(c));
    return fact;
  }
};

}  // namespace tgdkit
