// Differential testing of the lazy second-order model checker against a
// brute-force oracle that enumerates COMPLETE function tables over the
// active domain. Only feasible for tiny domains, which is exactly where
// subtle bugs in the backtracking search would hide.
#include <gtest/gtest.h>

#include <functional>

#include "base/rng.h"
#include "gen/generators.h"
#include "mc/model_check.h"
#include "parse/parser.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

/// Brute force: for every total interpretation of the (unary) function
/// symbols over the active domain, check all parts under all body homs.
bool NaiveCheckSo(const TermArena& arena, const Instance& instance,
                  const SoTgd& so) {
  std::vector<Value> domain = instance.ActiveDomain();
  if (domain.empty()) return true;  // bodies cannot match

  // Only unary functions supported by this oracle.
  std::vector<FunctionId> functions = so.functions;
  size_t num_entries = functions.size() * domain.size();
  std::vector<size_t> table(num_entries, 0);  // entry -> domain index

  auto eval_term = [&](TermId t, const Assignment& assignment,
                       auto&& self) -> Value {
    if (arena.IsVariable(t)) return assignment.at(arena.symbol(t));
    if (arena.IsConstant(t)) return Value::Constant(arena.symbol(t));
    FunctionId f = arena.symbol(t);
    Value arg = self(arena.args(t)[0], assignment, self);
    size_t f_index =
        std::find(functions.begin(), functions.end(), f) - functions.begin();
    size_t arg_index =
        std::find(domain.begin(), domain.end(), arg) - domain.begin();
    return domain[table[f_index * domain.size() + arg_index]];
  };

  auto satisfied_under_table = [&]() {
    for (const SoPart& part : so.parts) {
      Matcher body(&arena, &instance, part.body);
      bool part_ok = true;
      body.ForEach({}, [&](const Assignment& assignment) {
        for (const SoEquality& eq : part.equalities) {
          if (eval_term(eq.lhs, assignment, eval_term) !=
              eval_term(eq.rhs, assignment, eval_term)) {
            return true;  // antecedent false, trigger inactive
          }
        }
        for (const Atom& atom : part.head) {
          std::vector<Value> args;
          for (TermId t : atom.args) {
            args.push_back(eval_term(t, assignment, eval_term));
          }
          if (!instance.Contains(atom.relation, args)) {
            part_ok = false;
            return false;
          }
        }
        return true;
      });
      if (!part_ok) return false;
    }
    return true;
  };

  // Enumerate all |domain|^num_entries tables.
  std::function<bool(size_t)> enumerate = [&](size_t entry) -> bool {
    if (entry == num_entries) return satisfied_under_table();
    for (size_t v = 0; v < domain.size(); ++v) {
      table[entry] = v;
      if (enumerate(entry + 1)) return true;
    }
    return false;
  };
  return enumerate(0);
}

class SoOracleTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, SoOracleTest,
                         ::testing::Values(5, 19, 43, 67, 101, 137));

TEST_P(SoOracleTest, LazySearchAgreesWithFullEnumeration) {
  TestWorkspace ws;
  Rng rng(GetParam() * 31 + 3);
  // Tiny schema, one or two unary functions, domain of 2-3 values.
  RelationId p = ws.vocab.InternRelation("P", 2);
  RelationId r = ws.vocab.InternRelation("R", 2);
  FunctionId f = ws.vocab.InternFunction("of", 1);
  FunctionId g = ws.vocab.InternFunction("og", 1);

  for (int trial = 0; trial < 12; ++trial) {
    // Random single-part plain SO tgd: P(x,y) -> R(t1, t2) with terms
    // drawn from {x, y, of(x), og(y), of(og(...))}.
    TermId x = ws.V("x"), y = ws.V("y");
    auto random_term = [&]() {
      TermId base = rng.Chance(50) ? x : y;
      uint32_t wraps = static_cast<uint32_t>(rng.Below(3));
      for (uint32_t i = 0; i < wraps; ++i) {
        base = ws.arena.MakeFunction(rng.Chance(50) ? f : g,
                                     std::vector<TermId>{base});
      }
      return base;
    };
    SoTgd so;
    so.functions = {f, g};
    SoPart part;
    part.body = {Atom{p, {x, y}}};
    part.head = {Atom{r, {random_term(), random_term()}}};
    if (rng.Chance(30)) {
      part.equalities = {{random_term(), random_term()}};
    }
    so.parts = {part};
    ASSERT_TRUE(ValidateSoTgd(ws.arena, so).ok());

    Instance inst(&ws.vocab);
    std::vector<Value> dom{ws.Cv("a"), ws.Cv("b")};
    if (rng.Chance(50)) dom.push_back(ws.Cv("c"));
    for (Value v1 : dom) {
      for (Value v2 : dom) {
        if (rng.Chance(30)) inst.AddFact(p, std::vector<Value>{v1, v2});
        if (rng.Chance(45)) inst.AddFact(r, std::vector<Value>{v1, v2});
      }
    }

    McResult lazy = CheckSo(ws.arena, inst, so);
    ASSERT_FALSE(lazy.budget_exceeded);
    bool naive = NaiveCheckSo(ws.arena, inst, so);
    EXPECT_EQ(lazy.satisfied, naive)
        << "seed " << GetParam() << " trial " << trial << "\n"
        << ToString(ws.arena, ws.vocab, so) << "\n"
        << inst.ToString();
  }
}

TEST_P(SoOracleTest, MultiPartAgreement) {
  TestWorkspace ws;
  Rng rng(GetParam() * 37 + 11);
  RelationId p = ws.vocab.InternRelation("P", 1);
  RelationId q = ws.vocab.InternRelation("Q", 2);
  FunctionId f = ws.vocab.InternFunction("mf", 1);

  for (int trial = 0; trial < 12; ++trial) {
    TermId x = ws.V("x");
    SoTgd so;
    so.functions = {f};
    // Part 1: P(x) -> Q(x, f(x)); Part 2: P(x) & f(x) = x -> Q(x, x).
    SoPart p1;
    p1.body = {Atom{p, {x}}};
    p1.head = {Atom{q, {x, ws.arena.MakeFunction(f, std::vector<TermId>{x})}}};
    SoPart p2;
    p2.body = {Atom{p, {x}}};
    p2.equalities = {
        {ws.arena.MakeFunction(f, std::vector<TermId>{x}), x}};
    p2.head = {Atom{q, {x, x}}};
    so.parts = {p1, p2};

    Instance inst(&ws.vocab);
    std::vector<Value> dom{ws.Cv("a"), ws.Cv("b"), ws.Cv("c")};
    for (Value v : dom) {
      if (rng.Chance(60)) inst.AddFact(p, std::vector<Value>{v});
      for (Value w : dom) {
        if (rng.Chance(40)) inst.AddFact(q, std::vector<Value>{v, w});
      }
    }
    McResult lazy = CheckSo(ws.arena, inst, so);
    ASSERT_FALSE(lazy.budget_exceeded);
    EXPECT_EQ(lazy.satisfied, NaiveCheckSo(ws.arena, inst, so))
        << "seed " << GetParam() << " trial " << trial << "\n"
        << inst.ToString();
  }
}

}  // namespace
}  // namespace tgdkit
