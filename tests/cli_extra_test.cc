// Tests for the compose and solve CLI commands.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>

#include "cli/cli.h"

namespace tgdkit {
namespace {

class ScopedFile {
 public:
  ScopedFile(const std::string& tag, const std::string& content) {
    static int counter = 0;
    path_ = testing::TempDir() + "/tgdkit_cli2_" + tag + "_" +
            std::to_string(counter++) + ".txt";
    std::ofstream out(path_);
    out << content;
  }
  ~ScopedFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun RunTool(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  int code = RunCli(args, out, err);
  return {code, out.str(), err.str()};
}

TEST(CliExtraTest, ComposeSelfManager) {
  ScopedFile m12("m12", "Emp(e) -> exists m . Rep(e, m) .\n");
  ScopedFile m23("m23",
                 "Rep(e, m) -> Mgr(e, m) .\n"
                 "Rep(e2, e2) -> SelfMgr(e2) .\n");
  CliRun run = RunTool({"compose", m12.path(), m23.path()});
  EXPECT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("so exists"), std::string::npos);
  EXPECT_NE(run.out.find("SelfMgr"), std::string::npos);
  EXPECT_NE(run.out.find("="), std::string::npos);  // the equality shows
}

TEST(CliExtraTest, ComposeThreeMappings) {
  ScopedFile m1("c1", "A(x) -> exists y . B(x, y) .\n");
  ScopedFile m2("c2", "B(x, y) -> Cx(y, x) .\n");
  ScopedFile m3("c3", "Cx(y, x) -> D(x, y) .\n");
  CliRun run = RunTool({"compose", m1.path(), m2.path(), m3.path()});
  EXPECT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("D("), std::string::npos);
}

TEST(CliExtraTest, ComposeEmptyWhenUnmatched) {
  ScopedFile m12("e1", "A(x) -> B(x) .\n");
  ScopedFile m23("e2", "Z(x) -> W(x) .\n");
  CliRun run = RunTool({"compose", m12.path(), m23.path()});
  EXPECT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("empty composition"), std::string::npos);
}

TEST(CliExtraTest, ComposeNeedsTwoFiles) {
  ScopedFile m12("one", "A(x) -> B(x) .\n");
  CliRun run = RunTool({"compose", m12.path()});
  EXPECT_EQ(run.code, 1);
}

TEST(CliExtraTest, SolvePrintsUniversalAndCore) {
  ScopedFile deps("solve",
                  "S(x) -> exists y . T(x, y) .\n"
                  "S(x) -> exists z . T(x, z) .\n");
  ScopedFile inst("solve", "S(a).\n");
  CliRun run = RunTool({"solve", deps.path(), inst.path()});
  EXPECT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("# universal solution (2 facts)"),
            std::string::npos);
  EXPECT_NE(run.out.find("# core solution (1 facts)"), std::string::npos);
  // Source facts do not leak into the solution.
  EXPECT_EQ(run.out.find("S(a)"), std::string::npos);
}

TEST(CliExtraTest, ExplainShowsSkolemProvenance) {
  ScopedFile deps("explain",
                  "so exists fdm { Emp(e, d) -> Mgr(e, fdm(d)) } .\n");
  ScopedFile inst("explain", "Emp(alice, cs). Emp(bob, cs).\n");
  CliRun run = RunTool({"explain", deps.path(), inst.path()});
  EXPECT_EQ(run.code, 0) << run.err;
  // One shared null for department cs, explained by its Skolem term.
  EXPECT_NE(run.out.find("1 nulls"), std::string::npos);
  EXPECT_NE(run.out.find("= fdm(\"cs\")"), std::string::npos);
}

TEST(CliExtraTest, SolveRejectsNonSourceToTarget) {
  ScopedFile deps("nonst", "T(x) -> T2(x) .\nT2(x) -> T(x) .\n");
  ScopedFile inst("nonst", "T(a).\n");
  CliRun run = RunTool({"solve", deps.path(), inst.path()});
  EXPECT_EQ(run.code, 2);
  EXPECT_NE(run.err.find("not source-to-target"), std::string::npos);
}

}  // namespace
}  // namespace tgdkit
