// Differential testing of the homomorphism matcher against an
// independent naive nested-loop evaluator, plus chase order-independence
// properties. These are the deepest correctness guards for the two
// engines everything else builds on.
#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "base/rng.h"
#include "chase/chase.h"
#include "dep/skolem.h"
#include "gen/generators.h"
#include "homo/core.h"
#include "homo/matcher.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

/// Reference implementation: enumerate all assignments of query variables
/// to active-domain values by brute force and keep those where every atom
/// is a fact. Exponential, tiny inputs only.
std::set<std::vector<Value>> NaiveEvaluate(const TermArena& arena,
                                           const Instance& instance,
                                           std::span<const Atom> atoms) {
  // Collect variables in first-occurrence order.
  std::vector<VariableId> variables;
  for (const Atom& atom : atoms) {
    for (TermId t : atom.args) arena.CollectVariables(t, &variables);
  }
  std::vector<Value> domain = instance.ActiveDomain();
  std::set<std::vector<Value>> results;
  std::vector<Value> binding(variables.size());

  std::function<void(size_t)> enumerate = [&](size_t index) {
    if (index == variables.size()) {
      for (const Atom& atom : atoms) {
        std::vector<Value> args;
        for (TermId t : atom.args) {
          if (arena.IsConstant(t)) {
            args.push_back(Value::Constant(arena.symbol(t)));
          } else {
            size_t var_index =
                std::find(variables.begin(), variables.end(),
                          arena.symbol(t)) -
                variables.begin();
            args.push_back(binding[var_index]);
          }
        }
        if (!instance.Contains(atom.relation, args)) return;
      }
      results.insert(binding);
      return;
    }
    for (Value v : domain) {
      binding[index] = v;
      enumerate(index + 1);
    }
  };
  if (!domain.empty() || variables.empty()) enumerate(0);
  return results;
}

class MatcherOracleTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, MatcherOracleTest,
                         ::testing::Values(3, 17, 41, 89, 151, 223));

TEST_P(MatcherOracleTest, MatcherAgreesWithNaiveJoin) {
  TestWorkspace ws;
  Rng rng(GetParam() * 1000 + 7);
  SchemaConfig schema_config;
  schema_config.num_relations = 3;
  schema_config.max_arity = 2;
  auto relations = GenerateSchema(&ws.vocab, &rng, schema_config);

  for (int round = 0; round < 10; ++round) {
    Instance inst(&ws.vocab);
    GenerateInstance(&ws.vocab, &rng, relations, 8, 3, 1, &inst);

    // Random query: 1-3 atoms over <=3 variables plus maybe a constant.
    std::vector<VariableId> vars{ws.Vid("q0"), ws.Vid("q1"), ws.Vid("q2")};
    std::vector<Atom> atoms;
    uint32_t num_atoms = 1 + static_cast<uint32_t>(rng.Below(3));
    for (uint32_t i = 0; i < num_atoms; ++i) {
      RelationId rel = rng.Pick(relations);
      Atom atom;
      atom.relation = rel;
      for (uint32_t j = 0; j < ws.vocab.RelationArity(rel); ++j) {
        if (rng.Chance(15)) {
          atom.args.push_back(ws.C("G_c0"));
        } else {
          atom.args.push_back(ws.arena.MakeVariable(rng.Pick(vars)));
        }
      }
      atoms.push_back(std::move(atom));
    }

    // Matcher answers, projected onto the query's variable list.
    std::vector<VariableId> query_vars;
    for (const Atom& atom : atoms) {
      for (TermId t : atom.args) {
        ws.arena.CollectVariables(t, &query_vars);
      }
    }
    Matcher matcher(&ws.arena, &inst, atoms);
    std::set<std::vector<Value>> via_matcher;
    matcher.ForEach({}, [&](const Assignment& assignment) {
      std::vector<Value> row;
      for (VariableId v : query_vars) row.push_back(assignment.at(v));
      via_matcher.insert(std::move(row));
      return true;
    });

    std::set<std::vector<Value>> via_naive =
        NaiveEvaluate(ws.arena, inst, atoms);
    EXPECT_EQ(via_matcher, via_naive)
        << "seed " << GetParam() << " round " << round;
  }
}

TEST_P(MatcherOracleTest, SeededSearchMatchesFilteredNaive) {
  TestWorkspace ws;
  Rng rng(GetParam() * 1000 + 13);
  SchemaConfig schema_config;
  schema_config.num_relations = 2;
  schema_config.max_arity = 2;
  auto relations = GenerateSchema(&ws.vocab, &rng, schema_config);
  Instance inst(&ws.vocab);
  GenerateInstance(&ws.vocab, &rng, relations, 10, 3, 0, &inst);

  std::vector<Atom> atoms{
      Atom{relations[0], {ws.V("a"), ws.V("b")}},
      Atom{relations[1], {ws.V("b"), ws.V("c")}}};
  // Relation arities may be 1; patch args to match.
  for (Atom& atom : atoms) {
    atom.args.resize(ws.vocab.RelationArity(atom.relation),
                     atom.args.empty() ? ws.V("a") : atom.args.back());
  }

  std::vector<Value> domain = inst.ActiveDomain();
  if (domain.empty()) return;
  Value pin = domain[rng.Below(domain.size())];

  Matcher matcher(&ws.arena, &inst, atoms);
  std::set<std::vector<Value>> seeded;
  Assignment seed{{ws.Vid("a"), pin}};
  matcher.ForEach(seed, [&](const Assignment& assignment) {
    std::vector<Value> row;
    for (VariableId v : matcher.variables()) row.push_back(assignment.at(v));
    seeded.insert(std::move(row));
    return true;
  });

  std::set<std::vector<Value>> filtered;
  std::set<std::vector<Value>> all = NaiveEvaluate(ws.arena, inst, atoms);
  // Naive rows are ordered by first-occurrence variables, which matches
  // matcher.variables() ordering ("a" first if it occurs).
  size_t a_index = std::find(matcher.variables().begin(),
                             matcher.variables().end(), ws.Vid("a")) -
                   matcher.variables().begin();
  for (const auto& row : all) {
    if (a_index < row.size() && row[a_index] == pin) filtered.insert(row);
  }
  EXPECT_EQ(seeded, filtered) << "seed " << GetParam();
}

TEST_P(MatcherOracleTest, ChaseIsRuleOrderIndependent) {
  // Permuting the rule order yields hom-equivalent fixpoints.
  TestWorkspace ws;
  Rng rng(GetParam() * 1000 + 29);
  auto relations = GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
  std::vector<Tgd> tgds;
  for (int i = 0; i < 3; ++i) {
    tgds.push_back(
        GenerateTgd(&ws.arena, &ws.vocab, &rng, relations, TgdConfig{}));
  }
  Instance input(&ws.vocab);
  GenerateInstance(&ws.vocab, &rng, relations, 10, 3, 0, &input);

  ChaseLimits limits;
  limits.max_term_depth = 5;
  limits.max_facts = 20000;

  SoTgd forward = TgdsToSo(&ws.arena, &ws.vocab, tgds);
  std::vector<Tgd> reversed(tgds.rbegin(), tgds.rend());
  SoTgd backward = TgdsToSo(&ws.arena, &ws.vocab, reversed);

  ChaseResult a = Chase(&ws.arena, &ws.vocab, forward, input, limits);
  ChaseResult b = Chase(&ws.arena, &ws.vocab, backward, input, limits);
  if (!a.Terminated() || !b.Terminated()) return;
  EXPECT_EQ(a.instance.NumFacts(), b.instance.NumFacts());
  EXPECT_TRUE(HomomorphicallyEquivalent(&ws.arena, &ws.vocab, a.instance,
                                        b.instance));
}

TEST_P(MatcherOracleTest, ChaseMonotoneInInput) {
  // More input facts never remove chase conclusions: chase(I1) maps into
  // chase(I1 ∪ I2).
  TestWorkspace ws;
  Rng rng(GetParam() * 1000 + 31);
  auto relations = GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
  std::vector<Tgd> tgds;
  for (int i = 0; i < 2; ++i) {
    tgds.push_back(
        GenerateTgd(&ws.arena, &ws.vocab, &rng, relations, TgdConfig{}));
  }
  SoTgd so = TgdsToSo(&ws.arena, &ws.vocab, tgds);
  Instance small(&ws.vocab);
  GenerateInstance(&ws.vocab, &rng, relations, 6, 3, 0, &small);
  Instance big(&ws.vocab);
  CopyFacts(small, &big);
  GenerateInstance(&ws.vocab, &rng, relations, 6, 4, 0, &big);

  ChaseLimits limits;
  limits.max_term_depth = 4;
  limits.max_facts = 30000;
  ChaseResult small_chase = Chase(&ws.arena, &ws.vocab, so, small, limits);
  ChaseResult big_chase = Chase(&ws.arena, &ws.vocab, so, big, limits);
  if (!small_chase.Terminated() || !big_chase.Terminated()) return;
  EXPECT_TRUE(HomomorphismExists(&ws.arena, &ws.vocab, small_chase.instance,
                                 big_chase.instance));
}

}  // namespace
}  // namespace tgdkit
