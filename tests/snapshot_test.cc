// Tests for the crash-consistent snapshot layer (src/snapshot): payload
// round-trips, envelope rejection, bit-identical checkpoint/resume for
// both chase engines and the PCP search, and the governor's no-recharge
// contract on resume.
#include <gtest/gtest.h>

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "base/budget.h"
#include "base/rng.h"
#include "chase/chase.h"
#include "data/instance.h"
#include "dep/dependency.h"
#include "gen/generators.h"
#include "oracle/oracle.h"
#include "snapshot/snapshot.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

/// Transitive closure over a path graph plus an existential rule: rounds
/// grow geometrically and every round allocates nulls, so mid-round
/// checkpoints exercise the replay machinery for real.
SoTgd TransitiveClosureRules(TestWorkspace* ws) {
  SoTgd so;
  FunctionId fm = ws->vocab.InternFunction("fm", 2);
  so.functions = {fm};
  SoPart trans;
  trans.body = {ws->A("E", {ws->V("x"), ws->V("y")}),
                ws->A("E", {ws->V("y"), ws->V("z")})};
  trans.head = {ws->A("E", {ws->V("x"), ws->V("z")})};
  SoPart mgr;
  mgr.body = {ws->A("E", {ws->V("x"), ws->V("y")})};
  mgr.head = {ws->A("M", {ws->V("x"), ws->F("fm", {ws->V("x"), ws->V("y")})})};
  so.parts = {trans, mgr};
  return so;
}

Instance PathInstance(TestWorkspace* ws, int nodes) {
  Instance input(&ws->vocab);
  for (int i = 0; i + 1 < nodes; ++i) {
    input.AddFact(ws->Fc("E", {"n" + std::to_string(i),
                               "n" + std::to_string(i + 1)}));
  }
  return input;
}

/// Runs the chase to fixpoint with no budget and reports the canonical
/// rendering plus counters, the oracle all resumed runs must match.
struct GoldenRun {
  std::string text;
  uint64_t rounds;
  uint64_t facts_created;
};

GoldenRun GoldenChase(int nodes) {
  TestWorkspace ws;
  SoTgd so = TransitiveClosureRules(&ws);
  Instance input = PathInstance(&ws, nodes);
  ChaseEngine engine(&ws.arena, &ws.vocab, so, input);
  engine.Run();
  EXPECT_EQ(engine.stop_reason(), ChaseStop::kFixpoint);
  return {engine.instance().ToString(), engine.rounds(),
          engine.facts_created()};
}

TEST(SnapshotTest, ChaseSerializeParseRoundTrip) {
  TestWorkspace ws;
  SoTgd so = TransitiveClosureRules(&ws);
  Instance input = PathInstance(&ws, 8);
  ChaseLimits limits;
  limits.budget.max_steps = 40;
  ChaseEngine engine(&ws.arena, &ws.vocab, so, input, limits);
  engine.Run();
  ASSERT_NE(engine.stop_reason(), ChaseStop::kFixpoint);

  ChaseEngineState state = engine.CaptureState();
  std::string bytes = SerializeChaseSnapshot(ws.vocab, ws.arena, so, state,
                                             /*seed=*/42, /*rng_state=*/99);
  auto parsed = ParseChaseSnapshot(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->seed, 42u);
  EXPECT_EQ(parsed->rng_state, 99u);
  EXPECT_EQ(parsed->state->rounds, state.rounds);
  EXPECT_EQ(parsed->state->facts_created, state.facts_created);
  EXPECT_EQ(parsed->state->stop_reason, state.stop_reason);
  EXPECT_EQ(parsed->state->governor_steps, state.governor_steps);
  EXPECT_EQ(parsed->state->term_to_value, state.term_to_value);
  EXPECT_EQ(parsed->state->rows_before_current_round,
            state.rows_before_current_round);
  EXPECT_EQ(parsed->state->instance.ToExactText(),
            state.instance.ToExactText());
  EXPECT_EQ(parsed->arena->size(), ws.arena.size());
  // Serializing the parsed snapshot reproduces the file byte for byte.
  EXPECT_EQ(SerializeChaseSnapshot(*parsed->vocab, *parsed->arena,
                                   parsed->rules, *parsed->state, 42, 99),
            bytes);
}

TEST(SnapshotTest, ChaseResumeAfterBudgetStopIsBitIdentical) {
  GoldenRun golden = GoldenChase(12);

  TestWorkspace ws;
  SoTgd so = TransitiveClosureRules(&ws);
  Instance input = PathInstance(&ws, 12);
  ChaseLimits limits;
  limits.budget.max_steps = 200;
  ChaseEngine engine(&ws.arena, &ws.vocab, so, input, limits);
  engine.Run();
  ASSERT_EQ(engine.stop_reason(), ChaseStop::kStepLimit);

  std::string bytes = SerializeChaseSnapshot(
      ws.vocab, ws.arena, so, engine.CaptureState(), 0, 0);
  auto snap = ParseChaseSnapshot(bytes);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  ChaseEngine resumed(snap->arena.get(), snap->vocab.get(), snap->rules,
                      std::move(*snap->state), ChaseLimits{});
  resumed.Run();
  EXPECT_EQ(resumed.stop_reason(), ChaseStop::kFixpoint);
  EXPECT_EQ(resumed.instance().ToString(), golden.text);
  EXPECT_EQ(resumed.rounds(), golden.rounds);
  EXPECT_EQ(resumed.facts_created(), golden.facts_created);
}

TEST(SnapshotTest, ChasePeriodicCheckpointsAllResumeBitIdentical) {
  GoldenRun golden = GoldenChase(10);

  // Collect every periodic checkpoint the engine offers, then resume each
  // one: wherever the process might have been killed, the continuation
  // must converge to the same rendering and counters.
  std::vector<std::string> checkpoints;
  {
    TestWorkspace ws;
    SoTgd so = TransitiveClosureRules(&ws);
    Instance input = PathInstance(&ws, 10);
    ChaseEngine engine(&ws.arena, &ws.vocab, so, input);
    engine.SetCheckpointHook(
        /*every_steps=*/1, /*every_ms=*/0, [&](const ChaseEngine& e) {
          checkpoints.push_back(SerializeChaseSnapshot(
              ws.vocab, ws.arena, so, e.CaptureState(), 0, 0));
        });
    engine.Run();
  }
  ASSERT_GE(checkpoints.size(), 3u);
  for (const std::string& bytes : checkpoints) {
    auto snap = ParseChaseSnapshot(bytes);
    ASSERT_TRUE(snap.ok()) << snap.status().ToString();
    ChaseEngine resumed(snap->arena.get(), snap->vocab.get(), snap->rules,
                        std::move(*snap->state), ChaseLimits{});
    resumed.Run();
    EXPECT_EQ(resumed.stop_reason(), ChaseStop::kFixpoint);
    EXPECT_EQ(resumed.instance().ToString(), golden.text);
    EXPECT_EQ(resumed.rounds(), golden.rounds);
    EXPECT_EQ(resumed.facts_created(), golden.facts_created);
  }
}

TEST(SnapshotTest, GovernorDoesNotRechargeRestoredConsumptionOnResume) {
  TestWorkspace ws;
  SoTgd so = TransitiveClosureRules(&ws);
  // Large enough that two 3000-step legs cannot reach fixpoint: the
  // second leg's budget consumption is then observable in full.
  Instance input = PathInstance(&ws, 30);
  ChaseLimits limits;
  limits.budget.max_steps = 3000;
  ChaseEngine engine(&ws.arena, &ws.vocab, so, input, limits);
  engine.Run();
  ASSERT_EQ(engine.stop_reason(), ChaseStop::kStepLimit);
  uint64_t consumed = engine.governor().total_steps();
  ASSERT_GE(consumed, 3000u);

  // Resume with a per-leg budget SMALLER than what the first leg already
  // consumed. If restored steps were charged against the new limit the
  // leg would stop within one governor check interval (~1024 steps); the
  // contract is that they are telemetry only, so the leg gets its full
  // 3000 fresh steps.
  std::string bytes = SerializeChaseSnapshot(
      ws.vocab, ws.arena, so, engine.CaptureState(), 0, 0);
  auto snap = ParseChaseSnapshot(bytes);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  ChaseEngine resumed(snap->arena.get(), snap->vocab.get(), snap->rules,
                      std::move(*snap->state), limits);
  resumed.Run();
  ASSERT_EQ(resumed.stop_reason(), ChaseStop::kStepLimit);
  // Lifetime telemetry keeps counting across legs...
  EXPECT_GE(resumed.governor().total_steps(), consumed + 2500);
  // ...and the serialized consumption matches what a further resume
  // would restore.
  EXPECT_EQ(resumed.CaptureState().governor_steps,
            resumed.governor().total_steps());
}

TEST(SnapshotTest, RestrictedResumeMatchesUninterruptedRun) {
  auto build = [](TestWorkspace* ws, std::vector<Tgd>* tgds) {
    Tgd trans;
    trans.body = {ws->A("E", {ws->V("x"), ws->V("y")}),
                  ws->A("E", {ws->V("y"), ws->V("z")})};
    trans.head = {ws->A("E", {ws->V("x"), ws->V("z")})};
    Tgd mgr;
    mgr.body = {ws->A("E", {ws->V("x"), ws->V("y")})};
    mgr.head = {ws->A("M", {ws->V("x"), ws->V("w")})};
    mgr.exist_vars = {ws->Vid("w")};
    *tgds = {trans, mgr};
  };

  std::string golden_text;
  uint64_t golden_rounds = 0;
  {
    TestWorkspace ws;
    std::vector<Tgd> tgds;
    build(&ws, &tgds);
    Instance input = PathInstance(&ws, 9);
    RestrictedChaseEngine engine(&ws.arena, tgds, input);
    engine.Run();
    EXPECT_EQ(engine.stop_reason(), ChaseStop::kFixpoint);
    golden_rounds = engine.TakeResult().rounds;
  }
  {
    TestWorkspace ws;
    std::vector<Tgd> tgds;
    build(&ws, &tgds);
    Instance input = PathInstance(&ws, 9);
    RestrictedChaseEngine engine(&ws.arena, tgds, input);
    engine.Run();
    ChaseResult r = engine.TakeResult();
    golden_text = r.instance.ToString();
  }

  TestWorkspace ws;
  std::vector<Tgd> tgds;
  build(&ws, &tgds);
  Instance input = PathInstance(&ws, 9);
  ChaseLimits limits;
  limits.budget.max_steps = 60;
  RestrictedChaseEngine engine(&ws.arena, tgds, input, limits);
  std::string latest;
  engine.SetCheckpointHook(1, [&](const RestrictedChaseEngine& e) {
    latest = SerializeRestrictedSnapshot(ws.vocab, ws.arena, tgds,
                                         e.CaptureState(), 0, 0);
  });
  engine.Run();
  ASSERT_NE(engine.stop_reason(), ChaseStop::kFixpoint);
  ASSERT_FALSE(latest.empty());

  auto snap = ParseRestrictedSnapshot(latest);
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  // The restricted chase invents fresh nulls per firing, so the arena of
  // the original workspace is NOT reused: the snapshot's own arena
  // carries whatever the engine interned.
  RestrictedChaseEngine resumed(snap->arena.get(), snap->tgds,
                                std::move(*snap->state), ChaseLimits{});
  resumed.Run();
  EXPECT_EQ(resumed.stop_reason(), ChaseStop::kFixpoint);
  ChaseResult result = resumed.TakeResult();
  EXPECT_EQ(result.instance.ToString(), golden_text);
  EXPECT_EQ(result.rounds, golden_rounds);
}

TEST(SnapshotTest, PcpResumeFromAnyCheckpointReachesSameWitness) {
  // The classic solvable instance (1,111),(10111,10),(10,0): the unique
  // shortest witness is 2,1,1,3.
  PcpInstance pcp;
  pcp.alphabet_size = 2;
  pcp.pairs = {{{1}, {1, 1, 1}}, {{1, 0, 1, 1, 1}, {1, 0}}, {{1, 0}, {0}}};

  ExecutionBudget unbounded;
  ResourceGovernor full(unbounded);
  PcpSearchOutcome golden =
      SolvePcpBudgeted(pcp, /*max_sequence_length=*/4, &full);
  ASSERT_TRUE(golden.Complete());
  ASSERT_TRUE(golden.witness.has_value());
  EXPECT_EQ(*golden.witness, (std::vector<uint32_t>{2, 1, 1, 3}));

  // Capture a checkpoint at every expansion boundary of a complete run,
  // then resume from each one: wherever the process might have died, the
  // continuation must reach the same witness with the same lifetime
  // expansion count.
  std::vector<std::string> checkpoints;
  {
    ResourceGovernor g(unbounded);
    SolvePcpResumable(
        pcp, 4, &g, nullptr,
        [&](const PcpSearchCheckpoint& cp) {
          checkpoints.push_back(SerializePcpCheckpoint(cp));
        },
        /*checkpoint_every_configs=*/1);
  }
  ASSERT_GE(checkpoints.size(), 3u);
  for (const std::string& bytes : checkpoints) {
    auto cp = ParsePcpCheckpoint(bytes);
    ASSERT_TRUE(cp.ok()) << cp.status().ToString();
    ResourceGovernor g(unbounded);
    PcpSearchOutcome resumed = SolvePcpResumable(pcp, 4, &g, &*cp, nullptr, 0);
    EXPECT_EQ(resumed.stop, golden.stop);
    EXPECT_EQ(resumed.witness, golden.witness);
    EXPECT_EQ(resumed.configs, golden.configs);
  }
}

TEST(SnapshotTest, PcpCheckpointSerializeParseRoundTrip) {
  PcpSearchCheckpoint cp;
  cp.seeded = true;
  cp.configs = 17;
  cp.frontier.push_back({true, {1, 0, 2}, {3, 1}});
  cp.frontier.push_back({false, {}, {2}});
  cp.seen.push_back({true, {1, 0, 2}});
  cp.seen.push_back({false, {0}});
  std::string bytes = SerializePcpCheckpoint(cp);
  auto parsed = ParsePcpCheckpoint(bytes);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(parsed->seeded, cp.seeded);
  EXPECT_EQ(parsed->configs, cp.configs);
  ASSERT_EQ(parsed->frontier.size(), 2u);
  EXPECT_EQ(parsed->frontier[0].first_longer, true);
  EXPECT_EQ(parsed->frontier[0].overhang, (std::vector<uint32_t>{1, 0, 2}));
  EXPECT_EQ(parsed->frontier[0].sequence, (std::vector<uint32_t>{3, 1}));
  EXPECT_EQ(parsed->seen, cp.seen);
  EXPECT_EQ(SerializePcpCheckpoint(*parsed), bytes);
}

TEST(SnapshotTest, WrongKindIsInvalidArgument) {
  TestWorkspace ws;
  SoTgd so = TransitiveClosureRules(&ws);
  Instance input = PathInstance(&ws, 4);
  ChaseEngine engine(&ws.arena, &ws.vocab, so, input);
  engine.Run();
  std::string bytes = SerializeChaseSnapshot(
      ws.vocab, ws.arena, so, engine.CaptureState(), 0, 0);

  auto as_restricted = ParseRestrictedSnapshot(bytes);
  ASSERT_FALSE(as_restricted.ok());
  EXPECT_EQ(as_restricted.status().code(), Status::Code::kInvalidArgument);
  auto as_pcp = ParsePcpCheckpoint(bytes);
  ASSERT_FALSE(as_pcp.ok());
  EXPECT_EQ(as_pcp.status().code(), Status::Code::kInvalidArgument);
}

TEST(SnapshotTest, FutureVersionIsUnsupported) {
  TestWorkspace ws;
  SoTgd so = TransitiveClosureRules(&ws);
  Instance input = PathInstance(&ws, 4);
  ChaseEngine engine(&ws.arena, &ws.vocab, so, input);
  engine.Run();
  std::string bytes = SerializeChaseSnapshot(
      ws.vocab, ws.arena, so, engine.CaptureState(), 0, 0);
  size_t v = bytes.find("v1");
  ASSERT_NE(v, std::string::npos);
  bytes[v + 1] = '9';
  auto parsed = ParseChaseSnapshot(bytes);
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), Status::Code::kUnsupported);
}

TEST(SnapshotTest, GarbageIsDataLoss) {
  auto parsed = ParseChaseSnapshot("not a snapshot at all\n");
  ASSERT_FALSE(parsed.ok());
  EXPECT_EQ(parsed.status().code(), Status::Code::kDataLoss);
  auto empty = ParseChaseSnapshot("");
  ASSERT_FALSE(empty.ok());
  EXPECT_EQ(empty.status().code(), Status::Code::kDataLoss);
}

TEST(SnapshotTest, InstanceExactTextParsePrintIdentity) {
  // Property: parse ∘ print is the identity on the canonical exact text,
  // across randomly generated instances with nulls (satellite of the
  // snapshot format: the instance section must survive a round trip with
  // row ids and null indexes intact).
  for (uint64_t seed = 1; seed <= 25; ++seed) {
    Vocabulary vocab;
    Rng rng(seed);
    std::vector<RelationId> relations =
        GenerateSchema(&vocab, &rng, SchemaConfig{});
    Instance instance(&vocab);
    GenerateInstance(&vocab, &rng, relations, /*num_facts=*/40,
                     /*domain_size=*/8, /*num_nulls=*/5, &instance);
    std::string text = instance.ToExactText();
    Instance reparsed(&vocab);
    Status st = ParseInstanceText(text, &vocab, &reparsed);
    ASSERT_TRUE(st.ok()) << "seed " << seed << ": " << st.ToString();
    EXPECT_EQ(reparsed.ToExactText(), text) << "seed " << seed;
    EXPECT_EQ(reparsed.ToString(), instance.ToString()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace tgdkit
