#include <gtest/gtest.h>

#include "oracle/oracle.h"

namespace tgdkit {
namespace {

Graph Cycle(uint32_t n) {
  Graph g;
  g.num_vertices = n;
  for (uint32_t i = 0; i < n; ++i) g.edges.push_back({i, (i + 1) % n});
  return g;
}

Graph Complete(uint32_t n) {
  Graph g;
  g.num_vertices = n;
  for (uint32_t i = 0; i < n; ++i) {
    for (uint32_t j = i + 1; j < n; ++j) g.edges.push_back({i, j});
  }
  return g;
}

TEST(ThreeColorableTest, SmallGraphs) {
  EXPECT_TRUE(ThreeColorable(Graph{}));            // empty
  EXPECT_TRUE(ThreeColorable(Graph{3, {}}));       // no edges
  EXPECT_TRUE(ThreeColorable(Cycle(4)));           // even cycle: 2 colors
  EXPECT_TRUE(ThreeColorable(Cycle(5)));           // odd cycle: 3 colors
  EXPECT_TRUE(ThreeColorable(Complete(3)));        // triangle
  EXPECT_FALSE(ThreeColorable(Complete(4)));       // K4 needs 4
}

TEST(ThreeColorableTest, SelfLoopNeverColorable) {
  Graph g{1, {{0, 0}}};
  EXPECT_FALSE(ThreeColorable(g));
}

TEST(ThreeColorableTest, WheelGraphs) {
  // Wheel W_n: hub + cycle of n; 3-colorable iff the cycle is even.
  auto wheel = [](uint32_t n) {
    Graph g = Cycle(n);
    uint32_t hub = g.num_vertices;
    g.num_vertices += 1;
    for (uint32_t i = 0; i < n; ++i) g.edges.push_back({hub, i});
    return g;
  };
  EXPECT_TRUE(ThreeColorable(wheel(4)));
  EXPECT_FALSE(ThreeColorable(wheel(5)));
  EXPECT_TRUE(ThreeColorable(wheel(6)));
}

QbfLiteral X(uint32_t i, bool neg = false) {
  return {QbfLiteral::Kind::kUniversal, i, neg};
}
QbfLiteral Y(uint32_t i, bool neg = false) {
  return {QbfLiteral::Kind::kExistential, i, neg};
}

TEST(QbfTest, TautologyAndContradiction) {
  // ∀x∃y (y ∨ y ∨ y): pick y = 1. True.
  Qbf taut{1, {{Y(0), Y(0), Y(0)}}};
  EXPECT_TRUE(EvaluateQbf(taut));
  // ∀x∃y (y) ∧ (¬y): impossible.
  Qbf contra{1, {{Y(0), Y(0), Y(0)}, {Y(0, true), Y(0, true), Y(0, true)}}};
  EXPECT_FALSE(EvaluateQbf(contra));
}

TEST(QbfTest, ExistentialTracksUniversal) {
  // ∀x∃y (x ∨ y) ∧ (¬x ∨ ¬y): y := ¬x. True.
  Qbf q{1, {{X(0), Y(0), Y(0)}, {X(0, true), Y(0, true), Y(0, true)}}};
  EXPECT_TRUE(EvaluateQbf(q));
  // ∀x∃y (x ∨ x ∨ x): fails for x = 0.
  Qbf bad{1, {{X(0), X(0), X(0)}}};
  EXPECT_FALSE(EvaluateQbf(bad));
}

TEST(QbfTest, TwoLevelAlternation) {
  // ∀x1∃y1∀x2∃y2 (x1 ∨ y2 ∨ y2) ∧ (x2 ∨ y2 ∨ y2): y2 must cover both
  // x1=0 and x2=0: y2 := 1 works. True.
  Qbf q{2, {{X(0), Y(1), Y(1)}, {X(1), Y(1), Y(1)}}};
  EXPECT_TRUE(EvaluateQbf(q));
  // ∀x1∃y1∀x2∃y1' where a clause forces y1 = x2 (chosen before x2): false.
  // (y1 ∨ ¬x2) ∧ (¬y1 ∨ x2): y1 ↔ x2, but y1 is quantified before x2.
  Qbf impossible{2,
                 {{Y(0), X(1, true), X(1, true)}, {Y(0, true), X(1), X(1)}}};
  EXPECT_FALSE(EvaluateQbf(impossible));
}

TEST(QbfTest, EmptyMatrixIsTrue) {
  Qbf q{2, {}};
  EXPECT_TRUE(EvaluateQbf(q));
}

TEST(PcpTest, SimpleSolvableInstance) {
  // Pairs: (1, 101), (10, 00), (011, 11) over {0,1} -> encode as {1,2}.
  // Classic instance with solution 1 3 2 3? Use a known-simple one:
  // pairs (a, ab), (b, -)? Keep it minimal: (12, 1), (2, 22)? Check:
  // seq 1,2: top = 12|2 = "122", bottom = 1|22 = "122". Solved!
  PcpInstance pcp;
  pcp.alphabet_size = 2;
  pcp.pairs = {{{1, 2}, {1}}, {{2}, {2, 2}}};
  auto solution = SolvePcp(pcp, 10);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(CheckPcpSolution(pcp, *solution));
  EXPECT_EQ(*solution, (std::vector<uint32_t>{1, 2}));
}

TEST(PcpTest, SingleIdenticalPair) {
  PcpInstance pcp;
  pcp.alphabet_size = 1;
  pcp.pairs = {{{1}, {1}}};
  auto solution = SolvePcp(pcp, 5);
  ASSERT_TRUE(solution.has_value());
  EXPECT_EQ(solution->size(), 1u);
}

TEST(PcpTest, UnsolvableByLengthMismatch) {
  // Every pair's first word is strictly longer: totals can never match.
  PcpInstance pcp;
  pcp.alphabet_size = 2;
  pcp.pairs = {{{1, 1}, {1}}, {{2, 2, 1}, {2}}};
  EXPECT_FALSE(SolvePcp(pcp, 12).has_value());
}

TEST(PcpTest, UnsolvableByFirstSymbol) {
  PcpInstance pcp;
  pcp.alphabet_size = 2;
  pcp.pairs = {{{1}, {2}}, {{2}, {1}}};
  EXPECT_FALSE(SolvePcp(pcp, 12).has_value());
}

TEST(PcpTest, LongerSolution) {
  // Classic textbook instance over {a=1, b=2, c=3}:
  //   (a, ab), (b, ca), (ca, a), (abc, c)
  // has minimum solution 1,2,3,1,4: both sides spell "abcaaabc".
  PcpInstance pcp;
  pcp.alphabet_size = 3;
  pcp.pairs = {{{1}, {1, 2}},
               {{2}, {3, 1}},
               {{3, 1}, {1}},
               {{1, 2, 3}, {3}}};
  EXPECT_FALSE(SolvePcp(pcp, 4).has_value());  // nothing shorter
  auto solution = SolvePcp(pcp, 5);
  ASSERT_TRUE(solution.has_value());
  EXPECT_TRUE(CheckPcpSolution(pcp, *solution));
  EXPECT_EQ(*solution, (std::vector<uint32_t>{1, 2, 3, 1, 4}));
}

TEST(PcpTest, CheckRejectsBadSolutions) {
  PcpInstance pcp;
  pcp.alphabet_size = 2;
  pcp.pairs = {{{1, 2}, {1}}, {{2}, {2, 2}}};
  EXPECT_FALSE(CheckPcpSolution(pcp, {}));
  EXPECT_FALSE(CheckPcpSolution(pcp, {1}));
  EXPECT_FALSE(CheckPcpSolution(pcp, {2, 1}));
  EXPECT_FALSE(CheckPcpSolution(pcp, {9}));
  EXPECT_TRUE(CheckPcpSolution(pcp, {1, 2}));
}

}  // namespace
}  // namespace tgdkit
