// The parallelism determinism contract (docs/PARALLELISM.md): any
// ChaseLimits::threads value produces byte-identical results — final
// instance text, rounds/facts/step telemetry, stop reason, and every
// serialized snapshot — because round staging uses fixed slice geometry
// and a deterministic merge order independent of the lane count.
//
// These are property tests over that contract at three levels: the
// engines directly, the CLI (stdout + final snapshot file), and a forked
// kill-and-resume cycle that crosses thread counts between legs.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cctype>
#include <cstdlib>
#include <fstream>
#include <utility>
#include <sstream>
#include <string>
#include <vector>

#include "chase/chase.h"
#include "cli/cli.h"
#include "data/instance.h"
#include "dep/skolem.h"
#include "snapshot/snapshot.h"
#include "test_util.h"

namespace tgdkit {
namespace {

// Transitive closure over a path (multi-round, hundreds of triggers per
// round — enough rows to span many 64-row slices) plus an existential
// rule so null numbering is exercised too.
constexpr char kRules[] =
    "t: E(x, y) & E(y, z) -> E(x, z) .\n"
    "m: E(x, y) -> exists w . M(x, w) .\n";

std::string PathInstanceText(int nodes) {
  std::string out;
  for (int i = 0; i + 1 < nodes; ++i) {
    out += "E(n" + std::to_string(i) + ", n" + std::to_string(i + 1) + ") .\n";
  }
  return out;
}

/// Builds the same program as kRules directly against a workspace.
std::vector<Tgd> BuildTgds(TestWorkspace* ws) {
  Tgd trans;
  trans.body = {ws->A("E", {ws->V("x"), ws->V("y")}),
                ws->A("E", {ws->V("y"), ws->V("z")})};
  trans.head = {ws->A("E", {ws->V("x"), ws->V("z")})};
  Tgd mgr;
  mgr.body = {ws->A("E", {ws->V("x"), ws->V("y")})};
  mgr.head = {ws->A("M", {ws->V("x"), ws->V("w")})};
  mgr.exist_vars = {ws->Vid("w")};
  return {trans, mgr};
}

Instance PathInstance(TestWorkspace* ws, int nodes) {
  Instance input(&ws->vocab);
  for (int i = 0; i + 1 < nodes; ++i) {
    input.AddFact(ws->Fc("E", {"n" + std::to_string(i),
                               "n" + std::to_string(i + 1)}));
  }
  return input;
}

/// Everything an observer could compare between two chase runs.
struct RunOutcome {
  std::string exact_text;
  uint64_t rounds = 0;
  uint64_t facts = 0;
  uint64_t steps = 0;
  ChaseStop stop = ChaseStop::kFixpoint;
  std::string final_snapshot;
  /// Periodic checkpoint stream: serialized bytes of every hook firing.
  std::vector<std::string> checkpoints;
};

RunOutcome RunSkolem(uint32_t threads, int nodes, uint64_t max_steps,
                     uint64_t checkpoint_every_steps) {
  TestWorkspace ws;
  SoTgd so = TgdsToSo(&ws.arena, &ws.vocab, BuildTgds(&ws));
  Instance input = PathInstance(&ws, nodes);
  ChaseLimits limits;
  limits.threads = threads;
  limits.budget.max_steps = max_steps;
  ChaseEngine engine(&ws.arena, &ws.vocab, so, input, limits);
  RunOutcome outcome;
  if (checkpoint_every_steps != 0) {
    engine.SetCheckpointHook(
        checkpoint_every_steps, 0, [&](const ChaseEngine& live) {
          outcome.checkpoints.push_back(SerializeChaseSnapshot(
              ws.vocab, ws.arena, so, live.CaptureState(), 7, 7));
        });
  }
  engine.Run();
  outcome.exact_text = engine.instance().ToExactText();
  outcome.rounds = engine.rounds();
  outcome.facts = engine.facts_created();
  outcome.steps = engine.governor().total_steps();
  outcome.stop = engine.stop_reason();
  outcome.final_snapshot = SerializeChaseSnapshot(ws.vocab, ws.arena, so,
                                                  engine.CaptureState(), 7, 7);
  return outcome;
}

void ExpectSameOutcome(const RunOutcome& a, const RunOutcome& b,
                       const std::string& label) {
  EXPECT_EQ(a.exact_text, b.exact_text) << label;
  EXPECT_EQ(a.rounds, b.rounds) << label;
  EXPECT_EQ(a.facts, b.facts) << label;
  EXPECT_EQ(a.steps, b.steps) << label;
  EXPECT_EQ(a.stop, b.stop) << label;
  EXPECT_EQ(a.final_snapshot, b.final_snapshot) << label;
  ASSERT_EQ(a.checkpoints.size(), b.checkpoints.size()) << label;
  for (size_t i = 0; i < a.checkpoints.size(); ++i) {
    EXPECT_EQ(a.checkpoints[i], b.checkpoints[i])
        << label << ": checkpoint " << i;
  }
}

TEST(ParallelDeterminismTest, SkolemFixpointIdenticalAcrossThreadCounts) {
  RunOutcome serial = RunSkolem(1, 40, 0, 0);
  ASSERT_EQ(serial.stop, ChaseStop::kFixpoint);
  ASSERT_GT(serial.facts, 700u);  // big enough to span many slices
  for (uint32_t threads : {2u, 3u, 4u, 8u}) {
    RunOutcome parallel = RunSkolem(threads, 40, 0, 0);
    ExpectSameOutcome(serial, parallel,
                      "threads=" + std::to_string(threads));
  }
}

TEST(ParallelDeterminismTest, CheckpointStreamIdenticalAcrossThreadCounts) {
  // The strongest form of the contract: the governor's slow-path checks
  // (and so the checkpoint hook's firing steps) land at the same step
  // numbers for every lane count, and each captured state serializes to
  // the same bytes.
  RunOutcome serial = RunSkolem(1, 32, 0, 512);
  ASSERT_GE(serial.checkpoints.size(), 3u)
      << "workload too small to exercise periodic checkpoints";
  RunOutcome parallel = RunSkolem(4, 32, 0, 512);
  ExpectSameOutcome(serial, parallel, "checkpoint stream threads=4");
}

TEST(ParallelDeterminismTest, StepLimitStopsAtIdenticalState) {
  // A deterministic budget (max_steps) must trip at the same trigger for
  // every lane count: budgets are only charged at the serial merge.
  RunOutcome serial = RunSkolem(1, 40, 900, 0);
  ASSERT_EQ(serial.stop, ChaseStop::kStepLimit);
  for (uint32_t threads : {2u, 4u}) {
    RunOutcome parallel = RunSkolem(threads, 40, 900, 0);
    ExpectSameOutcome(serial, parallel,
                      "step-limited threads=" + std::to_string(threads));
  }
}

TEST(ParallelDeterminismTest, ParallelStateResumesUnderAnyThreadCount) {
  // Snapshot written by a 4-lane engine, resumed by a 1-lane engine (and
  // vice versa): both must land on the uninterrupted serial result.
  RunOutcome golden = RunSkolem(1, 24, 0, 0);
  const std::vector<std::pair<uint32_t, uint32_t>> legs = {{4, 1}, {1, 4}};
  for (auto [capture_threads, resume_threads] : legs) {
    RunOutcome partial = RunSkolem(capture_threads, 24, 300, 0);
    ASSERT_EQ(partial.stop, ChaseStop::kStepLimit);
    Result<ChaseSnapshot> loaded = ParseChaseSnapshot(partial.final_snapshot);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ChaseSnapshot snap = std::move(*loaded);
    ChaseLimits limits;
    limits.threads = resume_threads;
    ChaseEngine engine(snap.arena.get(), snap.vocab.get(), snap.rules,
                       std::move(*snap.state), limits);
    engine.Run();
    std::string label = "capture=" + std::to_string(capture_threads) +
                        " resume=" + std::to_string(resume_threads);
    EXPECT_EQ(engine.stop_reason(), ChaseStop::kFixpoint) << label;
    EXPECT_EQ(engine.instance().ToExactText(), golden.exact_text) << label;
    EXPECT_EQ(engine.rounds(), golden.rounds) << label;
    EXPECT_EQ(engine.facts_created(), golden.facts) << label;
  }
}

TEST(ParallelDeterminismTest, RestrictedChaseIdenticalAcrossThreadCounts) {
  struct Observed {
    std::string exact_text;
    uint64_t rounds, facts, steps;
    ChaseStop stop;
  };
  // The result instance references the workspace's vocabulary, so render
  // the text while the workspace is still alive.
  auto run = [](uint32_t threads) {
    TestWorkspace ws;
    std::vector<Tgd> tgds = BuildTgds(&ws);
    Instance input = PathInstance(&ws, 24);
    ChaseLimits limits;
    limits.threads = threads;
    ChaseResult r =
        RestrictedChaseTgds(&ws.arena, &ws.vocab, tgds, input, limits);
    return Observed{r.instance.ToExactText(), r.rounds, r.facts_created,
                    r.budget_steps, r.stop_reason};
  };
  Observed serial = run(1);
  ASSERT_EQ(serial.stop, ChaseStop::kFixpoint);
  ASSERT_GT(serial.facts, 200u);
  for (uint32_t threads : {2u, 4u}) {
    Observed parallel = run(threads);
    std::string label = "restricted threads=" + std::to_string(threads);
    EXPECT_EQ(parallel.exact_text, serial.exact_text) << label;
    EXPECT_EQ(parallel.rounds, serial.rounds) << label;
    EXPECT_EQ(parallel.facts, serial.facts) << label;
    EXPECT_EQ(parallel.steps, serial.steps) << label;
    EXPECT_EQ(parallel.stop, serial.stop) << label;
  }
}

// ---------------------------------------------------------------------------
// CLI level: stdout and snapshot files.

/// Drops every " threads=<digits>" token: the status line intentionally
/// echoes the effective lane count, which is the one legitimate
/// difference between runs at different --threads settings.
std::string StripThreadsEcho(std::string text) {
  const std::string needle = " threads=";
  size_t at = 0;
  while ((at = text.find(needle, at)) != std::string::npos) {
    size_t end = at + needle.size();
    while (end < text.size() && std::isdigit(static_cast<unsigned char>(
                                    text[end]))) {
      ++end;
    }
    text.erase(at, end - at);
  }
  return text;
}

class ParallelCliTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/tgdkit_par_" + std::to_string(getpid());
    ASSERT_EQ(::system(("mkdir -p " + dir_).c_str()), 0);
    rules_path_ = dir_ + "/rules.tgd";
    inst_path_ = dir_ + "/input.inst";
    snap_path_ = dir_ + "/ckpt.snap";
    std::ofstream(rules_path_) << kRules;
    std::ofstream(inst_path_) << PathInstanceText(16);
  }

  std::string ReadFileBytes(const std::string& path) {
    std::ifstream in(path, std::ios::binary);
    EXPECT_TRUE(in.good()) << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }

  std::string dir_, rules_path_, inst_path_, snap_path_;
};

TEST_F(ParallelCliTest, StdoutAndSnapshotFileByteIdentical) {
  std::ostringstream out1, err1;
  ASSERT_EQ(RunCli({"chase", rules_path_, inst_path_, "--seed", "5",
                    "--threads", "1", "--checkpoint", snap_path_},
                   out1, err1),
            0)
      << err1.str();
  ASSERT_NE(out1.str().find(" threads=1\n"), std::string::npos) << out1.str();
  std::string snap1 = ReadFileBytes(snap_path_);

  std::remove(snap_path_.c_str());
  std::ostringstream out4, err4;
  ASSERT_EQ(RunCli({"chase", rules_path_, inst_path_, "--seed", "5",
                    "--threads", "4", "--checkpoint", snap_path_},
                   out4, err4),
            0)
      << err4.str();
  ASSERT_NE(out4.str().find(" threads=4\n"), std::string::npos) << out4.str();
  std::string snap4 = ReadFileBytes(snap_path_);

  EXPECT_EQ(StripThreadsEcho(out1.str()), StripThreadsEcho(out4.str()));
  EXPECT_EQ(snap1, snap4) << "final snapshot files differ across --threads";
}

TEST_F(ParallelCliTest, KilledParallelRunResumesToSerialGolden) {
  // Golden: uninterrupted serial run. Child: 4-lane run with periodic
  // checkpointing, SIGKILLed mid-snapshot-write. Resume legs then run at
  // a *different* lane count than the killed leg and must reproduce the
  // golden output byte-for-byte (modulo the threads echo).
  std::ostringstream gold_out, gold_err;
  ASSERT_EQ(RunCli({"chase", rules_path_, inst_path_, "--seed", "5"},
                   gold_out, gold_err),
            0)
      << gold_err.str();
  std::string golden = StripThreadsEcho(gold_out.str());

  bool any_killed = false;
  for (uint64_t crash_at : {2u, 3u}) {
    std::remove(snap_path_.c_str());
    std::remove((snap_path_ + ".tmp").c_str());
    pid_t pid = fork();
    if (pid == 0) {
      setenv("TGDKIT_CRASH_AT", std::to_string(crash_at).c_str(), 1);
      setenv("TGDKIT_CRASH_PHASE", "mid", 1);
      std::ostringstream out, err;
      RunCli({"chase", rules_path_, inst_path_, "--seed", "5", "--threads",
              "4", "--checkpoint", snap_path_, "--checkpoint-every-steps",
              "1"},
             out, err);
      _exit(0);
    }
    int status = 0;
    ASSERT_EQ(waitpid(pid, &status, 0), pid);
    if (!WIFSIGNALED(status)) continue;  // finished before the kill point
    EXPECT_EQ(WTERMSIG(status), SIGKILL);
    any_killed = true;
    std::ifstream snap(snap_path_, std::ios::binary);
    ASSERT_TRUE(snap.good()) << "kill at write " << crash_at
                             << " left no snapshot";
    for (const char* resume_threads : {"1", "4"}) {
      std::ostringstream out, err;
      ASSERT_EQ(RunCli({"chase", "--resume", snap_path_, "--threads",
                        resume_threads},
                       out, err),
                0)
          << err.str();
      EXPECT_EQ(StripThreadsEcho(out.str()), golden)
          << "crash_at=" << crash_at
          << " resume_threads=" << resume_threads;
    }
  }
  ASSERT_TRUE(any_killed)
      << "no child was killed; raise checkpoint frequency or workload";
}

}  // namespace
}  // namespace tgdkit
