// Tests for the Figure 2 decidability criteria, including the family
// inclusions the Hasse diagram draws: full ⊂ weakly-acyclic,
// linear ⊂ guarded ⊂ weakly-guarded, sticky ⊂ sticky-join.
#include <gtest/gtest.h>

#include "classify/criteria.h"
#include "dep/skolem.h"
#include "parse/parser.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

class CriteriaTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;

  SoTgd ParseSo(const std::string& text) {
    Parser p(&ws_.arena, &ws_.vocab);
    auto program = p.ParseDependencies(text);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    if (!program->Sos().empty()) return program->Sos()[0];
    // Skolemize tgds.
    std::vector<Tgd> tgds = program->Tgds();
    return TgdsToSo(&ws_.arena, &ws_.vocab, tgds);
  }
};

TEST_F(CriteriaTest, FullTgdIsFullAndWeaklyAcyclic) {
  SoTgd so = ParseSo("E(x, y) & E(y, z) -> E(x, z) .");
  Figure2Membership m = ClassifyFigure2(ws_.arena, so);
  EXPECT_TRUE(m.full);
  EXPECT_TRUE(m.weakly_acyclic);  // full ⊂ weakly acyclic
  EXPECT_FALSE(m.linear);
  EXPECT_FALSE(m.guarded);  // no atom holds x, y, z together
}

TEST_F(CriteriaTest, ExistentialTgdIsNotFull) {
  SoTgd so = ParseSo("Emp(e, d) -> exists m . Mgr(e, m) .");
  EXPECT_FALSE(IsFull(ws_.arena, so));
  EXPECT_TRUE(IsLinear(ws_.arena, so));
  EXPECT_TRUE(IsGuarded(ws_.arena, so));       // linear ⊂ guarded
  EXPECT_TRUE(IsWeaklyGuarded(ws_.arena, so)); // guarded ⊂ weakly guarded
  EXPECT_TRUE(IsWeaklyAcyclic(ws_.arena, so));
}

TEST_F(CriteriaTest, GuardedButNotLinear) {
  SoTgd so = ParseSo("G(x, y, z) & P(x) -> exists w . R(x, w) .");
  EXPECT_FALSE(IsLinear(ws_.arena, so));
  EXPECT_TRUE(IsGuarded(ws_.arena, so));  // G(x,y,z) guards everything
}

TEST_F(CriteriaTest, UnguardedJoin) {
  SoTgd so = ParseSo("P(x, y) & Q(y, z) -> R(x, z) .");
  EXPECT_FALSE(IsGuarded(ws_.arena, so));
  // No affected positions (no existentials): weakly guarded trivially.
  EXPECT_TRUE(IsWeaklyGuarded(ws_.arena, so));
}

TEST_F(CriteriaTest, WeaklyGuardedButNotGuarded) {
  // Nulls can only reach R's second position; x occurs at unaffected
  // positions, so only y needs guarding.
  SoTgd so = ParseSo(
      "P(x) -> exists y . R(x, y) .\n"
      "R(x, y) & S(x, z) -> T(y) .");
  EXPECT_FALSE(IsGuarded(ws_.arena, so));
  std::set<Position> affected = AffectedPositions(ws_.arena, so);
  RelationId r = ws_.vocab.FindRelation("R");
  RelationId t = ws_.vocab.FindRelation("T");
  EXPECT_TRUE(affected.count({r, 1}));
  EXPECT_FALSE(affected.count({r, 0}));
  EXPECT_TRUE(affected.count({t, 0}));
  EXPECT_TRUE(IsWeaklyGuarded(ws_.arena, so));
}

TEST_F(CriteriaTest, NotWeaklyGuarded) {
  // Both x and y can carry nulls and are joined without a common guard.
  SoTgd so = ParseSo(
      "P(x) -> exists y, z . R(y, z) .\n"
      "R(x, u) & R(u, y) -> R(x, y) .");
  EXPECT_FALSE(IsGuarded(ws_.arena, so));
  EXPECT_FALSE(IsWeaklyGuarded(ws_.arena, so));
}

TEST_F(CriteriaTest, WeaklyAcyclicChain) {
  // Nulls flow P -> R but never back: weakly acyclic.
  SoTgd so = ParseSo(
      "P(x) -> exists y . R(x, y) .\n"
      "R(x, y) -> S(y) .");
  EXPECT_TRUE(IsWeaklyAcyclic(ws_.arena, so));
}

TEST_F(CriteriaTest, SelfFeedingExistentialIsNotWeaklyAcyclic) {
  // The classic P(x) -> exists y . P(y)-style cycle through a special edge.
  SoTgd so = ParseSo("P(x) -> exists y . P(y) & R(x, y) .");
  EXPECT_FALSE(IsWeaklyAcyclic(ws_.arena, so));
}

TEST_F(CriteriaTest, RegularCycleAloneIsWeaklyAcyclic) {
  // Transitive closure has regular cycles only.
  SoTgd so = ParseSo("E(x, y) & E(y, z) -> E(x, z) .");
  EXPECT_TRUE(IsWeaklyAcyclic(ws_.arena, so));
}

TEST_F(CriteriaTest, MixedCycleThroughSpecialEdge) {
  SoTgd so = ParseSo(
      "R(x, y) -> exists z . R(y, z) .");
  EXPECT_FALSE(IsWeaklyAcyclic(ws_.arena, so));
}

TEST_F(CriteriaTest, StickySingleRule) {
  // x is joined over and kept in the (only) head atom: sticky.
  SoTgd so = ParseSo("P(x, y) & Q(x, z) -> R(x, y, z) .");
  EXPECT_TRUE(IsSticky(ws_.arena, so));
}

TEST_F(CriteriaTest, NonStickyDroppedJoinVariable) {
  // The join variable y is dropped from the head: not sticky.
  SoTgd so = ParseSo("P(x, y) & Q(y, z) -> R(x, z) .");
  EXPECT_FALSE(IsSticky(ws_.arena, so));
  EXPECT_FALSE(IsStickyJoin(ws_.arena, so));
}

TEST_F(CriteriaTest, StickinessPropagatesThroughRules) {
  // y survives the first rule's head, but the second rule drops the
  // position it lands in, marking it backwards: the join on y violates
  // stickiness.
  SoTgd so = ParseSo(
      "P(x, y) & Q(y, z) -> R(x, y, z) .\n"
      "R(x, y, z) -> S(x, z) .");
  EXPECT_FALSE(IsSticky(ws_.arena, so));
  // The two marked occurrences of y sit in distinct body atoms, so
  // sticky-join fails too.
  EXPECT_FALSE(IsStickyJoin(ws_.arena, so));
}

TEST_F(CriteriaTest, MarkingIsPerRuleNotPerPosition) {
  // Rule 1 drops x, marking position R.0. Rule 2's u occurs at R2.0 and
  // R2.1 — different relation — and rule 2 keeps u, so u is unmarked and
  // the program is sticky. Same story when u sits at the marked R.0
  // itself: marking is a property of (rule, variable), not of positions,
  // so a different rule's variable at a marked position stays clean.
  SoTgd so = ParseSo(
      "R(x, y) -> S(y) .\n"
      "R(u, u) -> T(u, u) .");
  EXPECT_TRUE(IsSticky(ws_.arena, so));
  EXPECT_TRUE(IsStickyJoin(ws_.arena, so));
}

TEST_F(CriteriaTest, StickyJoinToleratesWithinAtomRepeatsOnly) {
  // The marked variable x repeats within ONE atom (a selection): not
  // sticky, but sticky-join — and this time the rule is not linear, so
  // sticky-join is doing real work beyond the linear ⊂ SJ inclusion.
  SoTgd within = ParseSo("P(x, x, y) & Q(y, z) -> R(y, z) .");
  EXPECT_FALSE(IsLinear(ws_.arena, within));
  EXPECT_FALSE(IsSticky(ws_.arena, within));
  EXPECT_TRUE(IsStickyJoin(ws_.arena, within));
  // A marked variable spanning two atoms breaks sticky-join.
  SoTgd across = ParseSo("P2(x, y) & Q2(y, z) -> R2(x, z) .");
  EXPECT_FALSE(IsSticky(ws_.arena, across));
  EXPECT_FALSE(IsStickyJoin(ws_.arena, across));
}

TEST_F(CriteriaTest, StickyWithFunctionalTerms) {
  // The join variable x survives at a top-level head position, so the
  // Skolem term alongside it does not matter.
  SoTgd so = ParseSo(
      "so exists f { P(x, y) & Q(x, z) -> R(x, f(x), y, z) } .");
  EXPECT_TRUE(IsSticky(ws_.arena, so));
  // But a join variable surviving ONLY inside a Skolem term counts as
  // dropped (it sits at an existential's position in the original tgd).
  SoTgd hidden = ParseSo(
      "so exists g { P2(x, y) & Q2(x, z) -> R2(g(x), y, z) } .");
  EXPECT_FALSE(IsSticky(ws_.arena, hidden));
}

TEST_F(CriteriaTest, LinearIsStickyJoin) {
  // Linear but not sticky: the repeated variable in the head is fine, but
  // dropping a variable marks it; with single-atom bodies there is no
  // join, so sticky holds trivially... use a genuinely non-sticky linear
  // rule: a body variable occurring twice in ONE atom.
  SoTgd so = ParseSo("P(x, x, y) -> R(y) .");
  EXPECT_TRUE(IsLinear(ws_.arena, so));
  EXPECT_FALSE(IsSticky(ws_.arena, so));  // marked x occurs twice
  EXPECT_TRUE(IsStickyJoin(ws_.arena, so));  // linear ⊂ sticky-join
}

TEST_F(CriteriaTest, PaperFigure2Inclusions) {
  // Spot-check the inclusion edges on a mixed corpus.
  std::vector<std::string> corpus{
      "E(x, y) & E(y, z) -> E(x, z) .",
      "Emp(e, d) -> exists m . Mgr(e, m) .",
      "P(x, y) & Q(x, z) -> R(x, y, z) .",
      "G(x, y) & G1(x) -> exists w . R1(x, y, w) .",
  };
  for (const std::string& text : corpus) {
    SoTgd so = ParseSo(text);
    Figure2Membership m = ClassifyFigure2(ws_.arena, so);
    if (m.full) {
      EXPECT_TRUE(m.weakly_acyclic) << text;
    }
    if (m.linear) {
      EXPECT_TRUE(m.guarded) << text;
    }
    if (m.guarded) {
      EXPECT_TRUE(m.weakly_guarded) << text;
    }
    if (m.sticky) {
      EXPECT_TRUE(m.sticky_join) << text;
    }
  }
}

TEST_F(CriteriaTest, MembershipToString) {
  SoTgd so = ParseSo("Emp(e, d) -> exists m . Mgr(e, m) .");
  Figure2Membership m = ClassifyFigure2(ws_.arena, so);
  EXPECT_EQ(ToString(m),
            "weakly-acyclic,linear,guarded,weakly-guarded,sticky,sticky-join,"
            "triangularly-guarded");
}

TEST_F(CriteriaTest, TriangularGuardednessSubsumptions) {
  // Each of the three maximal classic classes is contained in TG:
  // weakly acyclic (full transitivity), weakly guarded (a guarded loop),
  // sticky-join (a cross-join with everything kept in the head).
  SoTgd wa = ParseSo("E(x, y) & E(y, z) -> E(x, z) .");
  EXPECT_TRUE(IsWeaklyAcyclic(ws_.arena, wa));
  EXPECT_TRUE(IsTriangularlyGuarded(ws_.arena, wa));
  SoTgd wg = ParseSo("G(x, y) -> exists z . G(y, z) .");
  EXPECT_TRUE(IsWeaklyGuarded(ws_.arena, wg));
  EXPECT_FALSE(IsWeaklyAcyclic(ws_.arena, wg));
  EXPECT_TRUE(IsTriangularlyGuarded(ws_.arena, wg));
  SoTgd sj = ParseSo(
      "A(x) -> exists u . B(x, u) .\n"
      "B(x, u) & C(u, y) -> B(y, u) .");
  EXPECT_TRUE(IsStickyJoin(ws_.arena, sj));
  EXPECT_TRUE(IsTriangularlyGuarded(ws_.arena, sj));
}

TEST_F(CriteriaTest, TriangularlyGuardedBeyondEveryClassicClass) {
  // The frontier program: the only triangular component {ga.0, ga.1} is
  // guarded by its single rule's body atom, while the link-join rule —
  // which breaks weakly-guarded, sticky and sticky-join — never touches
  // the component.
  SoTgd so = ParseSo(
      "frontier: so exists fv, fp, fq {"
      " ga(x, y) -> ga(y, fv(x, y)) ;"
      " hub(x) -> link(fp(x), fq(x)) ;"
      " link(x, u) & link(u, y) -> out(x, y) } .");
  Figure2Membership m = ClassifyFigure2(ws_.arena, so);
  EXPECT_FALSE(m.weakly_acyclic);
  EXPECT_FALSE(m.weakly_guarded);
  EXPECT_FALSE(m.sticky_join);
  EXPECT_TRUE(m.triangularly_guarded);
  EXPECT_EQ(ToString(m), "triangularly-guarded");
}

TEST_F(CriteriaTest, NotTriangularlyGuarded) {
  // The component {E.0, E.1} is neither guarded (x, y, z are dangerous,
  // no covering atom) nor sticky (y is marked and joins across atoms).
  SoTgd so = ParseSo("E(x, y) & E(y, z) -> exists w . E(z, w) .");
  EXPECT_FALSE(IsTriangularlyGuarded(ws_.arena, so));
}

TEST_F(CriteriaTest, ChaseComplexityTiers) {
  EXPECT_EQ(ChaseComplexityTier(
                ws_.arena, ParseSo("Emp(e, d) -> exists m . Mgr(e, m) .")),
            ComplexityTier::kPolynomial);
  EXPECT_EQ(
      ChaseComplexityTier(ws_.arena,
                          ParseSo("e(x, y) -> exists z . e(y, z) .")),
      ComplexityTier::kExponential);
  EXPECT_EQ(ChaseComplexityTier(
                ws_.arena, ParseSo("p(x, y) -> exists z . p(y, z) .\n"
                                   "p(x, y) -> q(x, y) .\n"
                                   "q(x, y) -> exists z . q(y, z) .")),
            ComplexityTier::kNonElementary);
  EXPECT_STREQ(ComplexityTierName(ComplexityTier::kPolynomial),
               "polynomial");
  EXPECT_STREQ(ComplexityTierName(ComplexityTier::kNonElementary),
               "non-elementary");
}

TEST_F(CriteriaTest, AffectedPositionsPropagate) {
  SoTgd so = ParseSo(
      "P(x) -> exists y . R(y) .\n"
      "R(x) -> S(x) .\n"
      "S(x) & P(x) -> T(x) .");
  std::set<Position> affected = AffectedPositions(ws_.arena, so);
  RelationId r = ws_.vocab.FindRelation("R");
  RelationId s = ws_.vocab.FindRelation("S");
  RelationId t = ws_.vocab.FindRelation("T");
  EXPECT_TRUE(affected.count({r, 0}));
  EXPECT_TRUE(affected.count({s, 0}));
  // x in the third rule also occurs at P's position 0 (unaffected), so
  // T(0) stays clean.
  EXPECT_FALSE(affected.count({t, 0}));
}

}  // namespace
}  // namespace tgdkit
