#include <gtest/gtest.h>

#include "base/rng.h"
#include "dep/skolem.h"
#include "query/query.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

class QueryTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;
};

TEST_F(QueryTest, EvaluateReturnsDistinctTuples) {
  Instance inst(&ws_.vocab);
  inst.AddFact(ws_.Fc("R", {"a", "b"}));
  inst.AddFact(ws_.Fc("R", {"a", "c"}));
  ConjunctiveQuery q;
  q.atoms = {ws_.A("R", {ws_.V("x"), ws_.V("y")})};
  q.free_vars = {ws_.Vid("x")};
  auto answers = Evaluate(ws_.arena, inst, q);
  ASSERT_EQ(answers.size(), 1u);  // projection deduplicates
  EXPECT_EQ(answers[0][0], ws_.Cv("a"));
}

TEST_F(QueryTest, BooleanQuery) {
  Instance inst(&ws_.vocab);
  inst.AddFact(ws_.Fc("R", {"a", "b"}));
  ConjunctiveQuery q;
  q.atoms = {ws_.A("R", {ws_.V("x"), ws_.V("y")})};
  EXPECT_TRUE(q.IsBoolean());
  EXPECT_TRUE(EvaluateBoolean(ws_.arena, inst, q));
  ConjunctiveQuery q2;
  q2.atoms = {ws_.A("R", {ws_.V("x"), ws_.V("x")})};
  EXPECT_FALSE(EvaluateBoolean(ws_.arena, inst, q2));
}

TEST_F(QueryTest, JoinQueryAnswerOrderFollowsFreeVars) {
  Instance inst(&ws_.vocab);
  inst.AddFact(ws_.Fc("R", {"a", "b"}));
  inst.AddFact(ws_.Fc("S", {"b", "c"}));
  ConjunctiveQuery q;
  q.atoms = {ws_.A("R", {ws_.V("x"), ws_.V("y")}),
             ws_.A("S", {ws_.V("y"), ws_.V("z")})};
  q.free_vars = {ws_.Vid("z"), ws_.Vid("x")};
  auto answers = Evaluate(ws_.arena, inst, q);
  ASSERT_EQ(answers.size(), 1u);
  EXPECT_EQ(answers[0][0], ws_.Cv("c"));
  EXPECT_EQ(answers[0][1], ws_.Cv("a"));
}

TEST_F(QueryTest, CertainAnswersFilterNulls) {
  // Emp(e, d) -> exists m . Mgr(e, m): "who has a manager" is certain for
  // alice, but "who is a manager" has no certain (constant) answers.
  Tgd tgd;
  tgd.body = {ws_.A("Emp", {ws_.V("e"), ws_.V("d")})};
  tgd.head = {ws_.A("Mgr", {ws_.V("e"), ws_.V("m")})};
  tgd.exist_vars = {ws_.Vid("m")};
  SoTgd so = TgdToSo(&ws_.arena, &ws_.vocab, tgd);

  Instance input(&ws_.vocab);
  input.AddFact(ws_.Fc("Emp", {"alice", "cs"}));

  ConjunctiveQuery who_has_mgr;
  who_has_mgr.atoms = {ws_.A("Mgr", {ws_.V("e"), ws_.V("m")})};
  who_has_mgr.free_vars = {ws_.Vid("e")};
  CertainAnswers a =
      ComputeCertainAnswers(&ws_.arena, &ws_.vocab, so, input, who_has_mgr);
  EXPECT_TRUE(a.Complete());
  ASSERT_EQ(a.answers.size(), 1u);
  EXPECT_EQ(a.answers[0][0], ws_.Cv("alice"));

  ConjunctiveQuery who_is_mgr;
  who_is_mgr.atoms = {ws_.A("Mgr", {ws_.V("e"), ws_.V("m")})};
  who_is_mgr.free_vars = {ws_.Vid("m")};
  CertainAnswers b =
      ComputeCertainAnswers(&ws_.arena, &ws_.vocab, so, input, who_is_mgr);
  EXPECT_TRUE(b.answers.empty());  // the manager is a labeled null
}

TEST_F(QueryTest, CertainAnswersThroughRecursion) {
  Tgd trans;
  trans.body = {ws_.A("E", {ws_.V("x"), ws_.V("y")}),
                ws_.A("E", {ws_.V("y"), ws_.V("z")})};
  trans.head = {ws_.A("E", {ws_.V("x"), ws_.V("z")})};
  SoTgd so = TgdToSo(&ws_.arena, &ws_.vocab, trans);

  Instance input(&ws_.vocab);
  input.AddFact(ws_.Fc("E", {"a", "b"}));
  input.AddFact(ws_.Fc("E", {"b", "c"}));
  input.AddFact(ws_.Fc("E", {"c", "d"}));

  ConjunctiveQuery reach;
  reach.atoms = {ws_.A("E", {ws_.C("a"), ws_.V("t")})};
  reach.free_vars = {ws_.Vid("t")};
  CertainAnswers a =
      ComputeCertainAnswers(&ws_.arena, &ws_.vocab, so, input, reach);
  EXPECT_TRUE(a.Complete());
  EXPECT_EQ(a.answers.size(), 3u);  // b, c, d
}

TEST_F(QueryTest, CertainlyHoldsStopsEarly) {
  // Non-terminating rules, but the goal appears in round one: the
  // semi-decision procedure answers true without exhausting the budget.
  FunctionId f = ws_.vocab.InternFunction("fq", 1);
  SoTgd so;
  so.functions = {f};
  SoPart grow;
  grow.body = {ws_.A("P", {ws_.V("x")})};
  grow.head = {ws_.A("P", {ws_.F("fq", {ws_.V("x")})})};
  SoPart mark;
  mark.body = {ws_.A("P", {ws_.V("x")})};
  mark.head = {ws_.A("Goal", {ws_.C("yes")})};
  so.parts = {grow, mark};

  Instance input(&ws_.vocab);
  input.AddFact(ws_.Fc("P", {"zero"}));

  Fact goal = ws_.Fc("Goal", {"yes"});
  ChaseLimits limits;
  limits.max_term_depth = 1000000;  // would run a very long time
  limits.max_rounds = 1000000;
  EXPECT_TRUE(
      CertainlyHolds(&ws_.arena, &ws_.vocab, so, input, goal, limits));
}

TEST_F(QueryTest, CertainlyHoldsFalseWithinBudget) {
  FunctionId f = ws_.vocab.InternFunction("fq2", 1);
  SoTgd so;
  so.functions = {f};
  SoPart grow;
  grow.body = {ws_.A("P", {ws_.V("x")})};
  grow.head = {ws_.A("P", {ws_.F("fq2", {ws_.V("x")})})};
  so.parts = {grow};
  Instance input(&ws_.vocab);
  input.AddFact(ws_.Fc("P", {"zero"}));
  Fact goal = ws_.Fc("Goal2", {"yes"});
  ws_.vocab.InternRelation("Goal2", 1);
  ChaseLimits limits;
  limits.max_term_depth = 20;
  EXPECT_FALSE(
      CertainlyHolds(&ws_.arena, &ws_.vocab, so, input, goal, limits));
}

TEST_F(QueryTest, MinimizeIsIdempotentOnRandomQueries) {
  Rng rng(135791);
  RelationId r = ws_.vocab.InternRelation("MR", 2);
  RelationId s = ws_.vocab.InternRelation("MS", 2);
  for (int trial = 0; trial < 15; ++trial) {
    std::vector<VariableId> vars{ws_.Vid("m0"), ws_.Vid("m1"), ws_.Vid("m2"),
                                 ws_.Vid("m3")};
    ConjunctiveQuery q;
    uint32_t atoms = 2 + static_cast<uint32_t>(rng.Below(3));
    for (uint32_t i = 0; i < atoms; ++i) {
      Atom atom;
      atom.relation = rng.Chance(50) ? r : s;
      atom.args = {ws_.arena.MakeVariable(rng.Pick(vars)),
                   ws_.arena.MakeVariable(rng.Pick(vars))};
      q.atoms.push_back(std::move(atom));
    }
    q.free_vars = {ws_.arena.symbol(q.atoms[0].args[0])};
    ConjunctiveQuery once = MinimizeQuery(&ws_.arena, &ws_.vocab, q);
    ConjunctiveQuery twice = MinimizeQuery(&ws_.arena, &ws_.vocab, once);
    EXPECT_EQ(once.atoms.size(), twice.atoms.size()) << "trial " << trial;
    EXPECT_LE(once.atoms.size(), q.atoms.size());
    EXPECT_TRUE(QueryEquivalent(&ws_.arena, &ws_.vocab, q, once))
        << "trial " << trial;
  }
}

TEST_F(QueryTest, AtomicQueryWithConstants) {
  Instance inst(&ws_.vocab);
  inst.AddFact(ws_.Fc("R", {"a", "b"}));
  ConjunctiveQuery q;
  q.atoms = {ws_.A("R", {ws_.C("a"), ws_.C("b")})};
  EXPECT_TRUE(q.IsAtomic());
  EXPECT_TRUE(EvaluateBoolean(ws_.arena, inst, q));
}

}  // namespace
}  // namespace tgdkit
