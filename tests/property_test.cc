// Property-based tests over generated corpora: parameterized sweeps
// checking the structural invariants the paper's diagrams assert
// (Figure 1 inclusion monotonicity, Figure 2 family inclusions,
// Algorithm 1/2 equivalences, chase/core invariants, parser round-trips).
#include <gtest/gtest.h>

#include "base/rng.h"
#include "chase/chase.h"
#include "classify/criteria.h"
#include "dep/skolem.h"
#include "dep/syntactic.h"
#include "gen/generators.h"
#include "homo/core.h"
#include "mc/model_check.h"
#include "parse/parser.h"
#include "tests/test_util.h"
#include "transform/nested.h"

namespace tgdkit {
namespace {

class PropertyTest : public ::testing::TestWithParam<uint64_t> {};

INSTANTIATE_TEST_SUITE_P(Seeds, PropertyTest,
                         ::testing::Values(11, 23, 37, 59, 71, 97, 131, 173,
                                           211, 257));

TEST_P(PropertyTest, TgdSkolemizationIsAlwaysFigure1Bottom) {
  TestWorkspace ws;
  Rng rng(GetParam());
  std::vector<RelationId> relations =
      GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
  for (int i = 0; i < 20; ++i) {
    Tgd tgd = GenerateTgd(&ws.arena, &ws.vocab, &rng, relations, TgdConfig{});
    ASSERT_TRUE(ValidateTgd(ws.arena, tgd).ok());
    SoTgd so = TgdToSo(&ws.arena, &ws.vocab, tgd);
    ASSERT_TRUE(ValidateSoTgd(ws.arena, so).ok());
    Figure1Membership m = ClassifyFigure1(ws.arena, so);
    // A tgd lies at the bottom of Figure 1: member of every class.
    EXPECT_TRUE(m.tgd);
    EXPECT_TRUE(m.standard_henkin);
    EXPECT_TRUE(m.henkin);
    EXPECT_TRUE(m.normalized_nested_shape);
    EXPECT_TRUE(m.plain_so);
  }
}

TEST_P(PropertyTest, Figure1EdgesAreMonotone) {
  TestWorkspace ws;
  Rng rng(GetParam() * 3 + 1);
  std::vector<RelationId> relations =
      GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
  for (int i = 0; i < 20; ++i) {
    HenkinTgd henkin =
        GenerateHenkinTgd(&ws.arena, &ws.vocab, &rng, relations, TgdConfig{});
    ASSERT_TRUE(ValidateHenkinTgd(ws.arena, henkin).ok());
    SoTgd so = HenkinToSo(&ws.arena, &ws.vocab, henkin);
    Figure1Membership m = ClassifyFigure1(ws.arena, so);
    // Every Henkin tgd Skolemization must be recognized as Henkin, and the
    // diagram's edges must be monotone.
    EXPECT_TRUE(m.henkin);
    if (m.tgd) {
      EXPECT_TRUE(m.standard_henkin);
    }
    if (m.standard_henkin) {
      EXPECT_TRUE(m.henkin);
    }
    if (m.henkin || m.normalized_nested_shape) {
      EXPECT_TRUE(m.plain_so);
    }
    // Semantic agreement: standardness of the quantifier matches the
    // syntactic recognizer on the Skolemized form.
    EXPECT_EQ(henkin.IsStandard(), m.standard_henkin)
        << ToString(ws.arena, ws.vocab, henkin);
  }
}

TEST_P(PropertyTest, NestedNormalizationInvariants) {
  TestWorkspace ws;
  Rng rng(GetParam() * 5 + 2);
  std::vector<RelationId> relations =
      GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
  for (int i = 0; i < 10; ++i) {
    NestedConfig config;
    config.depth = 1 + static_cast<uint32_t>(rng.Below(3));
    NestedTgd nested =
        GenerateNestedTgd(&ws.arena, &ws.vocab, &rng, relations, config);
    ASSERT_TRUE(ValidateNestedTgd(ws.arena, nested).ok());
    SoTgd so = NestedToSo(&ws.arena, &ws.vocab, nested);
    ASSERT_TRUE(ValidateSoTgd(ws.arena, so).ok());
    // Algorithm 1: one part per nested part, plain, hierarchical shape.
    EXPECT_EQ(so.parts.size(), nested.NumParts());
    EXPECT_TRUE(so.IsPlain(ws.arena));
    EXPECT_TRUE(IsHierarchicalSo(ws.arena, so));
  }
}

TEST_P(PropertyTest, NestedToHenkinProducesValidTreeHenkins) {
  TestWorkspace ws;
  Rng rng(GetParam() * 7 + 3);
  std::vector<RelationId> relations =
      GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
  for (int i = 0; i < 6; ++i) {
    NestedConfig config;
    config.depth = 1 + static_cast<uint32_t>(rng.Below(3));
    NestedTgd nested =
        GenerateNestedTgd(&ws.arena, &ws.vocab, &rng, relations, config);
    bool overflow = false;
    std::vector<HenkinTgd> henkins = NestedToHenkin(
        &ws.arena, &ws.vocab, nested, /*max_rules=*/4096, &overflow);
    if (overflow) continue;
    EXPECT_EQ(henkins.size(), NestedToHenkinRuleCount(nested));
    for (const HenkinTgd& henkin : henkins) {
      EXPECT_TRUE(ValidateHenkinTgd(ws.arena, henkin).ok())
          << ToString(ws.arena, ws.vocab, henkin);
      EXPECT_TRUE(henkin.IsTree())
          << ToString(ws.arena, ws.vocab, henkin);
    }
  }
}

TEST_P(PropertyTest, AlgorithmsAgreeOnRandomInstances) {
  // Theorem 4.3 equivalence, sampled: τ ≡ nested-to-so(τ) ≡
  // nested-to-henkin(τ) on random instances.
  TestWorkspace ws;
  Rng rng(GetParam() * 11 + 4);
  SchemaConfig schema_config;
  schema_config.num_relations = 4;
  schema_config.max_arity = 2;
  std::vector<RelationId> relations =
      GenerateSchema(&ws.vocab, &rng, schema_config);
  NestedConfig config;
  config.depth = 2;
  config.max_children = 1;
  NestedTgd nested =
      GenerateNestedTgd(&ws.arena, &ws.vocab, &rng, relations, config);
  SoTgd so = NestedToSo(&ws.arena, &ws.vocab, nested);
  bool overflow = false;
  std::vector<HenkinTgd> henkins =
      NestedToHenkin(&ws.arena, &ws.vocab, nested, 4096, &overflow);
  ASSERT_FALSE(overflow);
  for (int trial = 0; trial < 8; ++trial) {
    Instance inst(&ws.vocab);
    GenerateInstance(&ws.vocab, &rng, relations, /*num_facts=*/10,
                     /*domain_size=*/3, /*num_nulls=*/1, &inst);
    bool nested_ok = CheckNested(ws.arena, inst, nested);
    bool so_ok = CheckSo(ws.arena, inst, so).satisfied;
    McResult henkin_result =
        CheckHenkins(&ws.arena, &ws.vocab, inst, henkins);
    ASSERT_FALSE(henkin_result.budget_exceeded);
    EXPECT_EQ(nested_ok, so_ok) << "trial " << trial;
    EXPECT_EQ(nested_ok, henkin_result.satisfied) << "trial " << trial;
  }
}

TEST_P(PropertyTest, ChaseResultModelsItsRules) {
  // Soundness of the chase: a terminating chase result satisfies the
  // rules it was chased with (it is a model).
  TestWorkspace ws;
  Rng rng(GetParam() * 13 + 5);
  std::vector<RelationId> relations =
      GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
  std::vector<Tgd> tgds;
  for (int i = 0; i < 3; ++i) {
    tgds.push_back(
        GenerateTgd(&ws.arena, &ws.vocab, &rng, relations, TgdConfig{}));
  }
  SoTgd so = TgdsToSo(&ws.arena, &ws.vocab, tgds);
  Instance input(&ws.vocab);
  GenerateInstance(&ws.vocab, &rng, relations, 12, 4, 0, &input);
  ChaseLimits limits;
  limits.max_term_depth = 6;
  limits.max_facts = 20000;
  ChaseResult result = Chase(&ws.arena, &ws.vocab, so, input, limits);
  if (!result.Terminated()) return;  // budget runs prove nothing
  EXPECT_TRUE(CheckSo(ws.arena, result.instance, so).satisfied);
  EXPECT_TRUE(CheckTgds(ws.arena, result.instance, tgds));
}

TEST_P(PropertyTest, RestrictedAndSkolemChasesHomEquivalent) {
  TestWorkspace ws;
  Rng rng(GetParam() * 17 + 6);
  SchemaConfig schema_config;
  schema_config.num_relations = 4;
  std::vector<RelationId> relations =
      GenerateSchema(&ws.vocab, &rng, schema_config);
  std::vector<Tgd> tgds;
  for (int i = 0; i < 2; ++i) {
    tgds.push_back(
        GenerateTgd(&ws.arena, &ws.vocab, &rng, relations, TgdConfig{}));
  }
  SoTgd so = TgdsToSo(&ws.arena, &ws.vocab, tgds);
  // Only compare on weakly acyclic sets (both chases terminate).
  if (!IsWeaklyAcyclic(ws.arena, so)) return;
  Instance input(&ws.vocab);
  GenerateInstance(&ws.vocab, &rng, relations, 8, 3, 0, &input);
  ChaseLimits limits;
  limits.max_facts = 50000;
  ChaseResult skolem = Chase(&ws.arena, &ws.vocab, so, input, limits);
  ChaseResult restricted =
      RestrictedChaseTgds(&ws.arena, &ws.vocab, tgds, input, limits);
  if (!skolem.Terminated() || !restricted.Terminated()) return;
  EXPECT_TRUE(HomomorphicallyEquivalent(&ws.arena, &ws.vocab,
                                        skolem.instance,
                                        restricted.instance));
}

TEST_P(PropertyTest, CoreIsMinimalAndEquivalent) {
  TestWorkspace ws;
  Rng rng(GetParam() * 19 + 7);
  SchemaConfig schema_config;
  schema_config.num_relations = 3;
  schema_config.max_arity = 2;
  std::vector<RelationId> relations =
      GenerateSchema(&ws.vocab, &rng, schema_config);
  Instance inst(&ws.vocab);
  GenerateInstance(&ws.vocab, &rng, relations, 10, 2, 3, &inst);
  Instance core = ComputeCore(&ws.arena, &ws.vocab, inst);
  EXPECT_LE(core.NumFacts(), inst.NumFacts());
  EXPECT_TRUE(HomomorphicallyEquivalent(&ws.arena, &ws.vocab, inst, core));
  // Idempotence: the core of a core is itself (same size).
  Instance core2 = ComputeCore(&ws.arena, &ws.vocab, core);
  EXPECT_EQ(core2.NumFacts(), core.NumFacts());
}

TEST_P(PropertyTest, WeaklyAcyclicChaseTerminates) {
  // The Figure 2 guarantee: weak acyclicity implies chase termination,
  // even for SO tgds (the paper's Section 5 observation).
  TestWorkspace ws;
  Rng rng(GetParam() * 23 + 8);
  std::vector<RelationId> relations =
      GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
  std::vector<Tgd> tgds;
  for (int i = 0; i < 3; ++i) {
    tgds.push_back(
        GenerateTgd(&ws.arena, &ws.vocab, &rng, relations, TgdConfig{}));
  }
  SoTgd so = TgdsToSo(&ws.arena, &ws.vocab, tgds);
  if (!IsWeaklyAcyclic(ws.arena, so)) return;
  Instance input(&ws.vocab);
  GenerateInstance(&ws.vocab, &rng, relations, 10, 3, 0, &input);
  ChaseLimits limits;
  limits.max_rounds = 100000;
  limits.max_facts = 500000;
  limits.max_term_depth = 10000;
  ChaseResult result = Chase(&ws.arena, &ws.vocab, so, input, limits);
  EXPECT_TRUE(result.Terminated());
}

TEST_P(PropertyTest, ParserRoundTripsGeneratedTgds) {
  TestWorkspace ws;
  Rng rng(GetParam() * 29 + 9);
  std::vector<RelationId> relations =
      GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
  Parser parser(&ws.arena, &ws.vocab);
  for (int i = 0; i < 10; ++i) {
    Tgd tgd = GenerateTgd(&ws.arena, &ws.vocab, &rng, relations, TgdConfig{});
    std::string printed = ToString(ws.arena, ws.vocab, tgd) + " .";
    auto reparsed = parser.ParseDependencies(printed);
    ASSERT_TRUE(reparsed.ok())
        << printed << "\n" << reparsed.status().ToString();
    EXPECT_EQ(ToString(ws.arena, ws.vocab, reparsed->dependencies[0].tgd),
              ToString(ws.arena, ws.vocab, tgd));
  }
}

TEST_P(PropertyTest, GeneratedSoTgdsClassifyAndCheckConsistently) {
  // Random plain SO tgds with functions SHARED across parts: they must
  // validate, classify as plain SO (and usually NOT as Henkin), and the
  // chase of any terminating run must satisfy them under CheckSo.
  TestWorkspace ws;
  Rng rng(GetParam() * 41 + 12);
  SchemaConfig schema_config;
  schema_config.num_relations = 4;
  schema_config.max_arity = 2;
  std::vector<RelationId> relations =
      GenerateSchema(&ws.vocab, &rng, schema_config);
  for (int i = 0; i < 6; ++i) {
    SoTgd so = GenerateSoTgd(&ws.arena, &ws.vocab, &rng, relations,
                             /*num_parts=*/3, /*num_functions=*/2);
    ASSERT_TRUE(ValidateSoTgd(ws.arena, so).ok());
    EXPECT_TRUE(so.IsPlain(ws.arena));
    Figure1Membership m = ClassifyFigure1(ws.arena, so);
    EXPECT_TRUE(m.plain_so);
    Instance input(&ws.vocab);
    GenerateInstance(&ws.vocab, &rng, relations, 8, 3, 0, &input);
    ChaseLimits limits;
    limits.max_term_depth = 5;
    limits.max_facts = 20000;
    ChaseResult result = Chase(&ws.arena, &ws.vocab, so, input, limits);
    if (!result.Terminated()) continue;
    McResult check = CheckSo(ws.arena, result.instance, so);
    if (check.budget_exceeded) continue;
    EXPECT_TRUE(check.satisfied) << ToString(ws.arena, ws.vocab, so);
  }
}

TEST_P(PropertyTest, Figure2InclusionEdgesOnGeneratedCorpus) {
  TestWorkspace ws;
  Rng rng(GetParam() * 31 + 10);
  std::vector<RelationId> relations =
      GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
  for (int i = 0; i < 20; ++i) {
    Tgd tgd = GenerateTgd(&ws.arena, &ws.vocab, &rng, relations, TgdConfig{});
    SoTgd so = TgdToSo(&ws.arena, &ws.vocab, tgd);
    Figure2Membership m = ClassifyFigure2(ws.arena, so);
    if (m.full) {
      EXPECT_TRUE(m.weakly_acyclic);
    }
    if (m.linear) {
      EXPECT_TRUE(m.guarded);
    }
    if (m.guarded) {
      EXPECT_TRUE(m.weakly_guarded);
    }
    if (m.sticky || m.linear) {
      EXPECT_TRUE(m.sticky_join);
    }
  }
}

}  // namespace
}  // namespace tgdkit
