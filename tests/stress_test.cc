// Stress and consistency tests for the low-level substrates: deep and
// wide term interning, index-vs-scan agreement on instances, large chase
// runs, and arena sharing across many structures.
#include <gtest/gtest.h>

#include <set>

#include "base/rng.h"
#include "chase/chase.h"
#include "dep/skolem.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

TEST(StressTest, DeepTermChainsIntern) {
  TestWorkspace ws;
  FunctionId f = ws.vocab.InternFunction("deep", 1);
  TermId t = ws.C("base");
  std::vector<TermId> chain{t};
  for (int i = 0; i < 2000; ++i) {
    t = ws.arena.MakeFunction(f, std::vector<TermId>{t});
    chain.push_back(t);
  }
  EXPECT_EQ(ws.arena.Depth(t), 2000u);
  EXPECT_EQ(ws.arena.Size(t), 2001u);
  // Re-interning the same chain yields identical ids (full sharing).
  TermId t2 = ws.C("base");
  for (int i = 0; i < 2000; ++i) {
    t2 = ws.arena.MakeFunction(f, std::vector<TermId>{t2});
    EXPECT_EQ(t2, chain[i + 1]);
  }
}

TEST(StressTest, WideInterningIsUnique) {
  TestWorkspace ws;
  FunctionId f = ws.vocab.InternFunction("pair", 2);
  std::set<TermId> distinct;
  std::vector<TermId> leaves;
  for (int i = 0; i < 40; ++i) {
    leaves.push_back(ws.C("c" + std::to_string(i)));
  }
  for (TermId a : leaves) {
    for (TermId b : leaves) {
      distinct.insert(ws.arena.MakeFunction(f, std::vector<TermId>{a, b}));
    }
  }
  EXPECT_EQ(distinct.size(), 1600u);
  // And the arena grew by exactly that many function nodes.
  for (TermId a : leaves) {
    for (TermId b : leaves) {
      TermId again = ws.arena.MakeFunction(f, std::vector<TermId>{a, b});
      EXPECT_TRUE(distinct.count(again));
    }
  }
}

TEST(StressTest, PositionIndexAgreesWithScan) {
  TestWorkspace ws;
  Rng rng(8642);
  RelationId r = ws.vocab.InternRelation("R", 3);
  Instance inst(&ws.vocab);
  for (int i = 0; i < 500; ++i) {
    std::vector<Value> args{Value::Constant(uint32_t(rng.Below(13))),
                            Value::Constant(uint32_t(rng.Below(7))),
                            Value::Constant(uint32_t(rng.Below(5)))};
    inst.AddFact(r, args);
  }
  size_t n = inst.NumTuples(r);
  for (uint32_t pos = 0; pos < 3; ++pos) {
    for (uint32_t c = 0; c < 13; ++c) {
      Value v = Value::Constant(c);
      const std::vector<uint32_t>& via_index = inst.RowsWithValue(r, pos, v);
      std::set<uint32_t> via_scan;
      for (uint32_t row = 0; row < n; ++row) {
        if (inst.Tuple(r, row)[pos] == v) via_scan.insert(row);
      }
      EXPECT_EQ(std::set<uint32_t>(via_index.begin(), via_index.end()),
                via_scan)
          << "pos " << pos << " value " << c;
    }
  }
}

TEST(StressTest, LargeTransitiveClosure) {
  TestWorkspace ws;
  Tgd trans;
  trans.body = {ws.A("E", {ws.V("x"), ws.V("y")}),
                ws.A("E", {ws.V("y"), ws.V("z")})};
  trans.head = {ws.A("E", {ws.V("x"), ws.V("z")})};
  std::vector<Tgd> tgds{trans};
  SoTgd so = TgdsToSo(&ws.arena, &ws.vocab, tgds);
  Instance input(&ws.vocab);
  const uint32_t n = 60;
  for (uint32_t i = 0; i + 1 < n; ++i) {
    input.AddFact(ws.Fc("E", {"v" + std::to_string(i),
                              "v" + std::to_string(i + 1)}));
  }
  ChaseLimits limits;
  limits.max_facts = 100000;
  ChaseResult result = Chase(&ws.arena, &ws.vocab, so, input, limits);
  ASSERT_TRUE(result.Terminated());
  // Path closure: n*(n-1)/2 edges.
  EXPECT_EQ(result.instance.NumTuples(ws.vocab.FindRelation("E")),
            n * (n - 1) / 2);
}

TEST(StressTest, ManyNullsRoundTrip) {
  TestWorkspace ws;
  RelationId r = ws.vocab.InternRelation("R", 2);
  Instance inst(&ws.vocab);
  std::vector<Value> nulls;
  for (int i = 0; i < 1000; ++i) {
    nulls.push_back(inst.FreshNull("n" + std::to_string(i)));
  }
  for (int i = 0; i + 1 < 1000; ++i) {
    inst.AddFact(r, std::vector<Value>{nulls[i], nulls[i + 1]});
  }
  EXPECT_EQ(inst.NumFacts(), 999u);
  EXPECT_EQ(inst.num_nulls(), 1000u);
  EXPECT_EQ(inst.ValueToString(nulls[42]), "_n42");
  EXPECT_EQ(inst.ActiveDomain().size(), 1000u);
}

TEST(StressTest, ChaseWithManyRules) {
  // 50 copy rules chained: P0 -> P1 -> ... -> P50.
  TestWorkspace ws;
  std::vector<Tgd> tgds;
  for (int i = 0; i < 50; ++i) {
    Tgd copy;
    copy.body = {ws.A("L" + std::to_string(i), {ws.V("x")})};
    copy.head = {ws.A("L" + std::to_string(i + 1), {ws.V("x")})};
    tgds.push_back(copy);
  }
  SoTgd so = TgdsToSo(&ws.arena, &ws.vocab, tgds);
  Instance input(&ws.vocab);
  input.AddFact(ws.Fc("L0", {"seed"}));
  ChaseResult result = Chase(&ws.arena, &ws.vocab, so, input);
  ASSERT_TRUE(result.Terminated());
  EXPECT_EQ(result.instance.NumFacts(), 51u);
  EXPECT_EQ(result.instance.NumTuples(ws.vocab.FindRelation("L50")), 1u);
}

}  // namespace
}  // namespace tgdkit
