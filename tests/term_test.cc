#include <gtest/gtest.h>

#include "term/term.h"

namespace tgdkit {
namespace {

class TermTest : public ::testing::Test {
 protected:
  Vocabulary vocab_;
  TermArena arena_;

  TermId Var(const char* name) {
    return arena_.MakeVariable(vocab_.InternVariable(name));
  }
  TermId Const(const char* name) {
    return arena_.MakeConstant(vocab_.InternConstant(name));
  }
  TermId Fn(const char* name, std::vector<TermId> args) {
    return arena_.MakeFunction(
        vocab_.InternFunction(name, static_cast<uint32_t>(args.size())), args);
  }
};

TEST_F(TermTest, HashConsingDeduplicates) {
  TermId x1 = Var("x");
  TermId x2 = Var("x");
  EXPECT_EQ(x1, x2);
  TermId f1 = Fn("f", {x1});
  TermId f2 = Fn("f", {x2});
  EXPECT_EQ(f1, f2);
  TermId g = Fn("g", {x1});
  EXPECT_NE(f1, g);
}

TEST_F(TermTest, DistinctArgumentsDistinctTerms) {
  TermId fx = Fn("f", {Var("x")});
  TermId fy = Fn("f", {Var("y")});
  EXPECT_NE(fx, fy);
}

TEST_F(TermTest, KindsAndSymbols) {
  TermId x = Var("x");
  TermId c = Const("alice");
  TermId f = Fn("f", {x, c});
  EXPECT_TRUE(arena_.IsVariable(x));
  EXPECT_TRUE(arena_.IsConstant(c));
  EXPECT_TRUE(arena_.IsFunction(f));
  EXPECT_EQ(arena_.args(f).size(), 2u);
  EXPECT_EQ(arena_.args(f)[0], x);
  EXPECT_EQ(arena_.args(f)[1], c);
  EXPECT_EQ(vocab_.FunctionName(arena_.symbol(f)), "f");
}

TEST_F(TermTest, DepthAndSize) {
  TermId x = Var("x");
  EXPECT_EQ(arena_.Depth(x), 0u);
  EXPECT_EQ(arena_.Size(x), 1u);
  TermId fx = Fn("f", {x});
  EXPECT_EQ(arena_.Depth(fx), 1u);
  TermId gfx = Fn("g", {fx, x});
  EXPECT_EQ(arena_.Depth(gfx), 2u);
  EXPECT_EQ(arena_.Size(gfx), 4u);
}

TEST_F(TermTest, GroundAndNested) {
  TermId x = Var("x");
  TermId c = Const("c");
  EXPECT_FALSE(arena_.IsGround(x));
  EXPECT_TRUE(arena_.IsGround(c));
  TermId fc = Fn("f", {c});
  EXPECT_TRUE(arena_.IsGround(fc));
  EXPECT_FALSE(arena_.HasNestedFunction(fc));
  TermId gfc = Fn("g", {fc});
  EXPECT_TRUE(arena_.HasNestedFunction(gfc));
  TermId fx = Fn("f", {x});
  EXPECT_FALSE(arena_.IsGround(fx));
}

TEST_F(TermTest, CollectVariablesInOrder) {
  TermId t = Fn("g", {Fn("f", {Var("y")}), Var("x"), Var("y")});
  std::vector<VariableId> vars;
  arena_.CollectVariables(t, &vars);
  ASSERT_EQ(vars.size(), 2u);
  EXPECT_EQ(vocab_.VariableName(vars[0]), "y");
  EXPECT_EQ(vocab_.VariableName(vars[1]), "x");
}

TEST_F(TermTest, ToString) {
  TermId t = Fn("f", {Var("x"), Const("a")});
  EXPECT_EQ(arena_.ToString(t, vocab_), "f(x, \"a\")");
}

TEST_F(TermTest, SubstitutionApply) {
  TermId x = Var("x");
  TermId y = Var("y");
  TermId c = Const("c");
  TermId t = Fn("f", {x, Fn("g", {y})});
  Substitution s;
  s.Bind(arena_.symbol(x), c);
  TermId applied = s.Apply(&arena_, t);
  EXPECT_EQ(arena_.ToString(applied, vocab_), "f(\"c\", g(y))");
  // Unbound variables stay in place; binding both grounds the term.
  s.Bind(arena_.symbol(y), c);
  TermId grounded = s.Apply(&arena_, t);
  EXPECT_TRUE(arena_.IsGround(grounded));
}

TEST_F(TermTest, SubstitutionIdentityPreservesIds) {
  TermId t = Fn("f", {Var("x")});
  Substitution s;
  EXPECT_EQ(s.Apply(&arena_, t), t);
}

TEST_F(TermTest, MatchBindsVariables) {
  TermId pattern = Fn("f", {Var("x"), Var("y")});
  TermId target = Fn("f", {Const("a"), Const("b")});
  Substitution s;
  ASSERT_TRUE(MatchTerm(arena_, pattern, target, &s));
  EXPECT_EQ(s.Apply(&arena_, pattern), target);
}

TEST_F(TermTest, MatchRespectsRepeatedVariables) {
  TermId pattern = Fn("f", {Var("x"), Var("x")});
  TermId bad = Fn("f", {Const("a"), Const("b")});
  TermId good = Fn("f", {Const("a"), Const("a")});
  Substitution s1;
  EXPECT_FALSE(MatchTerm(arena_, pattern, bad, &s1));
  Substitution s2;
  EXPECT_TRUE(MatchTerm(arena_, pattern, good, &s2));
}

TEST_F(TermTest, MatchFailsOnSymbolMismatch) {
  Substitution s;
  EXPECT_FALSE(MatchTerm(arena_, Fn("f", {Var("x")}), Fn("g", {Const("a")}), &s));
  Substitution s2;
  EXPECT_FALSE(MatchTerm(arena_, Const("a"), Const("b"), &s2));
}

TEST_F(TermTest, MatchNestedTerms) {
  TermId pattern = Fn("f", {Fn("g", {Var("x")})});
  TermId target = Fn("f", {Fn("g", {Fn("h", {Const("c")})})});
  Substitution s;
  ASSERT_TRUE(MatchTerm(arena_, pattern, target, &s));
  EXPECT_EQ(s.Apply(&arena_, pattern), target);
}

}  // namespace
}  // namespace tgdkit
