// Round-trip tests for de-Skolemization (SoToTgds / SoToHenkins) and for
// the generalized composition (SO ∘ tgds, chains).
#include <gtest/gtest.h>

#include "base/rng.h"
#include "chase/chase.h"
#include "dep/skolem.h"
#include "gen/generators.h"
#include "homo/core.h"
#include "parse/parser.h"
#include "query/query.h"
#include "tests/test_util.h"
#include "transform/composition.h"

namespace tgdkit {
namespace {

class DeskolemTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;
};

TEST_F(DeskolemTest, TgdRoundTripPreservesChase) {
  Rng rng(313);
  for (int trial = 0; trial < 10; ++trial) {
    TestWorkspace ws;
    auto relations = GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
    std::vector<Tgd> tgds;
    for (int i = 0; i < 2; ++i) {
      tgds.push_back(
          GenerateTgd(&ws.arena, &ws.vocab, &rng, relations, TgdConfig{}));
    }
    SoTgd so = TgdsToSo(&ws.arena, &ws.vocab, tgds);
    auto recovered = SoToTgds(&ws.arena, &ws.vocab, so);
    ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
    ASSERT_EQ(recovered->size(), tgds.size());
    for (const Tgd& tgd : *recovered) {
      EXPECT_TRUE(ValidateTgd(ws.arena, tgd).ok());
    }
    // Chase equivalence on a random instance.
    Instance input(&ws.vocab);
    GenerateInstance(&ws.vocab, &rng, relations, 8, 3, 0, &input);
    SoTgd re_skolemized = TgdsToSo(&ws.arena, &ws.vocab, *recovered);
    ChaseLimits limits;
    limits.max_term_depth = 5;
    limits.max_facts = 20000;
    ChaseResult a = Chase(&ws.arena, &ws.vocab, so, input, limits);
    ChaseResult b = Chase(&ws.arena, &ws.vocab, re_skolemized, input, limits);
    if (!a.Terminated() || !b.Terminated()) continue;
    EXPECT_TRUE(HomomorphicallyEquivalent(&ws.arena, &ws.vocab, a.instance,
                                          b.instance))
        << "trial " << trial;
  }
}

TEST_F(DeskolemTest, HenkinRoundTripPreservesEssentialOrder) {
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies(
      "henkin { forall e, d ; exists eid(e) ; exists dm(d) }"
      " Emp(e, d) -> Pair(e, d, eid, dm) .");
  ASSERT_TRUE(program.ok());
  HenkinTgd original = program->dependencies[0].henkin;
  SoTgd so = HenkinToSo(&ws_.arena, &ws_.vocab, original);
  auto recovered = SoToHenkins(&ws_.arena, &ws_.vocab, so);
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  ASSERT_EQ(recovered->size(), 1u);
  const HenkinTgd& back = (*recovered)[0];
  EXPECT_TRUE(ValidateHenkinTgd(ws_.arena, back).ok());
  EXPECT_TRUE(back.IsStandard());
  // Dependency sets carry over: one existential per {e}, one per {d}.
  auto essential = back.quantifier.EssentialOrder();
  ASSERT_EQ(essential.size(), 2u);
  EXPECT_EQ(essential[0].second.size(), 1u);
  EXPECT_EQ(essential[1].second.size(), 1u);
}

TEST_F(DeskolemTest, SoToTgdsRejectsHenkinSkolemization) {
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies(
      "so exists fdm { Emp(e, d) -> Mgr(e, fdm(d)) } .");
  ASSERT_TRUE(program.ok());
  auto bad = SoToTgds(&ws_.arena, &ws_.vocab, program->Sos()[0]);
  EXPECT_FALSE(bad.ok());  // fdm(d) misses universal e
  // But as a Henkin tgd it comes back fine.
  auto good = SoToHenkins(&ws_.arena, &ws_.vocab, program->Sos()[0]);
  ASSERT_TRUE(good.ok()) << good.status().ToString();
  EXPECT_EQ((*good)[0].quantifier.existentials().size(), 1u);
}

TEST_F(DeskolemTest, SoToHenkinsRejectsSharedFunction) {
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies(
      "so exists f { Emps(e1, e2) -> Mgrs(f(e1), f(e2)) } .");
  ASSERT_TRUE(program.ok());
  auto bad = SoToHenkins(&ws_.arena, &ws_.vocab, program->Sos()[0]);
  EXPECT_FALSE(bad.ok());  // Theorem 4.4's footprint
}

TEST_F(DeskolemTest, ComposeChainThreeMappings) {
  Parser p(&ws_.arena, &ws_.vocab);
  auto m1 = p.ParseDependencies("A(x) -> exists y . B(x, y) .");
  auto m2 = p.ParseDependencies("B(x, y) -> Cx(y, x) .");
  auto m3 = p.ParseDependencies("Cx(y, x) -> exists z . D(x, y, z) .");
  ASSERT_TRUE(m1.ok() && m2.ok() && m3.ok());
  std::vector<std::vector<Tgd>> chain{m1->Tgds(), m2->Tgds(), m3->Tgds()};
  auto composed = ComposeChain(&ws_.arena, &ws_.vocab, chain);
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();
  ASSERT_EQ(composed->parts.size(), 1u);
  EXPECT_TRUE(ValidateSoTgd(ws_.arena, *composed).ok());

  // Semantic agreement with the three-step chase on the D relation.
  Instance source(&ws_.vocab);
  ASSERT_TRUE(p.ParseInstanceInto("A(a1). A(a2).", &source).ok());
  SoTgd so1 = TgdsToSo(&ws_.arena, &ws_.vocab, chain[0]);
  SoTgd so2 = TgdsToSo(&ws_.arena, &ws_.vocab, chain[1]);
  SoTgd so3 = TgdsToSo(&ws_.arena, &ws_.vocab, chain[2]);
  ChaseResult s1 = Chase(&ws_.arena, &ws_.vocab, so1, source);
  ChaseResult s2 = Chase(&ws_.arena, &ws_.vocab, so2, s1.instance);
  ChaseResult s3 = Chase(&ws_.arena, &ws_.vocab, so3, s2.instance);
  ChaseResult direct = Chase(&ws_.arena, &ws_.vocab, *composed, source);
  RelationId d = ws_.vocab.FindRelation("D");
  EXPECT_EQ(s3.instance.NumTuples(d), direct.instance.NumTuples(d));
  // D facts keyed by the constant first column agree.
  ConjunctiveQuery q;
  q.atoms = {ws_.A("D", {ws_.V("x"), ws_.V("y"), ws_.V("z")})};
  q.free_vars = {ws_.Vid("x")};
  auto via_steps = Evaluate(ws_.arena, s3.instance, q);
  auto via_composed = Evaluate(ws_.arena, direct.instance, q);
  EXPECT_EQ(via_steps, via_composed);
}

TEST_F(DeskolemTest, ComposeChainWithJoinOverInventedValues) {
  Parser p(&ws_.arena, &ws_.vocab);
  auto m1 = p.ParseDependencies("Takes(s, c) -> exists k . Key(s, k) .");
  auto m2 = p.ParseDependencies("Key(s, k) -> Reg(k, s) .");
  auto m3 = p.ParseDependencies("Reg(k, s) -> exists g . Grade(k, g) .");
  ASSERT_TRUE(m1.ok() && m2.ok() && m3.ok());
  std::vector<std::vector<Tgd>> chain{m1->Tgds(), m2->Tgds(), m3->Tgds()};
  auto composed = ComposeChain(&ws_.arena, &ws_.vocab, chain);
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();
  // Grade's first argument is the nested Skolem term comp_g over key(s).
  bool has_nested = false;
  for (const SoPart& part : composed->parts) {
    for (const Atom& atom : part.head) {
      for (TermId t : atom.args) {
        has_nested |= ws_.arena.HasNestedFunction(t) ||
                      ws_.arena.IsFunction(t);
      }
    }
  }
  EXPECT_TRUE(has_nested);
}

}  // namespace
}  // namespace tgdkit
