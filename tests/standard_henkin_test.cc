// Tests for the Section 3.1 / Theorem 6.2 standardization: every Henkin
// tgd becomes an equivalent STANDARD Henkin tgd over a schema extended
// with an identity relation.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "dep/skolem.h"
#include "dep/syntactic.h"
#include "gen/generators.h"
#include "mc/model_check.h"
#include "parse/parser.h"
#include "tests/test_util.h"
#include "transform/standard_henkin.h"

namespace tgdkit {
namespace {

class StandardHenkinTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;

  HenkinTgd ParseHenkin(const std::string& text) {
    Parser p(&ws_.arena, &ws_.vocab);
    auto program = p.ParseDependencies(text);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    return program->dependencies[0].henkin;
  }
};

TEST_F(StandardHenkinTest, OverlappingChainsBecomeStandard) {
  // The paper's non-standard example: chains {x1,x2}, {x2,x3}, {x3,x1}.
  HenkinTgd h = ParseHenkin(
      "henkin { forall x1, x2, x3 ; exists y1(x1, x2) ; exists y2(x2, x3) ;"
      " exists y3(x3, x1) } P(x1, x2, x3) -> R(y1, y2, y3) .");
  EXPECT_FALSE(h.IsStandard());
  StandardizedHenkin std_form = StandardizeHenkin(&ws_.arena, &ws_.vocab, h);
  EXPECT_TRUE(std_form.standard.IsStandard())
      << ToString(ws_.arena, ws_.vocab, std_form.standard);
  EXPECT_TRUE(std_form.standard.IsTree());
  EXPECT_TRUE(ValidateHenkinTgd(ws_.arena, std_form.standard).ok())
      << ToString(ws_.arena, ws_.vocab, std_form.standard);
  // Six copy variables (two per existential), six EqDom body atoms.
  EXPECT_EQ(std_form.standard.body.size(), h.body.size() + 6);
}

TEST_F(StandardHenkinTest, PreservesModelCheckingOutcome) {
  HenkinTgd h = ParseHenkin(
      "henkin { forall x1, x2, x3 ; exists y1(x1, x2) ; exists y2(x2, x3) }"
      " P(x1, x2, x3) -> R(x1, y1, y2) .");
  StandardizedHenkin std_form = StandardizeHenkin(&ws_.arena, &ws_.vocab, h);
  ASSERT_TRUE(std_form.standard.IsStandard());

  Rng rng(8899);
  int checked = 0, satisfied = 0;
  RelationId p = ws_.vocab.FindRelation("P");
  RelationId r = ws_.vocab.FindRelation("R");
  for (int trial = 0; trial < 25; ++trial) {
    Instance inst(&ws_.vocab);
    std::vector<Value> dom;
    for (int i = 0; i < 3; ++i) {
      dom.push_back(ws_.Cv("c" + std::to_string(i)));
    }
    for (Value a : dom) {
      for (Value b : dom) {
        for (Value c : dom) {
          if (rng.Chance(12)) inst.AddFact(p, std::vector<Value>{a, b, c});
          if (rng.Chance(25)) inst.AddFact(r, std::vector<Value>{a, b, c});
        }
      }
    }
    McResult original = CheckHenkin(&ws_.arena, &ws_.vocab, inst, h);
    Instance extended(&ws_.vocab);
    CopyFacts(inst, &extended);
    AddIdentityFacts(std_form.eq_relation, &extended);
    McResult standard =
        CheckHenkin(&ws_.arena, &ws_.vocab, extended, std_form.standard);
    if (original.budget_exceeded || standard.budget_exceeded) continue;
    EXPECT_EQ(original.satisfied, standard.satisfied) << "trial " << trial;
    ++checked;
    satisfied += original.satisfied;
  }
  EXPECT_GT(checked, 15);
  EXPECT_GT(satisfied, 0);
  EXPECT_LT(satisfied, checked);
}

TEST_F(StandardHenkinTest, RandomHenkinsPreserved) {
  Rng rng(9911);
  for (int trial = 0; trial < 12; ++trial) {
    TestWorkspace ws;
    SchemaConfig schema_config;
    schema_config.num_relations = 3;
    schema_config.max_arity = 2;
    auto relations = GenerateSchema(&ws.vocab, &rng, schema_config);
    HenkinTgd h = GenerateHenkinTgd(&ws.arena, &ws.vocab, &rng, relations,
                                    TgdConfig{});
    StandardizedHenkin std_form = StandardizeHenkin(&ws.arena, &ws.vocab, h);
    ASSERT_TRUE(std_form.standard.IsStandard())
        << ToString(ws.arena, ws.vocab, std_form.standard);
    ASSERT_TRUE(ValidateHenkinTgd(ws.arena, std_form.standard).ok());
    for (int inner = 0; inner < 4; ++inner) {
      Instance inst(&ws.vocab);
      GenerateInstance(&ws.vocab, &rng, relations, 8, 3, 0, &inst);
      McResult original = CheckHenkin(&ws.arena, &ws.vocab, inst, h);
      Instance extended(&ws.vocab);
      CopyFacts(inst, &extended);
      AddIdentityFacts(std_form.eq_relation, &extended);
      McResult standard =
          CheckHenkin(&ws.arena, &ws.vocab, extended, std_form.standard);
      if (original.budget_exceeded || standard.budget_exceeded) continue;
      EXPECT_EQ(original.satisfied, standard.satisfied)
          << "trial " << trial << "." << inner;
    }
  }
}

TEST_F(StandardHenkinTest, AlreadyStandardStaysEquivalent) {
  HenkinTgd h = ParseHenkin(
      "henkin { forall e, d ; exists eid(e) ; exists dm(d) }"
      " Emp(e, d) -> Pair(e, d, eid, dm) .");
  ASSERT_TRUE(h.IsStandard());
  StandardizedHenkin std_form = StandardizeHenkin(&ws_.arena, &ws_.vocab, h);
  EXPECT_TRUE(std_form.standard.IsStandard());
  // Copies are still introduced (the transformation is uniform), but the
  // semantics are preserved.
  Parser p(&ws_.arena, &ws_.vocab);
  Instance inst(&ws_.vocab);
  ASSERT_TRUE(p.ParseInstanceInto(
                   "Emp(alice, cs). Pair(alice, cs, i1, m1).", &inst)
                  .ok());
  McResult original = CheckHenkin(&ws_.arena, &ws_.vocab, inst, h);
  Instance extended(&ws_.vocab);
  CopyFacts(inst, &extended);
  AddIdentityFacts(std_form.eq_relation, &extended);
  McResult standard =
      CheckHenkin(&ws_.arena, &ws_.vocab, extended, std_form.standard);
  EXPECT_EQ(original.satisfied, standard.satisfied);
  EXPECT_TRUE(original.satisfied);
}

TEST_F(StandardHenkinTest, StandardizedSkolemizationPassesRecognizer) {
  // Cross-check with the Figure 1 recognizers: the Skolemization of the
  // standardized form must be accepted by IsSkolemizedStandardHenkin.
  Rng rng(31337);
  for (int trial = 0; trial < 10; ++trial) {
    TestWorkspace ws;
    SchemaConfig schema_config;
    schema_config.num_relations = 3;
    auto relations = GenerateSchema(&ws.vocab, &rng, schema_config);
    HenkinTgd h = GenerateHenkinTgd(&ws.arena, &ws.vocab, &rng, relations,
                                    TgdConfig{});
    StandardizedHenkin std_form = StandardizeHenkin(&ws.arena, &ws.vocab, h);
    SoTgd so = HenkinToSo(&ws.arena, &ws.vocab, std_form.standard);
    EXPECT_TRUE(IsSkolemizedStandardHenkin(ws.arena, so))
        << ToString(ws.arena, ws.vocab, std_form.standard);
  }
}

TEST_F(StandardHenkinTest, EmptyDependencySetHandled) {
  HenkinTgd h = ParseHenkin(
      "henkin { forall x ; exists y() } P(x) -> R(x, y) .");
  StandardizedHenkin std_form = StandardizeHenkin(&ws_.arena, &ws_.vocab, h);
  EXPECT_TRUE(std_form.standard.IsStandard());
  EXPECT_TRUE(ValidateHenkinTgd(ws_.arena, std_form.standard).ok());
  EXPECT_EQ(std_form.standard.body.size(), 1u);  // no copies needed
}

}  // namespace
}  // namespace tgdkit
