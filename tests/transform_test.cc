// Tests for Algorithm 1 (nested-to-so) and Algorithm 2 (nested-to-henkin),
// including the paper's Section 4 discrimination argument: the largest
// Henkin tgd produced by Algorithm 2 (σ123) is genuinely needed.
#include <gtest/gtest.h>

#include <algorithm>

#include "base/rng.h"
#include "chase/chase.h"
#include "dep/skolem.h"
#include "dep/syntactic.h"
#include "mc/model_check.h"
#include "parse/parser.h"
#include "tests/test_util.h"
#include "transform/nested.h"

namespace tgdkit {
namespace {

class TransformTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;

  /// The paper's three-level Dep/Grp/Emp nested tgd τ, with the group
  /// identity recorded in Grp2 (so that groups are distinguishable).
  NestedTgd PaperTau() {
    Parser p(&ws_.arena, &ws_.vocab);
    auto program = p.ParseDependencies(
        "nested Dep(d) -> exists u . Dep2(u) &"
        " [ Grp(d, g) -> exists w . Grp2(u, g, w) &"
        "   [ Emp(d, g, e) -> Emp2(u, w, e) ] ] .");
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    return program->dependencies[0].nested;
  }

  /// A chain-shaped nested tgd of the given depth:
  ///   R1(x1) -> exists y1 . S1(x1, y1) & [ R2(x2) -> exists y2 ... ]
  NestedTgd ChainNested(size_t depth) {
    NestedNode* cursor = nullptr;
    NestedTgd nested;
    for (size_t level = 1; level <= depth; ++level) {
      NestedNode node;
      std::string i = std::to_string(level);
      node.univ_vars = {ws_.Vid("x" + i)};
      node.body = {ws_.A("R" + i, {ws_.V("x" + i)})};
      node.exist_vars = {ws_.Vid("y" + i)};
      node.head_atoms = {ws_.A("S" + i, {ws_.V("x" + i), ws_.V("y" + i)})};
      if (cursor == nullptr) {
        nested.root = std::move(node);
        cursor = &nested.root;
      } else {
        cursor->children.push_back(std::move(node));
        cursor = &cursor->children[0];
      }
    }
    return nested;
  }
};

TEST_F(TransformTest, NestedToSoHasOnePartPerNestedPart) {
  NestedTgd tau = PaperTau();
  SoTgd so = NestedToSo(&ws_.arena, &ws_.vocab, tau);
  EXPECT_EQ(so.parts.size(), tau.NumParts());
  EXPECT_EQ(so.functions.size(), 2u);  // one per existential: u and w
  EXPECT_TRUE(ValidateSoTgd(ws_.arena, so).ok());
  EXPECT_TRUE(so.IsPlain(ws_.arena));
  EXPECT_TRUE(IsHierarchicalSo(ws_.arena, so));
}

TEST_F(TransformTest, NestedToSoAccumulatesBodies) {
  NestedTgd tau = PaperTau();
  SoTgd so = NestedToSo(&ws_.arena, &ws_.vocab, tau);
  ASSERT_EQ(so.parts.size(), 3u);
  EXPECT_EQ(so.parts[0].body.size(), 1u);  // Dep
  EXPECT_EQ(so.parts[1].body.size(), 2u);  // Dep & Grp
  EXPECT_EQ(so.parts[2].body.size(), 3u);  // Dep & Grp & Emp
}

TEST_F(TransformTest, NestedToHenkinProducesFourRulesForThreeLevels) {
  NestedTgd tau = PaperTau();
  std::vector<HenkinTgd> henkins =
      NestedToHenkin(&ws_.arena, &ws_.vocab, tau);
  // σ1, σ12, σ13, σ123 — exactly as in the paper's worked example.
  ASSERT_EQ(henkins.size(), 4u);
  EXPECT_EQ(NestedToHenkinRuleCount(tau), 4u);
  for (const HenkinTgd& h : henkins) {
    EXPECT_TRUE(ValidateHenkinTgd(ws_.arena, h).ok())
        << ToString(ws_.arena, ws_.vocab, h);
    EXPECT_TRUE(h.IsTree()) << ToString(ws_.arena, ws_.vocab, h);
  }
}

TEST_F(TransformTest, LargestHenkinRuleHasTheStarGroup) {
  NestedTgd tau = PaperTau();
  std::vector<HenkinTgd> henkins =
      NestedToHenkin(&ws_.arena, &ws_.vocab, tau);
  ASSERT_EQ(henkins.size(), 4u);
  auto largest = std::max_element(
      henkins.begin(), henkins.end(),
      [](const HenkinTgd& a, const HenkinTgd& b) {
        return a.body.size() < b.body.size();
      });
  // σ123: Dep(d) & Grp(d,g) & Emp(d,g,e) & Grp(d,g*) — four body atoms.
  EXPECT_EQ(largest->body.size(), 4u);
  // Two independent w-existentials (one per Grp occurrence).
  EXPECT_EQ(largest->quantifier.existentials().size(), 3u);
}

TEST_F(TransformTest, HenkinRuleCountGrowsNonElementarily) {
  // Chain depths 1..5: 1, 2, 4, 16, 65536 rules — the tower the paper
  // describes ("may produce non-elementary many Henkin tgds").
  EXPECT_EQ(NestedToHenkinRuleCount(ChainNested(1)), 1u);
  EXPECT_EQ(NestedToHenkinRuleCount(ChainNested(2)), 2u);
  EXPECT_EQ(NestedToHenkinRuleCount(ChainNested(3)), 4u);
  EXPECT_EQ(NestedToHenkinRuleCount(ChainNested(4)), 16u);
  EXPECT_EQ(NestedToHenkinRuleCount(ChainNested(5)), 65536u);
}

TEST_F(TransformTest, NestedToSoIsLinearInDepth) {
  for (size_t depth = 1; depth <= 6; ++depth) {
    SoTgd so = NestedToSo(&ws_.arena, &ws_.vocab, ChainNested(depth));
    EXPECT_EQ(so.parts.size(), depth);
  }
}

TEST_F(TransformTest, OverflowGuardTriggers) {
  bool overflow = false;
  std::vector<HenkinTgd> henkins = NestedToHenkin(
      &ws_.arena, &ws_.vocab, ChainNested(5), /*max_rules=*/1000, &overflow);
  EXPECT_TRUE(overflow);
  EXPECT_TRUE(henkins.empty());
}

TEST_F(TransformTest, Sigma123IsNeeded) {
  // The paper's Section 4 instance argument, made executable: an instance
  // satisfying σ1, σ12, σ13 but neither σ123 nor τ itself.
  NestedTgd tau = PaperTau();
  std::vector<HenkinTgd> henkins =
      NestedToHenkin(&ws_.arena, &ws_.vocab, tau);
  ASSERT_EQ(henkins.size(), 4u);
  std::sort(henkins.begin(), henkins.end(),
            [](const HenkinTgd& a, const HenkinTgd& b) {
              return a.body.size() < b.body.size();
            });

  Parser p(&ws_.arena, &ws_.vocab);
  Instance inst(&ws_.vocab);
  Status s = p.ParseInstanceInto(
      "Dep(cs). Grp(cs, a). Grp(cs, b). Emp(cs, a, e1).\n"
      "Dep2(_n1). Grp2(_n1, a, _m1). Emp2(_n1, _m1, e1).\n"
      "Dep2(_n2). Grp2(_n2, a, _m2a). Grp2(_n2, b, _m2b).",
      &inst);
  ASSERT_TRUE(s.ok()) << s.ToString();

  // τ is violated: no department identifier covers both groups of cs.
  EXPECT_FALSE(CheckNested(ws_.arena, inst, tau));
  // The normalized SO tgd agrees (it shares one quantifier over all parts).
  SoTgd so = NestedToSo(&ws_.arena, &ws_.vocab, tau);
  EXPECT_FALSE(CheckSo(ws_.arena, inst, so).satisfied);

  // Without the largest rule, the Henkin set is fooled...
  std::vector<HenkinTgd> without(henkins.begin(), henkins.end() - 1);
  McResult partial = CheckHenkins(&ws_.arena, &ws_.vocab, inst, without);
  EXPECT_TRUE(partial.satisfied);
  // ...but the full Algorithm 2 output is not.
  McResult full = CheckHenkins(&ws_.arena, &ws_.vocab, inst, henkins);
  EXPECT_FALSE(full.satisfied);
}

TEST_F(TransformTest, AlgorithmsAgreeOnChaseModels) {
  // A model produced by chasing the normalized form satisfies the nested
  // tgd, its SO normalization, and the Henkin set alike.
  NestedTgd tau = PaperTau();
  SoTgd so = NestedToSo(&ws_.arena, &ws_.vocab, tau);
  std::vector<HenkinTgd> henkins =
      NestedToHenkin(&ws_.arena, &ws_.vocab, tau);

  Parser p(&ws_.arena, &ws_.vocab);
  Instance input(&ws_.vocab);
  Status s = p.ParseInstanceInto(
      "Dep(cs). Dep(math). Grp(cs, a). Grp(cs, b). Grp(math, c)."
      " Emp(cs, a, e1). Emp(math, c, e2).",
      &input);
  ASSERT_TRUE(s.ok());

  ChaseResult chased = Chase(&ws_.arena, &ws_.vocab, so, input);
  ASSERT_TRUE(chased.Terminated());
  EXPECT_TRUE(CheckNested(ws_.arena, chased.instance, tau));
  EXPECT_TRUE(CheckSo(ws_.arena, chased.instance, so).satisfied);
  EXPECT_TRUE(CheckHenkins(&ws_.arena, &ws_.vocab, chased.instance, henkins)
                  .satisfied);
}

TEST_F(TransformTest, EquivalenceOnRandomSmallInstances) {
  // Sampled logical-equivalence check for Theorem 4.3 and Algorithm 1:
  // on random instances over the schema, τ, nested-to-so(τ), and
  // nested-to-henkin(τ) agree.
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies(
      "nested Dep(d) -> exists u . Dep2(u, d) &"
      " [ Grp(d, g) -> Grp2(u, g) ] .");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  NestedTgd tau = program->dependencies[0].nested;
  SoTgd so = NestedToSo(&ws_.arena, &ws_.vocab, tau);
  std::vector<HenkinTgd> henkins =
      NestedToHenkin(&ws_.arena, &ws_.vocab, tau);

  Rng rng(20150531);
  int satisfied_count = 0;
  for (int trial = 0; trial < 60; ++trial) {
    Instance inst(&ws_.vocab);
    std::vector<Value> dom{ws_.Cv("c0"), ws_.Cv("c1"), inst.FreshNull(),
                           inst.FreshNull()};
    RelationId dep = ws_.vocab.InternRelation("Dep", 1);
    RelationId grp = ws_.vocab.InternRelation("Grp", 2);
    RelationId dep2 = ws_.vocab.InternRelation("Dep2", 2);
    RelationId grp2 = ws_.vocab.InternRelation("Grp2", 2);
    for (Value v : dom) {
      if (rng.Chance(40)) inst.AddFact(dep, std::vector<Value>{v});
      for (Value w : dom) {
        if (rng.Chance(25)) inst.AddFact(grp, std::vector<Value>{v, w});
        if (rng.Chance(35)) inst.AddFact(dep2, std::vector<Value>{v, w});
        if (rng.Chance(35)) inst.AddFact(grp2, std::vector<Value>{v, w});
      }
    }
    bool nested_holds = CheckNested(ws_.arena, inst, tau);
    bool so_holds = CheckSo(ws_.arena, inst, so).satisfied;
    bool henkin_holds =
        CheckHenkins(&ws_.arena, &ws_.vocab, inst, henkins).satisfied;
    EXPECT_EQ(nested_holds, so_holds) << "trial " << trial;
    EXPECT_EQ(nested_holds, henkin_holds) << "trial " << trial;
    satisfied_count += nested_holds ? 1 : 0;
  }
  // The sample must exercise both outcomes to be meaningful.
  EXPECT_GT(satisfied_count, 0);
  EXPECT_LT(satisfied_count, 60);
}

}  // namespace
}  // namespace tgdkit
