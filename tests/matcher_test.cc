#include <gtest/gtest.h>

#include "homo/matcher.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

class MatcherTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;
};

TEST_F(MatcherTest, SingleAtomEnumeration) {
  Instance inst(&ws_.vocab);
  inst.AddFact(ws_.Fc("Emp", {"alice", "cs"}));
  inst.AddFact(ws_.Fc("Emp", {"bob", "cs"}));
  std::vector<Atom> atoms{ws_.A("Emp", {ws_.V("e"), ws_.V("d")})};
  Matcher matcher(&ws_.arena, &inst, atoms);
  size_t count = matcher.ForEach({}, [](const Assignment&) { return true; });
  EXPECT_EQ(count, 2u);
}

TEST_F(MatcherTest, ConstantInAtomFilters) {
  Instance inst(&ws_.vocab);
  inst.AddFact(ws_.Fc("Emp", {"alice", "cs"}));
  inst.AddFact(ws_.Fc("Emp", {"bob", "math"}));
  std::vector<Atom> atoms{ws_.A("Emp", {ws_.V("e"), ws_.C("cs")})};
  Matcher matcher(&ws_.arena, &inst, atoms);
  Assignment found;
  ASSERT_TRUE(matcher.FindOne(&found));
  EXPECT_EQ(found[ws_.Vid("e")], ws_.Cv("alice"));
  EXPECT_EQ(matcher.ForEach({}, [](const Assignment&) { return true; }), 1u);
}

TEST_F(MatcherTest, JoinAcrossAtoms) {
  Instance inst(&ws_.vocab);
  inst.AddFact(ws_.Fc("R", {"a", "b"}));
  inst.AddFact(ws_.Fc("R", {"b", "c"}));
  inst.AddFact(ws_.Fc("R", {"c", "d"}));
  // Two-step paths: x -> y -> z.
  std::vector<Atom> atoms{ws_.A("R", {ws_.V("x"), ws_.V("y")}),
                          ws_.A("R", {ws_.V("y"), ws_.V("z")})};
  Matcher matcher(&ws_.arena, &inst, atoms);
  size_t count = matcher.ForEach({}, [](const Assignment&) { return true; });
  EXPECT_EQ(count, 2u);  // a->b->c and b->c->d
}

TEST_F(MatcherTest, RepeatedVariableWithinAtom) {
  Instance inst(&ws_.vocab);
  inst.AddFact(ws_.Fc("R", {"a", "a"}));
  inst.AddFact(ws_.Fc("R", {"a", "b"}));
  std::vector<Atom> atoms{ws_.A("R", {ws_.V("x"), ws_.V("x")})};
  Matcher matcher(&ws_.arena, &inst, atoms);
  EXPECT_EQ(matcher.ForEach({}, [](const Assignment&) { return true; }), 1u);
}

TEST_F(MatcherTest, SeedRestrictsSearch) {
  Instance inst(&ws_.vocab);
  inst.AddFact(ws_.Fc("R", {"a", "b"}));
  inst.AddFact(ws_.Fc("R", {"c", "d"}));
  std::vector<Atom> atoms{ws_.A("R", {ws_.V("x"), ws_.V("y")})};
  Matcher matcher(&ws_.arena, &inst, atoms);
  Assignment seed{{ws_.Vid("x"), ws_.Cv("c")}};
  ASSERT_TRUE(matcher.FindOne(&seed));
  EXPECT_EQ(seed[ws_.Vid("y")], ws_.Cv("d"));
}

TEST_F(MatcherTest, SeedPreservedInCallbackAssignments) {
  Instance inst(&ws_.vocab);
  inst.AddFact(ws_.Fc("R", {"a"}));
  std::vector<Atom> atoms{ws_.A("R", {ws_.V("x")})};
  Matcher matcher(&ws_.arena, &inst, atoms);
  // Seed binds a variable not in the query; it must survive in outputs.
  Assignment seed{{ws_.Vid("unrelated"), ws_.Cv("k")}};
  matcher.ForEach(seed, [&](const Assignment& a) {
    EXPECT_EQ(a.at(ws_.Vid("unrelated")), ws_.Cv("k"));
    EXPECT_EQ(a.at(ws_.Vid("x")), ws_.Cv("a"));
    return true;
  });
}

TEST_F(MatcherTest, NoMatchReturnsFalse) {
  Instance inst(&ws_.vocab);
  inst.AddFact(ws_.Fc("R", {"a", "b"}));
  std::vector<Atom> atoms{ws_.A("S", {ws_.V("x")})};
  Matcher matcher(&ws_.arena, &inst, atoms);
  Assignment a;
  EXPECT_FALSE(matcher.FindOne(&a));
}

TEST_F(MatcherTest, EarlyStopViaCallback) {
  Instance inst(&ws_.vocab);
  for (int i = 0; i < 10; ++i) {
    inst.AddFact(ws_.Fc("R", {"c" + std::to_string(i)}));
  }
  std::vector<Atom> atoms{ws_.A("R", {ws_.V("x")})};
  Matcher matcher(&ws_.arena, &inst, atoms);
  int seen = 0;
  matcher.ForEach({}, [&](const Assignment&) { return ++seen < 3; });
  EXPECT_EQ(seen, 3);
}

TEST_F(MatcherTest, TriangleQuery) {
  Instance inst(&ws_.vocab);
  inst.AddFact(ws_.Fc("E", {"1", "2"}));
  inst.AddFact(ws_.Fc("E", {"2", "3"}));
  inst.AddFact(ws_.Fc("E", {"3", "1"}));
  inst.AddFact(ws_.Fc("E", {"1", "3"}));  // chord, no triangle through it
  std::vector<Atom> atoms{ws_.A("E", {ws_.V("x"), ws_.V("y")}),
                          ws_.A("E", {ws_.V("y"), ws_.V("z")}),
                          ws_.A("E", {ws_.V("z"), ws_.V("x")})};
  Matcher matcher(&ws_.arena, &inst, atoms);
  size_t count = matcher.ForEach({}, [](const Assignment&) { return true; });
  EXPECT_EQ(count, 3u);  // the directed triangle counted from 3 rotations
}

TEST_F(MatcherTest, MatchesNullValues) {
  Instance inst(&ws_.vocab);
  Value n = inst.FreshNull();
  RelationId r = ws_.vocab.InternRelation("R", 2);
  inst.AddFact(r, std::vector<Value>{ws_.Cv("a"), n});
  std::vector<Atom> atoms{ws_.A("R", {ws_.C("a"), ws_.V("y")})};
  Matcher matcher(&ws_.arena, &inst, atoms);
  Assignment a;
  ASSERT_TRUE(matcher.FindOne(&a));
  EXPECT_TRUE(a[ws_.Vid("y")].is_null());
}

TEST_F(MatcherTest, EmptyQueryMatchesOnce) {
  Instance inst(&ws_.vocab);
  Matcher matcher(&ws_.arena, &inst, std::vector<Atom>{});
  EXPECT_EQ(matcher.ForEach({}, [](const Assignment&) { return true; }), 1u);
}

TEST_F(MatcherTest, CrossProductCount) {
  Instance inst(&ws_.vocab);
  for (int i = 0; i < 4; ++i) inst.AddFact(ws_.Fc("A", {"a" + std::to_string(i)}));
  for (int i = 0; i < 5; ++i) inst.AddFact(ws_.Fc("B", {"b" + std::to_string(i)}));
  std::vector<Atom> atoms{ws_.A("A", {ws_.V("x")}), ws_.A("B", {ws_.V("y")})};
  Matcher matcher(&ws_.arena, &inst, atoms);
  EXPECT_EQ(matcher.ForEach({}, [](const Assignment&) { return true; }), 20u);
}

// ---------------------------------------------------------------------------
// RootSplit: the sharding contract used by parallel chase rounds.
// ForEach(seed, cb) must emit exactly the concatenation, in order, of
// ForEachFromRoot over the planned root candidates — same assignments,
// same emission order, same probe count.

namespace rootsplit {

/// Renders every emitted assignment as the value tuple over the
/// matcher's variables, in emission order.
std::vector<std::vector<Value>> Emissions(
    const Matcher& matcher, const Assignment& seed,
    const SearchControls& controls) {
  std::vector<std::vector<Value>> out;
  matcher.ForEach(
      seed,
      [&](const Assignment& a) {
        std::vector<Value> tuple;
        for (VariableId v : matcher.variables()) tuple.push_back(a.at(v));
        out.push_back(std::move(tuple));
        return true;
      },
      controls);
  return out;
}

std::vector<std::vector<Value>> ShardedEmissions(
    const Matcher& matcher, const Assignment& seed,
    const SearchControls& controls) {
  Matcher::RootSplit split = matcher.PlanRoot(seed);
  EXPECT_GE(split.atom, 0);
  std::vector<std::vector<Value>> out;
  for (size_t i = 0; i < split.NumCandidates(); ++i) {
    matcher.ForEachFromRoot(
        seed, split, split.Row(i),
        [&](const Assignment& a) {
          std::vector<Value> tuple;
          for (VariableId v : matcher.variables()) tuple.push_back(a.at(v));
          out.push_back(std::move(tuple));
          return true;
        },
        controls);
  }
  return out;
}

}  // namespace rootsplit

TEST_F(MatcherTest, RootSplitConcatenationEqualsForEach) {
  Instance inst(&ws_.vocab);
  // A dense-ish random-looking digraph with several triangles.
  const char* edges[][2] = {{"1", "2"}, {"2", "3"}, {"3", "1"}, {"1", "3"},
                            {"3", "4"}, {"4", "1"}, {"4", "2"}, {"2", "4"},
                            {"4", "5"}, {"5", "1"}, {"5", "5"}};
  for (auto& e : edges) inst.AddFact(ws_.Fc("E", {e[0], e[1]}));
  std::vector<Atom> atoms{ws_.A("E", {ws_.V("x"), ws_.V("y")}),
                          ws_.A("E", {ws_.V("y"), ws_.V("z")}),
                          ws_.A("E", {ws_.V("z"), ws_.V("x")})};
  Matcher matcher(&ws_.arena, &inst, atoms);

  uint64_t whole_probes = 0, shard_probes = 0;
  SearchControls whole{nullptr, &whole_probes, nullptr};
  SearchControls shard{nullptr, &shard_probes, nullptr};
  auto full = rootsplit::Emissions(matcher, {}, whole);
  auto sharded = rootsplit::ShardedEmissions(matcher, {}, shard);
  ASSERT_GT(full.size(), 3u);
  EXPECT_EQ(full, sharded);
  EXPECT_EQ(whole_probes, shard_probes)
      << "sharded enumeration must pay exactly the serial probe count";
}

TEST_F(MatcherTest, RootSplitScanFallbackStillSharded) {
  // A single atom with no bound position plans a full-scan root: the
  // split enumerates row ids [0, n) and must still reproduce ForEach.
  Instance inst(&ws_.vocab);
  for (int i = 0; i < 7; ++i) {
    inst.AddFact(ws_.Fc("R", {"a" + std::to_string(i), "b"}));
  }
  std::vector<Atom> atoms{ws_.A("R", {ws_.V("x"), ws_.V("y")})};
  Matcher matcher(&ws_.arena, &inst, atoms);
  Matcher::RootSplit split = matcher.PlanRoot({});
  EXPECT_EQ(split.NumCandidates(), 7u);
  SearchControls none;
  EXPECT_EQ(rootsplit::Emissions(matcher, {}, none),
            rootsplit::ShardedEmissions(matcher, {}, none));
}

TEST_F(MatcherTest, RootSplitRespectsSeed) {
  Instance inst(&ws_.vocab);
  inst.AddFact(ws_.Fc("R", {"a", "b"}));
  inst.AddFact(ws_.Fc("R", {"a", "c"}));
  inst.AddFact(ws_.Fc("R", {"d", "e"}));
  std::vector<Atom> atoms{ws_.A("R", {ws_.V("x"), ws_.V("y")})};
  Matcher matcher(&ws_.arena, &inst, atoms);
  Assignment seed{{ws_.Vid("x"), ws_.Cv("a")}};
  SearchControls none;
  auto full = rootsplit::Emissions(matcher, seed, none);
  EXPECT_EQ(full.size(), 2u);
  EXPECT_EQ(full, rootsplit::ShardedEmissions(matcher, seed, none));
}

TEST_F(MatcherTest, RootSplitEmptyQueryHasNoShards) {
  Instance inst(&ws_.vocab);
  Matcher matcher(&ws_.arena, &inst, std::vector<Atom>{});
  Matcher::RootSplit split = matcher.PlanRoot({});
  EXPECT_EQ(split.atom, -1);
}

}  // namespace
}  // namespace tgdkit
