// Tests for the unified resource governor (base/budget.h) and
// fault-injection stress for the engines that poll it: the chase, the
// second-order model checker, and the brute-force oracles are each run
// against Figure 4 style non-terminating / exponential workloads under
// progressively tighter budgets, asserting a clean, deterministic,
// machine-readable stop every time.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <thread>

#include "base/budget.h"
#include "chase/chase.h"
#include "cli/cli.h"
#include "dep/skolem.h"
#include "mc/model_check.h"
#include "oracle/oracle.h"
#include "parse/parser.h"
#include "reduce/pcp.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

// ---------------------------------------------------------------------------
// ResourceGovernor unit tests

TEST(ResourceGovernorTest, UnlimitedGovernorOnlyCounts) {
  ResourceGovernor governor;
  for (int i = 0; i < 5000; ++i) {
    ASSERT_TRUE(governor.Poll());
  }
  EXPECT_FALSE(governor.exhausted());
  EXPECT_EQ(governor.reason(), StopReason::kFixpoint);
  EXPECT_EQ(governor.steps(), 5000u);
  EXPECT_TRUE(governor.ToStatus("work").ok());
}

TEST(ResourceGovernorTest, StepLimitStopsExactlyAtTheLimit) {
  // Both below and above kCheckInterval, Poll() must return false for the
  // first time exactly on the max_steps-th call — a deterministic stop.
  for (uint64_t limit : {7ull, 1000ull, 5000ull}) {
    ExecutionBudget budget;
    budget.max_steps = limit;
    ResourceGovernor governor(budget);
    uint64_t granted = 0;
    while (governor.Poll()) ++granted;
    EXPECT_EQ(granted, limit - 1) << "limit " << limit;
    EXPECT_EQ(governor.steps(), limit);
    EXPECT_TRUE(governor.exhausted());
    EXPECT_EQ(governor.reason(), StopReason::kStepLimit);
    // Once exhausted, always exhausted.
    EXPECT_FALSE(governor.Poll());
    EXPECT_EQ(governor.steps(), limit);
  }
}

TEST(ResourceGovernorTest, DeadlineStops) {
  ExecutionBudget budget;
  budget.deadline_ms = 20;
  ResourceGovernor governor(budget);
  // Busy-poll until the deadline trips; bound the loop so a broken
  // governor fails instead of hanging.
  uint64_t polls = 0;
  while (governor.Poll() && polls < (1ull << 40)) ++polls;
  EXPECT_TRUE(governor.exhausted());
  EXPECT_EQ(governor.reason(), StopReason::kDeadline);
  EXPECT_GE(governor.elapsed_ms(), 20.0);
  EXPECT_EQ(governor.ToStatus("chase").code(), Status::Code::kResourceExhausted);
}

TEST(ResourceGovernorTest, MemorySourceTripsTheByteBudget) {
  ExecutionBudget budget;
  budget.max_memory_bytes = 1000;
  ResourceGovernor governor(budget);
  uint64_t bytes = 0;
  governor.AddMemorySource([&bytes] { return bytes; });
  ASSERT_TRUE(governor.CheckNow());
  bytes = 4096;
  EXPECT_FALSE(governor.CheckNow());
  EXPECT_EQ(governor.reason(), StopReason::kMemoryLimit);
  EXPECT_GE(governor.memory_bytes(), 4096u);
}

TEST(ResourceGovernorTest, ChargedBytesCountAgainstTheBudget) {
  ExecutionBudget budget;
  budget.max_memory_bytes = 1000;
  ResourceGovernor governor(budget);
  governor.ChargeBytes(512);
  ASSERT_TRUE(governor.CheckNow());
  governor.ChargeBytes(512);
  EXPECT_FALSE(governor.CheckNow());
  EXPECT_EQ(governor.reason(), StopReason::kMemoryLimit);
}

TEST(ResourceGovernorTest, CancellationFromAnotherThread) {
  ExecutionBudget budget;
  ResourceGovernor governor(budget);
  std::thread canceller([&budget] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    budget.cancel.Cancel();
  });
  uint64_t polls = 0;
  while (governor.Poll() && polls < (1ull << 40)) ++polls;
  canceller.join();
  EXPECT_TRUE(governor.exhausted());
  EXPECT_EQ(governor.reason(), StopReason::kCancelled);
}

TEST(ResourceGovernorTest, FirstRecordedStopReasonWins) {
  ResourceGovernor governor;
  governor.MarkExhausted(StopReason::kFixpoint);  // not a stop: ignored
  EXPECT_FALSE(governor.exhausted());
  governor.MarkExhausted(StopReason::kFactLimit);
  governor.MarkExhausted(StopReason::kDeadline);
  EXPECT_EQ(governor.reason(), StopReason::kFactLimit);
  EXPECT_FALSE(governor.Poll());
}

TEST(StopReasonTest, StatusMapping) {
  EXPECT_TRUE(StopReasonToStatus(StopReason::kFixpoint, "x").ok());
  for (StopReason stop :
       {StopReason::kRoundLimit, StopReason::kFactLimit,
        StopReason::kDepthLimit, StopReason::kStepLimit,
        StopReason::kDeadline, StopReason::kMemoryLimit,
        StopReason::kCancelled}) {
    Status status = StopReasonToStatus(stop, "engine");
    EXPECT_EQ(status.code(), Status::Code::kResourceExhausted);
    EXPECT_NE(status.ToString().find(ToString(stop)), std::string::npos);
  }
}

// ---------------------------------------------------------------------------
// Chase under budgets (Figure 4: the chase may legitimately run forever)

class BudgetedChaseTest : public ::testing::Test {
 protected:
  /// A non-terminating Skolem chase: N(x) -> N(f(x)), E(x, f(x)).
  SoTgd ForeverRules() {
    FunctionId f = ws_.vocab.InternFunction("f", 1);
    SoTgd so;
    so.functions = {f};
    SoPart part;
    part.body = {ws_.A("N", {ws_.V("x")})};
    part.head = {ws_.A("N", {ws_.F("f", {ws_.V("x")})}),
                 ws_.A("E", {ws_.V("x"), ws_.F("f", {ws_.V("x")})})};
    so.parts = {part};
    return so;
  }

  Instance Seed() {
    Instance input(&ws_.vocab);
    input.AddFact(ws_.Fc("N", {"c"}));
    return input;
  }

  /// Structural caps opened wide so only the governed budget can stop it.
  ChaseLimits OpenLimits() {
    ChaseLimits limits;
    limits.max_rounds = 1ull << 40;
    limits.max_facts = 1ull << 40;
    limits.max_term_depth = 1u << 30;
    return limits;
  }

  TestWorkspace ws_;
};

TEST_F(BudgetedChaseTest, StepLimitStopsDeterministically) {
  ChaseLimits limits = OpenLimits();
  limits.budget.max_steps = 3000;
  ChaseResult first = Chase(&ws_.arena, &ws_.vocab, ForeverRules(), Seed(),
                            limits);
  EXPECT_EQ(first.stop_reason, StopReason::kStepLimit);
  EXPECT_EQ(first.ToStatus().code(), Status::Code::kResourceExhausted);
  EXPECT_GT(first.instance.NumFacts(), 0u);

  // Same budget, fresh workspace: byte-identical outcome.
  TestWorkspace ws2;
  Instance seed2(&ws2.vocab);
  seed2.AddFact(ws2.Fc("N", {"c"}));
  FunctionId f = ws2.vocab.InternFunction("f", 1);
  SoTgd so;
  so.functions = {f};
  SoPart part;
  part.body = {ws2.A("N", {ws2.V("x")})};
  part.head = {ws2.A("N", {ws2.F("f", {ws2.V("x")})}),
               ws2.A("E", {ws2.V("x"), ws2.F("f", {ws2.V("x")})})};
  so.parts = {part};
  ChaseResult second = Chase(&ws2.arena, &ws2.vocab, so, seed2, limits);
  EXPECT_EQ(second.stop_reason, first.stop_reason);
  EXPECT_EQ(second.rounds, first.rounds);
  EXPECT_EQ(second.facts_created, first.facts_created);
  EXPECT_EQ(second.budget_steps, first.budget_steps);
}

TEST_F(BudgetedChaseTest, DeadlineStopsTheForeverChase) {
  ChaseLimits limits = OpenLimits();
  limits.budget.deadline_ms = 50;
  ChaseResult result = Chase(&ws_.arena, &ws_.vocab, ForeverRules(), Seed(),
                             limits);
  EXPECT_EQ(result.stop_reason, StopReason::kDeadline);
  EXPECT_EQ(result.ToStatus().code(), Status::Code::kResourceExhausted);
  EXPECT_GT(result.facts_created, 0u);
}

TEST_F(BudgetedChaseTest, MemoryBudgetStopsTheForeverChase) {
  ChaseLimits limits = OpenLimits();
  limits.budget.max_memory_bytes = 256 * 1024;
  ChaseResult result = Chase(&ws_.arena, &ws_.vocab, ForeverRules(), Seed(),
                             limits);
  EXPECT_EQ(result.stop_reason, StopReason::kMemoryLimit);
  EXPECT_GE(result.budget_bytes, 256u * 1024u);
}

TEST_F(BudgetedChaseTest, PreCancelledBudgetStopsImmediately) {
  ChaseLimits limits = OpenLimits();
  limits.budget.cancel.Cancel();
  ChaseResult result = Chase(&ws_.arena, &ws_.vocab, ForeverRules(), Seed(),
                             limits);
  EXPECT_EQ(result.stop_reason, StopReason::kCancelled);
}

TEST_F(BudgetedChaseTest, CancellationFromAnotherThreadStopsTheChase) {
  ChaseLimits limits = OpenLimits();
  CancellationToken token = limits.budget.cancel;
  std::thread canceller([token]() mutable {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    token.Cancel();
  });
  ChaseResult result = Chase(&ws_.arena, &ws_.vocab, ForeverRules(), Seed(),
                             limits);
  canceller.join();
  EXPECT_EQ(result.stop_reason, StopReason::kCancelled);
  EXPECT_EQ(result.ToStatus().code(), Status::Code::kResourceExhausted);
}

TEST_F(BudgetedChaseTest, RestrictedChaseHonorsTheBudget) {
  // N(x) -> ∃y E(x,y) ∧ N(y): non-terminating under the restricted chase.
  Tgd tgd;
  tgd.body = {ws_.A("N", {ws_.V("x")})};
  tgd.head = {ws_.A("E", {ws_.V("x"), ws_.V("y")}),
              ws_.A("N", {ws_.V("y")})};
  tgd.exist_vars = {ws_.Vid("y")};
  std::vector<Tgd> tgds = {tgd};

  ChaseLimits limits = OpenLimits();
  limits.budget.max_steps = 2000;
  ChaseResult result = RestrictedChaseTgds(&ws_.arena, &ws_.vocab, tgds,
                                           Seed(), limits);
  EXPECT_EQ(result.stop_reason, StopReason::kStepLimit);
  EXPECT_GT(result.facts_created, 0u);

  ChaseLimits timed = OpenLimits();
  timed.budget.deadline_ms = 50;
  ChaseResult by_time = RestrictedChaseTgds(&ws_.arena, &ws_.vocab, tgds,
                                            Seed(), timed);
  EXPECT_EQ(by_time.stop_reason, StopReason::kDeadline);
}

TEST_F(BudgetedChaseTest, DepthLimitCommitsNoPartialHead) {
  // Regression: a trigger whose head overflows the depth budget midway
  // must contribute nothing. Head order P(x), N(f(x)) means the depth
  // overflow strikes after P(x) was staged; P for the aborted trigger
  // must still be absent.
  FunctionId f = ws_.vocab.InternFunction("f", 1);
  SoTgd so;
  so.functions = {f};
  SoPart part;
  part.body = {ws_.A("N", {ws_.V("x")})};
  part.head = {ws_.A("P", {ws_.V("x")}),
               ws_.A("N", {ws_.F("f", {ws_.V("x")})})};
  so.parts = {part};

  ChaseLimits limits;
  limits.max_rounds = 1ull << 40;
  limits.max_facts = 1ull << 40;
  limits.max_term_depth = 5;
  ChaseResult result = Chase(&ws_.arena, &ws_.vocab, so, Seed(), limits);
  EXPECT_EQ(result.stop_reason, StopReason::kDepthLimit);
  RelationId p = ws_.vocab.FindRelation("P");
  RelationId n = ws_.vocab.FindRelation("N");
  // Terms of depth 0..5 exist in N (seed + 5 successors); the trigger on
  // the depth-5 term aborts, so exactly the depth-0..4 triggers committed
  // their P facts: one fewer than the N tuples.
  EXPECT_EQ(result.instance.NumTuples(n),
            result.instance.NumTuples(p) + 1);
}

// ---------------------------------------------------------------------------
// PCP semi-decision under budgets (Figure 4 encodings)

class BudgetedPcpTest : public ::testing::Test {
 protected:
  PcpInstance Unsolvable() {
    PcpInstance pcp;
    pcp.alphabet_size = 2;
    pcp.pairs = {{{1}, {2}}, {{2}, {1}}};
    return pcp;
  }

  PcpChaseOutcome RunWith(ExecutionBudget budget) {
    TestWorkspace ws;
    PcpEncoding enc = BuildPcpEncoding(&ws.arena, &ws.vocab, Unsolvable());
    SoTgd rules = enc.HenkinRuleSet(&ws.arena, &ws.vocab);
    ChaseLimits limits;
    limits.max_rounds = 1ull << 40;
    limits.max_facts = 1ull << 40;
    limits.max_term_depth = 1u << 30;
    limits.budget = budget;
    return SemiDecidePcp(&ws.arena, &ws.vocab, enc, rules, limits);
  }
};

TEST_F(BudgetedPcpTest, ProgressivelyTighterDeadlinesAlwaysStopCleanly) {
  for (uint64_t deadline : {200ull, 50ull, 10ull, 1ull}) {
    ExecutionBudget budget;
    budget.deadline_ms = deadline;
    PcpChaseOutcome outcome = RunWith(budget);
    EXPECT_FALSE(outcome.solved) << "deadline " << deadline;
    EXPECT_EQ(outcome.stop, StopReason::kDeadline);
    EXPECT_EQ(outcome.ToStatus().code(), Status::Code::kResourceExhausted);
  }
}

TEST_F(BudgetedPcpTest, ProgressivelyTighterStepBudgetsAreDeterministic) {
  for (uint64_t steps : {50000ull, 5000ull, 500ull, 1ull}) {
    ExecutionBudget budget;
    budget.max_steps = steps;
    PcpChaseOutcome first = RunWith(budget);
    PcpChaseOutcome second = RunWith(budget);
    EXPECT_EQ(first.stop, StopReason::kStepLimit) << "steps " << steps;
    EXPECT_EQ(first.rounds, second.rounds);
    EXPECT_EQ(first.facts, second.facts);
    EXPECT_EQ(first.budget_steps, second.budget_steps);
  }
}

TEST_F(BudgetedPcpTest, MemoryBudgetStopsTheEncodingChase) {
  ExecutionBudget budget;
  budget.max_memory_bytes = 512 * 1024;
  PcpChaseOutcome outcome = RunWith(budget);
  EXPECT_EQ(outcome.stop, StopReason::kMemoryLimit);
  EXPECT_FALSE(outcome.solved);
}

TEST_F(BudgetedPcpTest, CancellationStopsTheEncodingChase) {
  ExecutionBudget budget;
  budget.cancel.Cancel();
  PcpChaseOutcome outcome = RunWith(budget);
  EXPECT_EQ(outcome.stop, StopReason::kCancelled);
}

TEST_F(BudgetedPcpTest, SolvableInstanceStillSolvesUnderAmpleBudget) {
  TestWorkspace ws;
  PcpInstance pcp;
  pcp.alphabet_size = 2;
  pcp.pairs = {{{1, 2}, {1}}, {{2}, {2, 2}}};
  PcpEncoding enc = BuildPcpEncoding(&ws.arena, &ws.vocab, pcp);
  SoTgd rules = enc.HenkinRuleSet(&ws.arena, &ws.vocab);
  ChaseLimits limits;
  limits.budget.deadline_ms = 60000;  // ample: only a safety net
  PcpChaseOutcome outcome =
      SemiDecidePcp(&ws.arena, &ws.vocab, enc, rules, limits);
  EXPECT_TRUE(outcome.solved);
  EXPECT_TRUE(outcome.ToStatus().ok());
}

// ---------------------------------------------------------------------------
// Model checking under budgets

class BudgetedMcTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;
};

TEST_F(BudgetedMcTest, SoCheckReportsStructuredStepLimitStop) {
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies("so exists f { P(x) -> R(x, f(x)) } .");
  ASSERT_TRUE(program.ok());
  Instance inst(&ws_.vocab);
  ASSERT_TRUE(p.ParseInstanceInto("P(a). P(b). R(a, a2). R(b, b2).", &inst)
                  .ok());
  McOptions options;
  options.budget.max_steps = 1;
  McResult result = CheckSo(ws_.arena, inst, program->dependencies[0].so,
                            options);
  EXPECT_TRUE(result.budget_exceeded);
  EXPECT_EQ(result.stop, StopReason::kStepLimit);
  EXPECT_EQ(result.ToStatus().code(), Status::Code::kResourceExhausted);
  // Untouched budget: the same check completes and reports kFixpoint.
  McResult ok = CheckSo(ws_.arena, inst, program->dependencies[0].so);
  EXPECT_TRUE(ok.satisfied);
  EXPECT_EQ(ok.stop, StopReason::kFixpoint);
  EXPECT_TRUE(ok.ToStatus().ok());
}

TEST_F(BudgetedMcTest, SoCheckHonorsCancellation) {
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies("so exists f { P(x) -> R(x, f(x)) } .");
  ASSERT_TRUE(program.ok());
  Instance inst(&ws_.vocab);
  ASSERT_TRUE(p.ParseInstanceInto("P(a). P(b). R(a, a2). R(b, b2).", &inst)
                  .ok());
  McOptions options;
  options.budget.cancel.Cancel();
  McResult result = CheckSo(ws_.arena, inst, program->dependencies[0].so,
                            options);
  EXPECT_TRUE(result.budget_exceeded);
  EXPECT_EQ(result.stop, StopReason::kCancelled);
}

TEST_F(BudgetedMcTest, HenkinCheckPropagatesTheStopReason) {
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies(
      "henkin { forall e ; exists m(e) } Emp(e) -> Mgr(e, m) .");
  ASSERT_TRUE(program.ok());
  Instance inst(&ws_.vocab);
  ASSERT_TRUE(
      p.ParseInstanceInto("Emp(a). Emp(b). Mgr(a, x). Mgr(b, y).", &inst)
          .ok());
  McOptions options;
  options.budget.max_steps = 1;
  McResult result = CheckHenkin(&ws_.arena, &ws_.vocab, inst,
                                program->dependencies[0].henkin, options);
  EXPECT_TRUE(result.budget_exceeded);
  EXPECT_EQ(result.stop, StopReason::kStepLimit);
}

TEST_F(BudgetedMcTest, TgdViolationSearchStopsOnBudget) {
  Tgd tgd;
  tgd.body = {ws_.A("E", {ws_.V("x"), ws_.V("y")})};
  tgd.head = {ws_.A("E", {ws_.V("y"), ws_.V("z")})};
  tgd.exist_vars = {ws_.Vid("z")};
  Instance inst(&ws_.vocab);
  for (int i = 0; i < 40; ++i) {
    inst.AddFact(ws_.Fc("E", {"a" + std::to_string(i),
                              "a" + std::to_string(i + 1)}));
  }
  ExecutionBudget budget;
  budget.max_steps = 1;
  ResourceGovernor governor(budget);
  auto violation = FindTgdViolation(ws_.arena, inst, tgd, &governor);
  EXPECT_TRUE(governor.exhausted());
  EXPECT_EQ(governor.reason(), StopReason::kStepLimit);
  // nullopt here means "none found within budget", not "satisfied".
  EXPECT_FALSE(violation.has_value());
}

// ---------------------------------------------------------------------------
// Oracles under budgets

TEST(BudgetedOracleTest, ThreeColoringStopsOnStepBudget) {
  // Odd wheel: not 3-colorable, forcing a full exponential refutation.
  Graph graph;
  graph.num_vertices = 12;
  for (uint32_t i = 1; i < graph.num_vertices; ++i) {
    graph.edges.push_back({0, i});
    uint32_t next = (i % (graph.num_vertices - 1)) + 1;
    graph.edges.push_back({i, next});
  }
  ExecutionBudget budget;
  budget.max_steps = 1;
  ResourceGovernor governor(budget);
  EXPECT_EQ(ThreeColorableBudgeted(graph, &governor), std::nullopt);
  EXPECT_EQ(governor.reason(), StopReason::kStepLimit);

  // Unlimited governor and the unbudgeted overload agree.
  ResourceGovernor unlimited;
  EXPECT_EQ(ThreeColorableBudgeted(graph, &unlimited),
            std::optional<bool>(ThreeColorable(graph)));
}

TEST(BudgetedOracleTest, QbfEvaluationStopsOnStepBudget) {
  // ∀x₁∃y₁ ∀x₂∃y₂ … with clauses (xᵢ ∨ yᵢ ∨ ¬yᵢ): trivially true but the
  // evaluator still walks the quantifier tree.
  Qbf qbf;
  qbf.num_pairs = 10;
  for (uint32_t i = 0; i < qbf.num_pairs; ++i) {
    qbf.clauses.push_back(
        {QbfLiteral{QbfLiteral::Kind::kUniversal, i, false},
         QbfLiteral{QbfLiteral::Kind::kExistential, i, false},
         QbfLiteral{QbfLiteral::Kind::kExistential, i, true}});
  }
  ExecutionBudget budget;
  budget.max_steps = 1;
  ResourceGovernor governor(budget);
  EXPECT_EQ(EvaluateQbfBudgeted(qbf, &governor), std::nullopt);
  EXPECT_EQ(governor.reason(), StopReason::kStepLimit);

  ResourceGovernor unlimited;
  EXPECT_EQ(EvaluateQbfBudgeted(qbf, &unlimited),
            std::optional<bool>(EvaluateQbf(qbf)));
}

TEST(BudgetedOracleTest, PcpSearchStopsOnStepBudget) {
  // (11, 1): the overhang grows forever; only the length bound or the
  // budget ends the BFS.
  PcpInstance pcp;
  pcp.alphabet_size = 1;
  pcp.pairs = {{{1, 1}, {1}}};
  ExecutionBudget budget;
  budget.max_steps = 100;
  ResourceGovernor governor(budget);
  PcpSearchOutcome outcome = SolvePcpBudgeted(pcp, 1u << 20, &governor);
  EXPECT_FALSE(outcome.witness.has_value());
  EXPECT_FALSE(outcome.Complete());
  EXPECT_EQ(outcome.stop, StopReason::kStepLimit);
  EXPECT_GT(outcome.configs, 0u);
}

TEST(BudgetedOracleTest, PcpSearchStopsOnMemoryBudget) {
  PcpInstance pcp;
  pcp.alphabet_size = 1;
  pcp.pairs = {{{1, 1}, {1}}};
  ExecutionBudget budget;
  budget.max_memory_bytes = 4096;
  ResourceGovernor governor(budget);
  PcpSearchOutcome outcome = SolvePcpBudgeted(pcp, 1u << 20, &governor);
  EXPECT_FALSE(outcome.Complete());
  EXPECT_EQ(outcome.stop, StopReason::kMemoryLimit);
}

// ---------------------------------------------------------------------------
// End-to-end: the CLI surface of the budget

class BudgetTempFile {
 public:
  BudgetTempFile(const std::string& tag, const std::string& content) {
    static int counter = 0;
    path_ = testing::TempDir() + "/tgdkit_budget_" + tag + "_" +
            std::to_string(counter++) + ".txt";
    std::ofstream out(path_);
    out << content;
  }
  ~BudgetTempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

TEST(BudgetCliTest, DeadlineStopsNonTerminatingChaseWithCleanStatus) {
  // A chase that runs forever must stop cleanly under --deadline-ms with
  // a partial instance, a machine-readable ResourceExhausted status, and
  // the resource exit code (docs/FORMAT.md).
  BudgetTempFile deps("deps", "succ: N(x) -> exists y . N(y) & E(x, y) .\n");
  BudgetTempFile inst("inst", "N(a) .\n");
  std::ostringstream out, err;
  int code = RunCli({"chase", deps.path(), inst.path(), "--deadline-ms",
                     "200", "--max-depth", "100000000", "--max-rounds",
                     "100000000", "--max-facts", "1000000000"},
                    out, err);
  EXPECT_EQ(code, 4) << err.str();
  EXPECT_NE(out.str().find("# chase deadline"), std::string::npos)
      << out.str();
  EXPECT_NE(out.str().find(
                "# status: ResourceExhausted: chase stopped by deadline"),
            std::string::npos)
      << out.str();
  // The partial instance is printed after the status lines.
  EXPECT_NE(out.str().find("N(a)"), std::string::npos);
}

TEST(BudgetCliTest, StepBudgetIsDeterministicThroughTheCli) {
  BudgetTempFile deps("deps", "succ: N(x) -> exists y . N(y) & E(x, y) .\n");
  BudgetTempFile inst("inst", "N(a) .\n");
  std::vector<std::string> args = {
      "chase",       deps.path(), inst.path(),  "--max-steps",
      "5000",        "--max-depth", "100000000", "--max-rounds",
      "100000000"};
  std::ostringstream out1, out2, err;
  EXPECT_EQ(RunCli(args, out1, err), 4);
  EXPECT_EQ(RunCli(args, out2, err), 4);
  EXPECT_NE(out1.str().find("chase stopped by step-limit"),
            std::string::npos)
      << out1.str();
  EXPECT_EQ(out1.str(), out2.str());
}

TEST(BudgetCliTest, CheckReportsUnknownWhenTheBudgetRunsOut) {
  BudgetTempFile deps("deps", "t: E(x, y) -> exists z . E(y, z) .\n");
  std::string facts;
  for (int i = 0; i < 30; ++i) {
    facts += "E(a" + std::to_string(i) + ", a" + std::to_string(i + 1) +
             ") .\n";
  }
  BudgetTempFile inst("inst", facts);
  std::ostringstream out, err;
  int code = RunCli({"check", deps.path(), inst.path(), "--max-steps", "1"},
                    out, err);
  EXPECT_NE(out.str().find("UNKNOWN (step-limit)"), std::string::npos)
      << out.str();
  EXPECT_NE(code, 0);  // not everything verified satisfied
}

TEST(BudgetCliTest, GlobalCancellationTokenStopsTheChase) {
  GlobalCancellationToken().Cancel();
  BudgetTempFile deps("deps", "succ: N(x) -> exists y . N(y) & E(x, y) .\n");
  BudgetTempFile inst("inst", "N(a) .\n");
  std::ostringstream out, err;
  int code = RunCli({"chase", deps.path(), inst.path(), "--max-rounds",
                     "100000000", "--max-depth", "100000000"},
                    out, err);
  GlobalCancellationToken().Reset();
  EXPECT_EQ(code, 4);
  EXPECT_NE(out.str().find("chase stopped by cancelled"), std::string::npos)
      << out.str();
}

TEST(BudgetedOracleTest, PcpSearchAgreesWithUnbudgetedSolver) {
  PcpInstance solvable;
  solvable.alphabet_size = 2;
  solvable.pairs = {{{1, 2}, {1}}, {{2}, {2, 2}}};
  ResourceGovernor unlimited;
  PcpSearchOutcome outcome = SolvePcpBudgeted(solvable, 12, &unlimited);
  EXPECT_TRUE(outcome.Complete());
  ASSERT_TRUE(outcome.witness.has_value());
  EXPECT_TRUE(CheckPcpSolution(solvable, *outcome.witness));
  EXPECT_EQ(outcome.witness, SolvePcp(solvable, 12));

  PcpInstance unsolvable;
  unsolvable.alphabet_size = 2;
  unsolvable.pairs = {{{1}, {2}}, {{2}, {1}}};
  ResourceGovernor unlimited2;
  PcpSearchOutcome no = SolvePcpBudgeted(unsolvable, 12, &unlimited2);
  EXPECT_TRUE(no.Complete());
  EXPECT_FALSE(no.witness.has_value());
}

}  // namespace
}  // namespace tgdkit
