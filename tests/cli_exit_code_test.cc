// Exit-code contract audit (docs/FORMAT.md, "Exit codes"): every
// subcommand must map its outcome onto the shared table in src/cli/cli.h
// — 0 ok, 1 usage, 2 input, 3 negative verdict, 4 resource-stopped,
// 5 internal. The batch supervisor's retry policy keys off these values,
// so a drift here silently turns "retry with a bigger budget" into
// "quarantine as misconfigured".
#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.h"

namespace tgdkit {
namespace {

class ExitCodeTempFile {
 public:
  ExitCodeTempFile(const std::string& tag, const std::string& content) {
    static int counter = 0;
    path_ = testing::TempDir() + "/tgdkit_exit_" + tag + "_" +
            std::to_string(counter++) + ".txt";
    std::ofstream out(path_);
    out << content;
  }
  ~ExitCodeTempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun RunTool(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  int code = RunCli(args, out, err);
  return {code, out.str(), err.str()};
}

// An infinite chase (fresh successor forever) and a finite one.
constexpr char kInfinite[] = "succ: N(x) -> exists y . N(y) & E(x, y) .\n";
constexpr char kFinite[] = "t: E(x, y) & E(y, z) -> E(x, z) .\n";

TEST(ExitCodeTest, StatusAndStopMappersFollowTheTable) {
  EXPECT_EQ(ExitCodeForStop(StopReason::kFixpoint), kExitOk);
  EXPECT_EQ(ExitCodeForStop(StopReason::kDeadline), kExitResource);
  EXPECT_EQ(ExitCodeForStop(StopReason::kStepLimit), kExitResource);
  EXPECT_EQ(ExitCodeForStop(StopReason::kCancelled), kExitResource);
  EXPECT_EQ(ExitCodeForStatus(Status::Ok()), kExitOk);
  EXPECT_EQ(ExitCodeForStatus(Status::NotFound("x")), kExitInput);
  EXPECT_EQ(ExitCodeForStatus(Status::ParseError("x")), kExitInput);
  EXPECT_EQ(ExitCodeForStatus(Status::DataLoss("x")), kExitInput);
  EXPECT_EQ(ExitCodeForStatus(Status::InvalidArgument("x")), kExitInput);
  EXPECT_EQ(ExitCodeForStatus(Status::ResourceExhausted("x")),
            kExitResource);
  EXPECT_EQ(ExitCodeForStatus(Status::Internal("x")), kExitInternal);
}

TEST(ExitCodeTest, UsageErrorsExitOne) {
  EXPECT_EQ(RunTool({}).code, kExitUsage);
  EXPECT_EQ(RunTool({"frobnicate"}).code, kExitUsage);
  EXPECT_EQ(RunTool({"chase", "--not-an-option"}).code, kExitUsage);
  EXPECT_EQ(RunTool({"chase", "only-one-positional"}).code, kExitUsage);
  EXPECT_EQ(RunTool({"chase", "a", "b", "--max-steps", "NaN"}).code,
            kExitUsage);
  // --checkpoint/--resume are chase-only.
  EXPECT_EQ(RunTool({"lint", "x.tgd", "--checkpoint", "s.snap"}).code,
            kExitUsage);
  EXPECT_EQ(RunTool({"batch", "--not-an-option", "m"}).code, kExitUsage);
  EXPECT_EQ(RunTool({"batch"}).code, kExitUsage);
}

TEST(ExitCodeTest, MissingOrUnparseableInputsExitTwo) {
  ExitCodeTempFile inst("inst", "N(a) .\n");
  for (const char* cmd : {"classify", "lint", "normalize", "dot"}) {
    EXPECT_EQ(RunTool({cmd, "/nonexistent/deps.tgd"}).code, kExitInput) << cmd;
  }
  for (const char* cmd : {"chase", "check", "explain", "solve"}) {
    EXPECT_EQ(RunTool({cmd, "/nonexistent/deps.tgd", inst.path()}).code,
              kExitInput)
        << cmd;
  }
  ExitCodeTempFile garbage("garbage", "this is not a dependency @@@\n");
  EXPECT_EQ(RunTool({"classify", garbage.path()}).code, kExitInput);
  EXPECT_EQ(RunTool({"chase", "--resume", "/nonexistent/x.snap"}).code,
            kExitInput);
  EXPECT_EQ(RunTool({"batch", "/nonexistent/m.manifest"}).code, kExitInput);
}

TEST(ExitCodeTest, ChaseFixpointExitsZeroBudgetStopExitsFour) {
  ExitCodeTempFile deps("deps", kFinite);
  ExitCodeTempFile inst("inst", "E(a, b) .\nE(b, c) .\n");
  CliRun fix = RunTool({"chase", deps.path(), inst.path()});
  EXPECT_EQ(fix.code, kExitOk) << fix.err;
  EXPECT_NE(fix.out.find("# status: OK"), std::string::npos) << fix.out;

  ExitCodeTempFile inf("inf", kInfinite);
  ExitCodeTempFile seed("seed", "N(a) .\n");
  CliRun stopped = RunTool({"chase", inf.path(), seed.path(), "--max-rounds",
                        "2", "--max-depth", "100000000"});
  EXPECT_EQ(stopped.code, kExitResource) << stopped.err;
  EXPECT_NE(stopped.out.find(
                "# status: ResourceExhausted: chase stopped by round-limit"),
            std::string::npos)
      << stopped.out;
}

TEST(ExitCodeTest, CheckVerdictOutranksUnknown) {
  ExitCodeTempFile deps("deps", "every: Emp(e) -> exists m . Mgr(e, m) .\n");
  ExitCodeTempFile sat("sat", "Emp(a) .\nMgr(a, b) .\n");
  ExitCodeTempFile bad("bad", "Emp(a) .\n");
  CliRun ok = RunTool({"check", deps.path(), sat.path()});
  EXPECT_EQ(ok.code, kExitOk) << ok.out;
  EXPECT_NE(ok.out.find("# status: OK"), std::string::npos);
  CliRun violated = RunTool({"check", deps.path(), bad.path()});
  EXPECT_EQ(violated.code, kExitVerdict) << violated.out;

  // Starved of budget the verdict is UNKNOWN: a resource exit.
  std::string chain;
  for (int i = 0; i < 40; ++i) {
    chain += "Emp(a" + std::to_string(i) + ") .\nMgr(a" +
             std::to_string(i) + ", m) .\n";
  }
  ExitCodeTempFile big("big", chain);
  CliRun unknown =
      RunTool({"check", deps.path(), big.path(), "--max-steps", "1"});
  EXPECT_EQ(unknown.code, kExitResource) << unknown.out;
  EXPECT_NE(unknown.out.find("# status: ResourceExhausted"),
            std::string::npos)
      << unknown.out;

  // A definite violation stands even when other rules are starved: the
  // cheap first rule is VIOLATED before the budget runs out on the big
  // second one.
  ExitCodeTempFile two("two",
                       "v: P(x) -> Q(x) .\n"
                       "every: Emp(e) -> exists m . Mgr(e, m) .\n");
  ExitCodeTempFile mixed("mixed", "P(a) .\n" + chain);
  CliRun both =
      RunTool({"check", two.path(), mixed.path(), "--max-steps", "2"});
  EXPECT_EQ(both.code, kExitVerdict) << both.out;
  EXPECT_NE(both.out.find("UNKNOWN (step-limit)"), std::string::npos)
      << both.out;
}

TEST(ExitCodeTest, CertainAndExplainFollowTheChaseStop) {
  ExitCodeTempFile inf("inf", kInfinite);
  ExitCodeTempFile seed("seed", "N(a) .\n");
  CliRun truncated = RunTool({"certain", inf.path(), seed.path(),
                          "ans(x) :- N(x).", "--max-rounds", "2",
                          "--max-depth", "100000000"});
  EXPECT_EQ(truncated.code, kExitResource) << truncated.out;
  EXPECT_NE(truncated.out.find("# status: ResourceExhausted"),
            std::string::npos)
      << truncated.out;

  ExitCodeTempFile fin("fin", kFinite);
  ExitCodeTempFile edges("edges", "E(a, b) .\nE(b, c) .\n");
  CliRun complete = RunTool({"certain", fin.path(), edges.path(),
                         "ans(x, z) :- E(x, z)."});
  EXPECT_EQ(complete.code, kExitOk) << complete.out;
  EXPECT_NE(complete.out.find("# status: OK"), std::string::npos);

  CliRun explain_ok = RunTool({"explain", fin.path(), edges.path()});
  EXPECT_EQ(explain_ok.code, kExitOk) << explain_ok.out;
  CliRun explain_cut = RunTool({"explain", inf.path(), seed.path(),
                            "--max-rounds", "2", "--max-depth",
                            "100000000"});
  EXPECT_EQ(explain_cut.code, kExitResource) << explain_cut.out;
}

TEST(ExitCodeTest, SolveEmitsStatusAndExitsZeroOnUniversalSolution) {
  ExitCodeTempFile deps("deps", "st: S(x, y) -> exists z . T(x, z) .\n");
  ExitCodeTempFile inst("inst", "S(a, b) .\n");
  CliRun run = RunTool({"solve", deps.path(), inst.path()});
  EXPECT_EQ(run.code, kExitOk) << run.err;
  EXPECT_NE(run.out.find("# status: OK"), std::string::npos) << run.out;
}

TEST(ExitCodeTest, LintFindingsAreAVerdictNotAnError) {
  ExitCodeTempFile clean("clean", "E(x, y) & E(y, z) -> E(x, z) .\n");
  EXPECT_EQ(RunTool({"lint", clean.path()}).code, kExitOk);
  ExitCodeTempFile noisy("noisy", "P(x) -> Q(x, y) .\n");
  EXPECT_EQ(RunTool({"lint", noisy.path()}).code, kExitVerdict);
  EXPECT_EQ(RunTool({"lint", noisy.path(), "--format=yaml"}).code, kExitUsage);
}

TEST(ExitCodeTest, FailedCheckpointIsAnInternalError) {
  ExitCodeTempFile deps("deps", kFinite);
  ExitCodeTempFile inst("inst", "E(a, b) .\nE(b, c) .\n");
  // Snapshots to a directory that cannot exist: the chase itself still
  // completes (the result is on stdout) but the durability promise broke.
  CliRun run = RunTool({"chase", deps.path(), inst.path(), "--checkpoint",
                    "/nonexistent-dir/x.snap"});
  EXPECT_EQ(run.code, kExitInternal) << run.err;
  EXPECT_NE(run.err.find("tgdkit: checkpoint:"), std::string::npos)
      << run.err;
  EXPECT_NE(run.out.find("# chase fixpoint"), std::string::npos);
}

TEST(ExitCodeTest, SelftestDiesExactlyAsInstructed) {
  EXPECT_EQ(RunTool({"selftest"}).code, kExitOk);
  EXPECT_EQ(RunTool({"selftest", "--die-exit", "7"}).code, 7);
  EXPECT_EQ(RunTool({"selftest", "--bogus"}).code, kExitUsage);
  CliRun noisy = RunTool({"selftest", "--stdout-lines", "2", "--stderr-lines",
                      "1"});
  EXPECT_EQ(noisy.code, kExitOk);
  EXPECT_NE(noisy.out.find("selftest stdout line 1"), std::string::npos);
  EXPECT_NE(noisy.err.find("selftest stderr line 0"), std::string::npos);
}

TEST(ExitCodeTest, DiagnosticsGoToStderrPayloadToStdout) {
  // Stream hygiene: every failing invocation above must put its
  // diagnostic on stderr and nothing non-machine-readable on stdout.
  ExitCodeTempFile inst("inst", "N(a) .\n");
  for (auto args : std::vector<std::vector<std::string>>{
           {"chase", "/nonexistent/deps.tgd", inst.path()},
           {"classify", "/nonexistent/deps.tgd"},
           {"chase", "--not-an-option"},
           {"batch", "/nonexistent/m.manifest"},
       }) {
    CliRun run = RunTool(args);
    EXPECT_NE(run.code, kExitOk);
    EXPECT_TRUE(run.out.empty()) << "stdout polluted: " << run.out;
    EXPECT_FALSE(run.err.empty()) << "diagnostic missing on stderr";
  }
}

}  // namespace
}  // namespace tgdkit
