// Combined fault matrix: the chase running with the spill backend AND
// multiple threads AND periodic checkpointing, SIGKILLed at randomized
// durable-write ordinals across all three crash phases, must resume to
// output byte-identical to a clean in-core serial run (modulo the
// process-local spill/thread status tokens, which are normalized away).
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.h"

namespace tgdkit {
namespace {

namespace fs = std::filesystem;

constexpr char kRules[] =
    "t: E(x, y) & E(y, z) -> E(x, z) .\n"
    "m: E(x, y) -> exists w . M(x, w) .\n";

/// Blanks the thread/spill-specific tokens of '# status:' lines, the only
/// part of chase stdout that may differ between execution modes.
std::string Normalize(const std::string& text) {
  std::string out;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (line.rfind("# status:", 0) == 0) {
      std::istringstream tokens(line);
      std::string token, rebuilt;
      while (tokens >> token) {
        if (token.rfind("threads=", 0) == 0) token = "threads=*";
        if (token.rfind("spill_segments=", 0) == 0 ||
            token.rfind("spill_bytes=", 0) == 0) {
          continue;
        }
        if (!rebuilt.empty()) rebuilt += ' ';
        rebuilt += token;
      }
      line = rebuilt;
    }
    out += line;
    out += '\n';
  }
  return out;
}

class SpillCrashMatrixTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/tgdkit_spill_crash_" +
           std::to_string(getpid());
    fs::create_directories(dir_);
    rules_path_ = dir_ + "/rules.tgd";
    inst_path_ = dir_ + "/input.inst";
    snap_path_ = dir_ + "/ckpt.snap";
    spill_dir_ = dir_ + "/spill";
    std::ofstream(rules_path_) << kRules;
    std::string facts;
    for (int i = 0; i + 1 < 14; ++i) {
      facts += "E(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
               ") .\n";
    }
    std::ofstream(inst_path_) << facts;

    // The reference: clean, in-core, serial.
    std::ostringstream out, err;
    int code = RunCli({"chase", rules_path_, inst_path_, "--seed", "7"},
                      out, err);
    ASSERT_EQ(code, 0) << err.str();
    golden_ = Normalize(out.str());
  }
  void TearDown() override {
    std::error_code ec;
    fs::remove_all(dir_, ec);
  }

  std::vector<std::string> MatrixArgs() const {
    return {"chase",     rules_path_, inst_path_,
            "--seed",    "7",         "--threads",
            "3",         "--spill-dir", spill_dir_,
            "--spill-segment-kb", "4"};
  }

  /// Runs the spill+threads chase with checkpointing in a forked child,
  /// armed to die at durable write `crash_at` in `phase`. True if killed.
  bool RunChildToDeath(uint64_t crash_at, const char* phase) {
    std::error_code ec;
    fs::remove(snap_path_, ec);
    fs::remove(snap_path_ + ".tmp", ec);
    fs::remove_all(spill_dir_, ec);
    fs::create_directories(spill_dir_, ec);
    pid_t pid = fork();
    if (pid == 0) {
      setenv("TGDKIT_CRASH_AT", std::to_string(crash_at).c_str(), 1);
      setenv("TGDKIT_CRASH_PHASE", phase, 1);
      std::vector<std::string> args = MatrixArgs();
      args.insert(args.end(), {"--checkpoint", snap_path_,
                               "--checkpoint-every-steps", "1"});
      std::ostringstream out, err;
      RunCli(args, out, err);
      _exit(0);
    }
    int status = 0;
    EXPECT_EQ(waitpid(pid, &status, 0), pid);
    if (WIFSIGNALED(status)) {
      EXPECT_EQ(WTERMSIG(status), SIGKILL);
      return true;
    }
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
    return false;
  }

  void ResumeAndCompare(const std::string& label) {
    // Resume stays in spill mode with multiple threads: the full matrix.
    std::ostringstream out, err;
    int code = RunCli({"chase", "--resume", snap_path_, "--threads", "3",
                       "--spill-dir", spill_dir_, "--spill-segment-kb", "4"},
                      out, err);
    ASSERT_EQ(code, 0) << label << ": " << err.str();
    EXPECT_EQ(Normalize(out.str()), golden_) << label;
  }

  std::string dir_, rules_path_, inst_path_, snap_path_, spill_dir_, golden_;
};

TEST_F(SpillCrashMatrixTest, CleanMatrixRunMatchesInCoreSerialGolden) {
  std::ostringstream out, err;
  int code = RunCli(MatrixArgs(), out, err);
  ASSERT_EQ(code, 0) << err.str();
  EXPECT_EQ(Normalize(out.str()), golden_);
}

TEST_F(SpillCrashMatrixTest, KillAndResumeAcrossThePhaseMatrix) {
  // Fixed crash ordinals crossed with all three phases: every kill that
  // leaves a checkpoint must resume — still spilled, still threaded — to
  // the in-core serial golden output.
  const char* phases[] = {"begin", "mid", "commit"};
  int resumed = 0;
  for (uint64_t crash_at : {2ull, 3ull, 5ull}) {
    for (const char* phase : phases) {
      std::string label = "crash_at=" + std::to_string(crash_at) +
                          " phase=" + phase;
      bool killed = RunChildToDeath(crash_at, phase);
      std::ifstream snap(snap_path_, std::ios::binary);
      if (!snap.good()) {
        // Died before the first commit: nothing to resume is legal only
        // for early kills.
        EXPECT_TRUE(killed) << label;
        EXPECT_LE(crash_at, 2u) << label;
        continue;
      }
      ++resumed;
      ResumeAndCompare(label);
    }
  }
  EXPECT_GE(resumed, 6) << "the matrix must actually exercise resume";
}

}  // namespace
}  // namespace tgdkit
