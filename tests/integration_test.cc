// End-to-end integration stories exercising the full pipeline: parse →
// classify → normalize → chase → query → model-check, plus parser
// robustness against malformed input (must error, never crash).
#include <gtest/gtest.h>

#include "base/rng.h"
#include "chase/chase.h"
#include "classify/criteria.h"
#include "dep/skolem.h"
#include "dep/syntactic.h"
#include "gen/generators.h"
#include "homo/core.h"
#include "mc/model_check.h"
#include "parse/parser.h"
#include "query/query.h"
#include "tests/test_util.h"
#include "transform/composition.h"
#include "transform/nested.h"

namespace tgdkit {
namespace {

TEST(IntegrationTest, FullPipelineStory) {
  // The complete workflow a downstream user runs, on the paper's domain.
  TestWorkspace ws;
  Parser parser(&ws.arena, &ws.vocab);

  // 1. Parse a mixed program.
  auto program = parser.ParseDependencies(R"(
    hire:    Emp(e, d) -> exists m . Mgr(e, m) .
    dm:      so exists fdm { Emp(e, d) -> DeptMgr(e, fdm(d)) } .
    orgtree: nested Dep(d) -> exists u . Node(u, d) &
               [ Emp(e, d) -> Leaf(u, e) ] .
  )");
  ASSERT_TRUE(program.ok()) << program.status().ToString();

  // 2. Classify everything; the tgd sits at the bottom of both diagrams.
  SoTgd hire_so = TgdToSo(&ws.arena, &ws.vocab,
                          program->dependencies[0].tgd);
  Figure1Membership f1 = ClassifyFigure1(ws.arena, hire_so);
  EXPECT_TRUE(f1.tgd && f1.henkin && f1.plain_so);
  Figure2Membership f2 = ClassifyFigure2(ws.arena, hire_so);
  EXPECT_TRUE(f2.linear && f2.guarded && f2.weakly_acyclic && f2.sticky);

  // 3. Normalize the nested tgd both ways; both must validate.
  const NestedTgd& orgtree = program->dependencies[2].nested;
  SoTgd normalized = NestedToSo(&ws.arena, &ws.vocab, orgtree);
  EXPECT_EQ(normalized.parts.size(), 2u);
  std::vector<HenkinTgd> henkins =
      NestedToHenkin(&ws.arena, &ws.vocab, orgtree);
  EXPECT_EQ(henkins.size(), 2u);

  // 4. Chase everything together.
  Instance source(&ws.vocab);
  ASSERT_TRUE(parser.ParseInstanceInto(
                   "Emp(alice, cs). Emp(bob, cs). Dep(cs).", &source)
                  .ok());
  std::vector<Tgd> tgds = program->Tgds();
  std::vector<SoTgd> pieces{TgdsToSo(&ws.arena, &ws.vocab, tgds),
                            program->Sos()[0], normalized};
  SoTgd merged = MergeSo(pieces);
  ChaseResult model = Chase(&ws.arena, &ws.vocab, merged, source);
  ASSERT_TRUE(model.Terminated());

  // 5. The model satisfies every input dependency (all engines agree).
  EXPECT_TRUE(CheckTgd(ws.arena, model.instance,
                       program->dependencies[0].tgd));
  EXPECT_TRUE(CheckSo(ws.arena, model.instance, program->Sos()[0])
                  .satisfied);
  EXPECT_TRUE(CheckNested(ws.arena, model.instance, orgtree));
  EXPECT_TRUE(CheckHenkins(&ws.arena, &ws.vocab, model.instance, henkins)
                  .satisfied);

  // 6. Certain answers over the chased model.
  auto query = parser.ParseQuery("ans(e) :- Leaf(u, e).");
  ASSERT_TRUE(query.ok());
  CertainAnswers answers = ComputeCertainAnswers(
      &ws.arena, &ws.vocab, merged, source, *query);
  EXPECT_TRUE(answers.Complete());
  EXPECT_EQ(answers.answers.size(), 2u);  // alice and bob

  // 7. The core of the model is hom-equivalent and no larger.
  Instance core = ComputeCore(&ws.arena, &ws.vocab, model.instance);
  EXPECT_LE(core.NumFacts(), model.instance.NumFacts());
  EXPECT_TRUE(HomomorphicallyEquivalent(&ws.arena, &ws.vocab,
                                        model.instance, core));
}

TEST(IntegrationTest, ComposedChainMatchesSequentialChaseRandomized) {
  // Property: for random 2-chains of single-tgd mappings, the composed SO
  // tgd's chase agrees with the sequential chase on final-schema facts.
  Rng rng(515151);
  int compared = 0;
  for (int trial = 0; trial < 12 && compared < 8; ++trial) {
    TestWorkspace ws;
    Parser parser(&ws.arena, &ws.vocab);
    // Mapping 1: A -> B with optional invention; Mapping 2: B -> C.
    bool invent1 = rng.Chance(50);
    bool invent2 = rng.Chance(50);
    std::string m1_text = invent1
                              ? "A(x1, x2) -> exists v . B(x1, v) ."
                              : "A(x1, x2) -> B(x1, x2) .";
    std::string m2_text = invent2
                              ? "B(y1, y2) -> exists w . Cc(y2, w) ."
                              : "B(y1, y2) -> Cc(y2, y1) .";
    auto m1 = parser.ParseDependencies(m1_text);
    auto m2 = parser.ParseDependencies(m2_text);
    ASSERT_TRUE(m1.ok() && m2.ok());
    std::vector<Tgd> s1 = m1->Tgds(), s2 = m2->Tgds();
    auto composed = ComposeMappings(&ws.arena, &ws.vocab, s1, s2);
    ASSERT_TRUE(composed.ok());
    if (composed->parts.empty()) continue;

    Instance source(&ws.vocab);
    RelationId a = ws.vocab.FindRelation("A");
    for (int i = 0; i < 4; ++i) {
      std::vector<Value> args{
          Value::Constant(ws.vocab.InternConstant("k" + std::to_string(
                                                           rng.Below(3)))),
          Value::Constant(ws.vocab.InternConstant("v" + std::to_string(
                                                           rng.Below(3))))};
      source.AddFact(a, args);
    }
    SoTgd so1 = TgdsToSo(&ws.arena, &ws.vocab, s1);
    SoTgd so2 = TgdsToSo(&ws.arena, &ws.vocab, s2);
    ChaseResult step1 = Chase(&ws.arena, &ws.vocab, so1, source);
    ChaseResult step2 = Chase(&ws.arena, &ws.vocab, so2, step1.instance);
    ChaseResult direct = Chase(&ws.arena, &ws.vocab, *composed, source);
    ASSERT_TRUE(step2.Terminated() && direct.Terminated());

    // Compare the C relation up to homomorphic equivalence (restricted to
    // the final schema).
    RelationId c = ws.vocab.FindRelation("Cc");
    auto restrict = [&](const Instance& inst) {
      Instance only(&ws.vocab);
      only.EnsureNulls(inst.num_nulls());
      for (const Fact& fact : inst.AllFacts()) {
        if (fact.relation == c) only.AddFact(fact);
      }
      return only;
    };
    Instance via_steps = restrict(step2.instance);
    Instance via_composed = restrict(direct.instance);
    EXPECT_TRUE(HomomorphicallyEquivalent(&ws.arena, &ws.vocab, via_steps,
                                          via_composed))
        << "trial " << trial << " m1=" << m1_text << " m2=" << m2_text;
    ++compared;
  }
  EXPECT_GE(compared, 4);
}

TEST(IntegrationTest, ParserNeverCrashesOnMangledInput) {
  // Deterministic fuzz: random token soups must produce ParseError (or,
  // rarely, parse) — never crash or hang.
  const char* fragments[] = {"P(x)",  "->",     "exists", "forall", "so",
                             "nested", "henkin", "{",      "}",      "[",
                             "]",      "&",      ";",      ",",      ".",
                             "=",      "f(x)",   "\"c\"",  "42",     ":"};
  Rng rng(616161);
  for (int trial = 0; trial < 300; ++trial) {
    TestWorkspace ws;
    Parser parser(&ws.arena, &ws.vocab);
    std::string soup;
    uint32_t length = 1 + static_cast<uint32_t>(rng.Below(12));
    for (uint32_t i = 0; i < length; ++i) {
      soup += fragments[rng.Below(std::size(fragments))];
      soup += " ";
    }
    auto program = parser.ParseDependencies(soup);
    // Either outcome is fine; we only require graceful behavior.
    if (!program.ok()) {
      EXPECT_EQ(program.status().code(), Status::Code::kParseError) << soup;
    }
  }
}

TEST(IntegrationTest, InstanceParserNeverCrashesOnMangledInput) {
  const char* fragments[] = {"R(a)",  "R(a, b)", "(", ")", ",", ".",
                             "_null", "\"c\"",   "x", "42"};
  Rng rng(717171);
  for (int trial = 0; trial < 200; ++trial) {
    TestWorkspace ws;
    Parser parser(&ws.arena, &ws.vocab);
    std::string soup;
    uint32_t length = 1 + static_cast<uint32_t>(rng.Below(10));
    for (uint32_t i = 0; i < length; ++i) {
      soup += fragments[rng.Below(std::size(fragments))];
      soup += " ";
    }
    Instance inst(&ws.vocab);
    Status status = parser.ParseInstanceInto(soup, &inst);
    if (!status.ok()) {
      EXPECT_EQ(status.code(), Status::Code::kParseError) << soup;
    }
  }
}

}  // namespace
}  // namespace tgdkit
