// Tests for the critical-instance termination check (empirical proxy for
// the paper's finite-expansion-set class) and the lexer's edge cases.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "classify/criteria.h"
#include "dep/skolem.h"
#include "gen/generators.h"
#include "parse/lexer.h"
#include "parse/parser.h"
#include "reduce/pcp.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

class CriticalTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;
};

TEST_F(CriticalTest, WeaklyAcyclicRulesTerminate) {
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies(
      "Person(x) -> exists y . Parent(x, y) .\n"
      "Parent(x, y) -> Anc(x, y) .\n"
      "Anc(x, y) & Anc(y, z) -> Anc(x, z) .");
  ASSERT_TRUE(program.ok());
  std::vector<Tgd> tgds = program->Tgds();
  SoTgd so = TgdsToSo(&ws_.arena, &ws_.vocab, tgds);
  ASSERT_TRUE(IsWeaklyAcyclic(ws_.arena, so));
  std::vector<RelationId> relations{ws_.vocab.FindRelation("Person"),
                                    ws_.vocab.FindRelation("Parent"),
                                    ws_.vocab.FindRelation("Anc")};
  CriticalInstanceReport report = TerminatesOnCriticalInstance(
      &ws_.arena, &ws_.vocab, so, relations);
  EXPECT_TRUE(report.terminated);
}

TEST_F(CriticalTest, SelfFeedingRulesDoNotTerminate) {
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies("so exists f { P(x) -> P(f(x)) } .");
  ASSERT_TRUE(program.ok());
  std::vector<RelationId> relations{ws_.vocab.FindRelation("P")};
  ChaseLimits limits;
  limits.max_term_depth = 20;
  CriticalInstanceReport report = TerminatesOnCriticalInstance(
      &ws_.arena, &ws_.vocab, program->Sos()[0], relations, limits);
  EXPECT_FALSE(report.terminated);
}

TEST_F(CriticalTest, PcpEncodingDoesNotTerminate) {
  PcpInstance pcp{2, {{{1}, {2}}, {{2}, {1}}}};
  PcpEncoding enc = BuildPcpEncoding(&ws_.arena, &ws_.vocab, pcp);
  SoTgd rules = enc.HenkinRuleSet(&ws_.arena, &ws_.vocab);
  std::vector<RelationId> relations;
  for (const char* name : {"Start", "R", "AP0", "AP1", "Done"}) {
    relations.push_back(ws_.vocab.FindRelation(name));
  }
  ChaseLimits limits;
  limits.max_term_depth = 12;
  limits.max_facts = 300000;
  CriticalInstanceReport report = TerminatesOnCriticalInstance(
      &ws_.arena, &ws_.vocab, rules, relations, limits);
  EXPECT_FALSE(report.terminated);
}

TEST_F(CriticalTest, CriticalSubsumesRandomInstances) {
  // If the chase terminates on the critical instance, it terminates on
  // random instances over the same schema (Marnette's theorem, sampled).
  Rng rng(777);
  int witnesses = 0;
  for (int trial = 0; trial < 30 && witnesses < 8; ++trial) {
    TestWorkspace ws;
    auto relations = GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
    std::vector<Tgd> tgds;
    for (int i = 0; i < 3; ++i) {
      tgds.push_back(
          GenerateTgd(&ws.arena, &ws.vocab, &rng, relations, TgdConfig{}));
    }
    SoTgd so = TgdsToSo(&ws.arena, &ws.vocab, tgds);
    ChaseLimits limits;
    limits.max_term_depth = 30;
    limits.max_facts = 300000;
    CriticalInstanceReport report = TerminatesOnCriticalInstance(
        &ws.arena, &ws.vocab, so, relations, limits);
    if (!report.terminated) continue;
    ++witnesses;
    Instance input(&ws.vocab);
    GenerateInstance(&ws.vocab, &rng, relations, 12, 4, 0, &input);
    ChaseResult result = Chase(&ws.arena, &ws.vocab, so, input, limits);
    EXPECT_TRUE(result.Terminated()) << "trial " << trial;
  }
  EXPECT_GT(witnesses, 0);
}

TEST(LexerTest, TokenizesPunctuationAndArrow) {
  auto tokens = Tokenize("( ) , . ; & = -> [ ] { } : :-");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 15u);  // 14 tokens + end
  EXPECT_EQ((*tokens)[7].kind, TokenKind::kArrow);
  EXPECT_EQ((*tokens)[13].kind, TokenKind::kColonDash);
  EXPECT_EQ((*tokens)[14].kind, TokenKind::kEnd);
}

TEST(LexerTest, TracksLinesAndColumns) {
  auto tokens = Tokenize("ab\n  cd");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].line, 1u);
  EXPECT_EQ((*tokens)[0].column, 1u);
  EXPECT_EQ((*tokens)[1].line, 2u);
  EXPECT_EQ((*tokens)[1].column, 3u);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("a // rest of line\n# whole line\nb");
  ASSERT_TRUE(tokens.ok());
  ASSERT_EQ(tokens->size(), 3u);
  EXPECT_EQ((*tokens)[0].text, "a");
  EXPECT_EQ((*tokens)[1].text, "b");
}

TEST(LexerTest, StringsCaptureContents) {
  auto tokens = Tokenize(R"("hello world" "x")");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kString);
  EXPECT_EQ((*tokens)[0].text, "hello world");
}

TEST(LexerTest, UnterminatedStringRejected) {
  auto tokens = Tokenize("\"oops");
  EXPECT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("unterminated"),
            std::string::npos);
}

TEST(LexerTest, IllegalCharacterRejected) {
  auto tokens = Tokenize("a ~ b");
  EXPECT_FALSE(tokens.ok());
  EXPECT_NE(tokens.status().message().find("unexpected character"),
            std::string::npos);
}

TEST(LexerTest, UnderscoreIdentifiers) {
  auto tokens = Tokenize("_null_1 some_var");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].text, "_null_1");
  EXPECT_EQ((*tokens)[1].text, "some_var");
}

TEST(LexerTest, NumbersAreIntTokens) {
  auto tokens = Tokenize("42 x7");
  ASSERT_TRUE(tokens.ok());
  EXPECT_EQ((*tokens)[0].kind, TokenKind::kInt);
  EXPECT_EQ((*tokens)[0].text, "42");
  EXPECT_EQ((*tokens)[1].kind, TokenKind::kIdent);
}

}  // namespace
}  // namespace tgdkit
