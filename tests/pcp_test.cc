// Tests for the Theorem 5.1 / 5.2 PCP encoding: the classifiers must
// place the rule sets exactly where the theorems require them, and the
// chase must semi-decide generated PCP instances in agreement with the
// brute-force oracle.
#include <gtest/gtest.h>

#include "classify/criteria.h"
#include "dep/syntactic.h"
#include "reduce/pcp.h"
#include "tests/test_util.h"
#include "transform/nested.h"

namespace tgdkit {
namespace {

PcpInstance SolvableInstance() {
  // (12, 1), (2, 22): solution [1, 2].
  PcpInstance pcp;
  pcp.alphabet_size = 2;
  pcp.pairs = {{{1, 2}, {1}}, {{2}, {2, 2}}};
  return pcp;
}

PcpInstance UnsolvableInstance() {
  PcpInstance pcp;
  pcp.alphabet_size = 2;
  pcp.pairs = {{{1}, {2}}, {{2}, {1}}};
  return pcp;
}

class PcpEncodingTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;
};

TEST_F(PcpEncodingTest, OnlyTwoHenkinRulesRestAreFull) {
  PcpEncoding enc = BuildPcpEncoding(&ws_.arena, &ws_.vocab,
                                     SolvableInstance());
  // "Undecidability holds even given just two Henkin tgds, while the rest
  //  are full tgds."
  EXPECT_EQ(enc.henkin_rules.size(), 2u);
  for (const Tgd& tgd : enc.full_rules) {
    EXPECT_TRUE(tgd.IsFull());
    EXPECT_TRUE(ValidateTgd(ws_.arena, tgd).ok());
  }
  for (const HenkinTgd& henkin : enc.henkin_rules) {
    EXPECT_TRUE(ValidateHenkinTgd(ws_.arena, henkin).ok());
    EXPECT_TRUE(henkin.IsStandard());
  }
}

TEST_F(PcpEncodingTest, ExactlyTwoUnaryFunctionSymbols) {
  PcpEncoding enc = BuildPcpEncoding(&ws_.arena, &ws_.vocab,
                                     SolvableInstance());
  SoTgd rules = enc.HenkinRuleSet(&ws_.arena, &ws_.vocab);
  EXPECT_EQ(rules.functions.size(), 2u);  // Theorem 5.1's two unary symbols
  for (FunctionId f : rules.functions) {
    EXPECT_EQ(ws_.vocab.FunctionArity(f), 1u);
  }
}

TEST_F(PcpEncodingTest, HenkinVariantIsStickyLinearStandardHenkin) {
  PcpEncoding enc = BuildPcpEncoding(&ws_.arena, &ws_.vocab,
                                     SolvableInstance());
  SoTgd rules = enc.HenkinRuleSet(&ws_.arena, &ws_.vocab);
  ASSERT_TRUE(ValidateSoTgd(ws_.arena, rules).ok());
  Figure2Membership m = ClassifyFigure2(ws_.arena, rules);
  EXPECT_TRUE(m.linear);   // every body is one atom
  EXPECT_TRUE(m.sticky);   // no join variable at all
  EXPECT_TRUE(m.guarded);  // linear ⊂ guarded
  // The encoding of an undecidable problem cannot be weakly acyclic
  // (weak acyclicity implies chase termination).
  EXPECT_FALSE(m.weakly_acyclic);
  // And the Skolemized form is a set of standard Henkin tgds.
  EXPECT_TRUE(IsSkolemizedStandardHenkin(ws_.arena, rules));
}

TEST_F(PcpEncodingTest, NestedVariantIsGuardedNotLinear) {
  PcpEncoding enc = BuildPcpEncoding(&ws_.arena, &ws_.vocab,
                                     SolvableInstance());
  for (const NestedTgd& nested : enc.nested_rules) {
    ASSERT_TRUE(ValidateNestedTgd(ws_.arena, nested).ok());
  }
  SoTgd rules = enc.NestedRuleSet(&ws_.arena, &ws_.vocab);
  ASSERT_TRUE(ValidateSoTgd(ws_.arena, rules).ok());
  Figure2Membership m = ClassifyFigure2(ws_.arena, rules);
  EXPECT_TRUE(m.guarded);
  // "We lose linearity in this way ... as linear nested tgds are just
  //  guarded tgds" (Idea 3+).
  EXPECT_FALSE(m.linear);
  EXPECT_FALSE(m.weakly_acyclic);
  // Note: unlike the paper's N-vector representation (Idea 2), our leaner
  // state-constant representation joins the applied variable `a` between
  // Y(a) and AP(q,a,p) and then drops it into the existential — which the
  // faithful CGP marking punishes. So the nested variant witnesses
  // "guarded simple nested tgds"; set-level stickiness would need the
  // paper's N-vector padding (see DESIGN.md §5). Each application rule is
  // at least guarded on its own:
  for (const NestedTgd& nested : enc.nested_rules) {
    SoTgd alone = NestedToSo(&ws_.arena, &ws_.vocab, nested);
    EXPECT_FALSE(IsSticky(ws_.arena, alone));  // the honest reading
    EXPECT_TRUE(IsGuarded(ws_.arena, alone));
  }
}

TEST_F(PcpEncodingTest, NestedApplicationRulesAreSimple) {
  PcpEncoding enc = BuildPcpEncoding(&ws_.arena, &ws_.vocab,
                                     SolvableInstance());
  for (const NestedTgd& nested : enc.nested_rules) {
    // Y(a) -> exists a2 [ AP(q,a,p) -> Done(q,a2,p) ]: the root has no
    // direct head atoms, so normalization yields a single part — a simple
    // nested tgd (Theorem 5.2).
    SoTgd normalized = NestedToSo(&ws_.arena, &ws_.vocab, nested);
    EXPECT_EQ(normalized.parts.size(), 1u);
  }
}

TEST_F(PcpEncodingTest, ChaseSolvesSolvableInstance) {
  PcpInstance pcp = SolvableInstance();
  PcpEncoding enc = BuildPcpEncoding(&ws_.arena, &ws_.vocab, pcp);
  SoTgd rules = enc.HenkinRuleSet(&ws_.arena, &ws_.vocab);
  ChaseLimits limits;
  limits.max_rounds = 200;
  limits.max_facts = 200000;
  limits.max_term_depth = 64;
  PcpChaseOutcome outcome =
      SemiDecidePcp(&ws_.arena, &ws_.vocab, enc, rules, limits);
  EXPECT_TRUE(outcome.solved);
  ASSERT_TRUE(SolvePcp(pcp, 10).has_value());  // oracle agrees
}

TEST_F(PcpEncodingTest, ChaseDoesNotSolveUnsolvableInstance) {
  PcpInstance pcp = UnsolvableInstance();
  PcpEncoding enc = BuildPcpEncoding(&ws_.arena, &ws_.vocab, pcp);
  SoTgd rules = enc.HenkinRuleSet(&ws_.arena, &ws_.vocab);
  ChaseLimits limits;
  limits.max_rounds = 60;
  limits.max_facts = 100000;
  limits.max_term_depth = 24;
  PcpChaseOutcome outcome =
      SemiDecidePcp(&ws_.arena, &ws_.vocab, enc, rules, limits);
  EXPECT_FALSE(outcome.solved);
  // The chase keeps growing (undecidability in action): it stopped on a
  // budget, not at a fixpoint.
  EXPECT_NE(outcome.stop, ChaseStop::kFixpoint);
  EXPECT_FALSE(SolvePcp(pcp, 12).has_value());  // oracle agrees
}

TEST_F(PcpEncodingTest, NestedVariantChaseAgrees) {
  PcpInstance pcp = SolvableInstance();
  PcpEncoding enc = BuildPcpEncoding(&ws_.arena, &ws_.vocab, pcp);
  SoTgd rules = enc.NestedRuleSet(&ws_.arena, &ws_.vocab);
  ChaseLimits limits;
  limits.max_rounds = 200;
  limits.max_facts = 400000;
  limits.max_term_depth = 64;
  PcpChaseOutcome outcome =
      SemiDecidePcp(&ws_.arena, &ws_.vocab, enc, rules, limits);
  EXPECT_TRUE(outcome.solved);
}

TEST_F(PcpEncodingTest, SingleIdenticalPairSolvesQuickly) {
  PcpInstance pcp;
  pcp.alphabet_size = 1;
  pcp.pairs = {{{1}, {1}}};
  PcpEncoding enc = BuildPcpEncoding(&ws_.arena, &ws_.vocab, pcp);
  SoTgd rules = enc.HenkinRuleSet(&ws_.arena, &ws_.vocab);
  ChaseLimits limits;
  limits.max_rounds = 50;
  PcpChaseOutcome outcome =
      SemiDecidePcp(&ws_.arena, &ws_.vocab, enc, rules, limits);
  EXPECT_TRUE(outcome.solved);
}

TEST_F(PcpEncodingTest, LengthMismatchInstanceNeverSolves) {
  PcpInstance pcp;
  pcp.alphabet_size = 2;
  pcp.pairs = {{{1, 1}, {1}}};  // first word always longer
  PcpEncoding enc = BuildPcpEncoding(&ws_.arena, &ws_.vocab, pcp);
  SoTgd rules = enc.HenkinRuleSet(&ws_.arena, &ws_.vocab);
  ChaseLimits limits;
  limits.max_rounds = 60;
  limits.max_term_depth = 24;
  limits.max_facts = 100000;
  PcpChaseOutcome outcome =
      SemiDecidePcp(&ws_.arena, &ws_.vocab, enc, rules, limits);
  EXPECT_FALSE(outcome.solved);
}

}  // namespace
}  // namespace tgdkit
