// Print/parse round trips for every dependency class, including the SO
// tgd printer (equalities, nested terms, multiple parts) and generated
// corpora. A printed dependency must reparse to a dependency that prints
// identically.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "dep/skolem.h"
#include "gen/generators.h"
#include "parse/parser.h"
#include "tests/test_util.h"
#include "transform/nested.h"

namespace tgdkit {
namespace {

class RoundTripTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;

  /// Parses, prints, reparses, reprints — both printed forms must match.
  template <typename Get, typename Print>
  void CheckRoundTrip(const std::string& text, Get get, Print print) {
    Parser parser(&ws_.arena, &ws_.vocab);
    auto first = parser.ParseDependencies(text);
    ASSERT_TRUE(first.ok()) << text << "\n" << first.status().ToString();
    std::string printed = print(get(*first)) + " .";
    auto second = parser.ParseDependencies(printed);
    ASSERT_TRUE(second.ok()) << printed << "\n"
                             << second.status().ToString();
    EXPECT_EQ(print(get(*second)), print(get(*first))) << printed;
  }
};

TEST_F(RoundTripTest, SoTgdWithEquality) {
  CheckRoundTrip(
      "so exists fmgr { Emp(e) -> Mgr(e, fmgr(e)) ;"
      " Emp(e) & e = fmgr(e) -> SelfMgr(e) } .",
      [](const DependencyProgram& p) { return p.Sos()[0]; },
      [&](const SoTgd& so) { return ToString(ws_.arena, ws_.vocab, so); });
}

TEST_F(RoundTripTest, SoTgdWithNestedTerms) {
  CheckRoundTrip(
      "so exists f, g { P(x) -> R(x, f(g(x))) } .",
      [](const DependencyProgram& p) { return p.Sos()[0]; },
      [&](const SoTgd& so) { return ToString(ws_.arena, ws_.vocab, so); });
}

TEST_F(RoundTripTest, SoTgdWithConstantsAndMultipleParts) {
  CheckRoundTrip(
      R"(so exists f { P(x) -> R(x, f(x), "mark") ;
         Q(y) & f(y) = "fix" -> S(y) } .)",
      [](const DependencyProgram& p) { return p.Sos()[0]; },
      [&](const SoTgd& so) { return ToString(ws_.arena, ws_.vocab, so); });
}

TEST_F(RoundTripTest, GeneratedSkolemizationsPrintAndReparse) {
  Rng rng(987);
  TestWorkspace ws;
  auto relations = GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
  Parser parser(&ws.arena, &ws.vocab);
  for (int i = 0; i < 10; ++i) {
    Tgd tgd = GenerateTgd(&ws.arena, &ws.vocab, &rng, relations, TgdConfig{});
    SoTgd so = TgdToSo(&ws.arena, &ws.vocab, tgd);
    std::string printed = ToString(ws.arena, ws.vocab, so) + " .";
    auto reparsed = parser.ParseDependencies(printed);
    ASSERT_TRUE(reparsed.ok()) << printed << "\n"
                               << reparsed.status().ToString();
    ASSERT_EQ(reparsed->Sos().size(), 1u);
    EXPECT_EQ(ToString(ws.arena, ws.vocab, reparsed->Sos()[0]),
              ToString(ws.arena, ws.vocab, so));
  }
}

TEST_F(RoundTripTest, GeneratedHenkinsPrintAndReparse) {
  Rng rng(988);
  TestWorkspace ws;
  auto relations = GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
  Parser parser(&ws.arena, &ws.vocab);
  int round_tripped = 0;
  for (int i = 0; i < 10; ++i) {
    HenkinTgd henkin =
        GenerateHenkinTgd(&ws.arena, &ws.vocab, &rng, relations, TgdConfig{});
    std::string printed = ToString(ws.arena, ws.vocab, henkin) + " .";
    auto reparsed = parser.ParseDependencies(printed);
    ASSERT_TRUE(reparsed.ok()) << printed << "\n"
                               << reparsed.status().ToString();
    ASSERT_EQ(reparsed->Henkins().size(), 1u);
    EXPECT_EQ(ToString(ws.arena, ws.vocab, reparsed->Henkins()[0]), printed.substr(0, printed.size() - 2))
        << printed;
    ++round_tripped;
  }
  EXPECT_EQ(round_tripped, 10);
}

TEST_F(RoundTripTest, NormalizedNestedPrintsAsValidSo) {
  Rng rng(989);
  TestWorkspace ws;
  auto relations = GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
  Parser parser(&ws.arena, &ws.vocab);
  for (int i = 0; i < 6; ++i) {
    NestedConfig config;
    config.depth = 1 + static_cast<uint32_t>(rng.Below(3));
    NestedTgd nested =
        GenerateNestedTgd(&ws.arena, &ws.vocab, &rng, relations, config);
    SoTgd so = NestedToSo(&ws.arena, &ws.vocab, nested);
    std::string printed = ToString(ws.arena, ws.vocab, so) + " .";
    auto reparsed = parser.ParseDependencies(printed);
    ASSERT_TRUE(reparsed.ok()) << printed << "\n"
                               << reparsed.status().ToString();
    EXPECT_EQ(ToString(ws.arena, ws.vocab, reparsed->Sos()[0]),
              ToString(ws.arena, ws.vocab, so));
  }
}

TEST_F(RoundTripTest, LabelsSurviveReparse) {
  Parser parser(&ws_.arena, &ws_.vocab);
  auto program = parser.ParseDependencies(
      "my_rule: P(x) -> Q(x) .\n"
      "other: Q(x) -> R(x) .");
  ASSERT_TRUE(program.ok());
  EXPECT_EQ(program->dependencies[0].label, "my_rule");
  EXPECT_EQ(program->dependencies[1].label, "other");
}

}  // namespace
}  // namespace tgdkit
