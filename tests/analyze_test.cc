// Tests for the witness-producing static analyzer (src/analyze): the
// artifacts themselves (position graph, affected fixpoint, marking table),
// the per-criterion witnesses — each replayed against the structure it
// indicts — and the randomized differential suite checking the analyzer's
// positive termination verdicts against the critical-instance chase.
#include <gtest/gtest.h>

#include <algorithm>

#include "analyze/analysis.h"
#include "base/rng.h"
#include "classify/dot.h"
#include "dep/skolem.h"
#include "gen/generators.h"
#include "oracle/tg_oracle.h"
#include "parse/parser.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

class AnalyzeTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;

  DependencyProgram Parse(const std::string& text) {
    Parser p(&ws_.arena, &ws_.vocab);
    auto program = p.ParseDependencies(text);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    return std::move(*program);
  }

  ProgramAnalysis Analyze(const std::string& text) {
    DependencyProgram program = Parse(text);
    return AnalyzeProgram(&ws_.arena, &ws_.vocab, program);
  }

  Position Pos(const std::string& relation, uint32_t arg) {
    return {ws_.vocab.FindRelation(relation), arg};
  }
};

// --- artifacts -------------------------------------------------------------

TEST_F(AnalyzeTest, PositionGraphCarriesEdgeProvenance) {
  ProgramAnalysis a = Analyze("R(x, y) -> exists z . S(y, z) .");
  // Nodes: R.0, R.1, S.0, S.1 (isolated positions included).
  EXPECT_EQ(a.graph.nodes.size(), 4u);
  ASSERT_TRUE(a.graph.HasNode(Pos("R", 0)));
  // One regular edge R.1 -> S.0 (y), and special edges into S.1 from both
  // body positions (the Skolem term depends on all universals).
  int regular = 0, special = 0;
  for (const PositionEdge& e : a.graph.edges) {
    EXPECT_EQ(e.rule, 0u);
    EXPECT_EQ(e.head_atom, 0u);
    if (e.special) {
      ++special;
      EXPECT_EQ(a.graph.nodes[e.to], Pos("S", 1));
    } else {
      ++regular;
      EXPECT_EQ(a.graph.nodes[e.from], Pos("R", 1));
      EXPECT_EQ(a.graph.nodes[e.to], Pos("S", 0));
      EXPECT_EQ(e.var, ws_.vocab.InternVariable("y"));
    }
  }
  EXPECT_EQ(regular, 1);
  EXPECT_EQ(special, 2);
  // out_edges indexes are consistent.
  for (uint32_t n = 0; n < a.graph.nodes.size(); ++n) {
    for (uint32_t e : a.graph.out_edges[n]) {
      EXPECT_EQ(a.graph.edges[e].from, n);
    }
  }
}

TEST_F(AnalyzeTest, AffectedReasonsChainToAFunctionalHead) {
  ProgramAnalysis a = Analyze(
      "P(x) -> exists y . R(y) .\n"
      "R(x) -> S(x) .\n"
      "S(x) & P(x) -> T(x) .");
  EXPECT_TRUE(a.affected.affected.count(Pos("R", 0)));
  EXPECT_TRUE(a.affected.affected.count(Pos("S", 0)));
  EXPECT_FALSE(a.affected.affected.count(Pos("T", 0)));
  // R.0 is the base case; S.0 is propagated through x of rule 2.
  const AffectedReason& base = a.affected.reasons.at(Pos("R", 0));
  EXPECT_EQ(base.kind, AffectedReason::Kind::kFunctionalHead);
  EXPECT_EQ(base.rule, 0u);
  const AffectedReason& step = a.affected.reasons.at(Pos("S", 0));
  EXPECT_EQ(step.kind, AffectedReason::Kind::kPropagated);
  EXPECT_EQ(step.rule, 1u);
  EXPECT_EQ(step.var, ws_.vocab.InternVariable("x"));
  // Every propagated reason only cites affected positions (well-founded).
  for (const auto& [pos, reason] : a.affected.reasons) {
    EXPECT_TRUE(a.affected.affected.count(pos));
  }
  std::string chain = ExplainAffected(ws_.vocab, a, Pos("S", 0));
  EXPECT_NE(chain.find("functional term"), std::string::npos) << chain;
}

TEST_F(AnalyzeTest, StickyMarkingIsPerRule) {
  // x is dropped by rule 1 (marking R.0); u of rule 2 sits at R.0 and
  // R.1 but is NOT marked — the table is per-(rule, variable), not a
  // global position predicate.
  ProgramAnalysis a = Analyze(
      "R(x, y) -> S(y) .\n"
      "R(u, u) -> T(u, u) .");
  VariableId x = ws_.vocab.InternVariable("x");
  VariableId u = ws_.vocab.InternVariable("u");
  EXPECT_TRUE(a.marking.IsMarked(0, x));
  EXPECT_FALSE(a.marking.IsMarked(1, u));
  EXPECT_TRUE(a.marking.marked_positions.count(Pos("R", 0)));
  EXPECT_TRUE(a.verdict(Criterion::kSticky).holds);
}

TEST_F(AnalyzeTest, MarkReasonsRecordDropAndPropagation) {
  ProgramAnalysis a = Analyze(
      "P(x, y) & Q(y, z) -> R(x, y, z) .\n"
      "R(x, y, z) -> S(x, z) .");
  VariableId y = ws_.vocab.InternVariable("y");
  // Rule 2 drops y; rule 1's y is marked by propagation through R.1.
  ASSERT_TRUE(a.marking.IsMarked(1, y));
  EXPECT_EQ(a.marking.marked_vars[1].at(y).kind, MarkReason::Kind::kDropped);
  ASSERT_TRUE(a.marking.IsMarked(0, y));
  const MarkReason& prop = a.marking.marked_vars[0].at(y);
  EXPECT_EQ(prop.kind, MarkReason::Kind::kPropagated);
  EXPECT_EQ(prop.via, Pos("R", 1));
  EXPECT_FALSE(a.verdict(Criterion::kSticky).holds);
  std::string chain = ExplainMarked(ws_.vocab, a, 0, y);
  EXPECT_NE(chain.find("dropped"), std::string::npos) << chain;
}

// --- witnesses and replay ---------------------------------------------------

TEST_F(AnalyzeTest, EveryNegativeVerdictReplays) {
  // A program failing every Figure 2 criterion at once.
  ProgramAnalysis a = Analyze("E(x, y) & E(y, z) -> exists w . E(z, w) .");
  for (const CriterionVerdict& v : a.verdicts) {
    EXPECT_FALSE(v.holds) << CriterionName(v.criterion);
    EXPECT_FALSE(std::holds_alternative<std::monostate>(v.witness));
    EXPECT_FALSE(
        WitnessToString(ws_.arena, ws_.vocab, a, v).empty());
  }
  Status replay = ReplayAllWitnesses(ws_.arena, a);
  EXPECT_TRUE(replay.ok()) << replay.ToString();
}

TEST_F(AnalyzeTest, CycleWitnessChainsAndClosesThroughASpecialEdge) {
  ProgramAnalysis a = Analyze("R(x, y) -> exists z . R(y, z) .");
  const CriterionVerdict& v = a.verdict(Criterion::kWeaklyAcyclic);
  ASSERT_FALSE(v.holds);
  const auto& w = std::get<CycleWitness>(v.witness);
  ASSERT_FALSE(w.edges.empty());
  bool special = false;
  for (size_t i = 0; i < w.edges.size(); ++i) {
    const PositionEdge& e = a.graph.edges[w.edges[i]];
    const PositionEdge& next = a.graph.edges[w.edges[(i + 1) % w.edges.size()]];
    EXPECT_EQ(e.to, next.from);  // chained, and closed at the wrap-around
    special |= e.special;
  }
  EXPECT_TRUE(special);
}

TEST_F(AnalyzeTest, GuardWitnessNamesAMissingVariablePerBodyAtom) {
  ProgramAnalysis a = Analyze("P(x, y) & Q(y, z) -> R(x, z) .");
  const CriterionVerdict& v = a.verdict(Criterion::kGuarded);
  ASSERT_FALSE(v.holds);
  const auto& w = std::get<GuardWitness>(v.witness);
  EXPECT_EQ(w.rule, 0u);
  EXPECT_EQ(w.required.size(), 3u);
  ASSERT_EQ(w.missing.size(), 2u);  // one per body atom
  // P(x, y) misses z; Q(y, z) misses x.
  EXPECT_EQ(w.missing[0], ws_.vocab.InternVariable("z"));
  EXPECT_EQ(w.missing[1], ws_.vocab.InternVariable("x"));
}

TEST_F(AnalyzeTest, StickyJoinWitnessSpansTwoAtoms) {
  // Marked x repeats within ONE atom: sticky fails, sticky-join holds.
  ProgramAnalysis within = Analyze("P(x, x, y) & Q(y, z) -> R(y, z) .");
  EXPECT_FALSE(within.verdict(Criterion::kSticky).holds);
  EXPECT_TRUE(within.verdict(Criterion::kStickyJoin).holds);
  // Marked y spans two atoms: both fail, and the sticky-join witness
  // cites occurrences in distinct atoms.
  ProgramAnalysis across = Analyze("P2(x, y) & Q2(y, z) -> R2(x, z) .");
  const CriterionVerdict& v = across.verdict(Criterion::kStickyJoin);
  ASSERT_FALSE(v.holds);
  const auto& w = std::get<StickyWitness>(v.witness);
  EXPECT_NE(w.atom1, w.atom2);
  EXPECT_EQ(w.var, ws_.vocab.InternVariable("y"));
}

TEST_F(AnalyzeTest, TamperedWitnessesFailReplay) {
  ProgramAnalysis a = Analyze("E(x, y) & E(y, z) -> exists w . E(z, w) .");
  // A cycle whose edges do not chain.
  CriterionVerdict bad_cycle = a.verdict(Criterion::kWeaklyAcyclic);
  auto& cw = std::get<CycleWitness>(bad_cycle.witness);
  ASSERT_FALSE(cw.edges.empty());
  cw.edges.push_back(cw.edges.front());
  if (cw.edges.size() >= 2 &&
      a.graph.edges[cw.edges[cw.edges.size() - 2]].to !=
          a.graph.edges[cw.edges.back()].from) {
    EXPECT_FALSE(ReplayWitness(ws_.arena, a, bad_cycle).ok());
  }
  // A sticky witness pointing at an unmarked variable's occurrences.
  CriterionVerdict bad_sticky = a.verdict(Criterion::kSticky);
  std::get<StickyWitness>(bad_sticky.witness).var =
      ws_.vocab.InternVariable("nonexistent_var");
  EXPECT_FALSE(ReplayWitness(ws_.arena, a, bad_sticky).ok());
  // A guard witness citing a variable that the atom does contain.
  CriterionVerdict bad_guard = a.verdict(Criterion::kGuarded);
  auto& gw = std::get<GuardWitness>(bad_guard.witness);
  gw.missing[0] = ws_.vocab.InternVariable("x");  // E(x, y) contains x
  EXPECT_FALSE(ReplayWitness(ws_.arena, a, bad_guard).ok());
  // A full witness pointing at a non-functional head argument.
  ProgramAnalysis b = Analyze("P(v) -> exists q . S2(v, q) .");
  CriterionVerdict bad_full = b.verdict(Criterion::kFull);
  auto& fw = std::get<FullWitness>(bad_full.witness);
  ASSERT_EQ(fw.head_arg, 1u);
  fw.head_arg = 0;  // S2.0 holds the plain variable v
  EXPECT_FALSE(ReplayWitness(ws_.arena, b, bad_full).ok());
}

// The decidability-frontier program: triangularly guarded but in no
// other Figure 2 class. Part 1 is a special cycle (breaks weak
// acyclicity) whose component is guarded by ga(x, y); part 2 makes both
// link positions affected; part 3 joins two link atoms on a dangerous
// variable and drops it from the head (breaking weakly-guarded, sticky
// and sticky-join) — but never touches the triangular component.
constexpr const char* kFrontierProgram =
    "frontier: so exists fv, fp, fq {"
    " ga(x, y) -> ga(y, fv(x, y)) ;"
    " hub(x) -> link(fp(x), fq(x)) ;"
    " link(x, u) & link(u, y) -> out(x, y) } .";

TEST_F(AnalyzeTest, TriangularGuardednessCertifiesTheFrontierProgram) {
  ProgramAnalysis a = Analyze(kFrontierProgram);
  EXPECT_TRUE(a.verdict(Criterion::kTriangularlyGuarded).holds);
  EXPECT_FALSE(a.verdict(Criterion::kWeaklyAcyclic).holds);
  EXPECT_FALSE(a.verdict(Criterion::kWeaklyGuarded).holds);
  EXPECT_FALSE(a.verdict(Criterion::kStickyJoin).holds);
  // One generating component that feeds no second one: exponential tier.
  EXPECT_EQ(a.complexity.tier, ComplexityTier::kExponential);
  EXPECT_TRUE(ReplayAllWitnesses(ws_.arena, a).ok());
}

TEST_F(AnalyzeTest, TriangleWitnessPinsComponentCycleAndBothDisciplines) {
  ProgramAnalysis a = Analyze("bad : E(x, y) & E(y, z) -> exists w . E(z, w) .");
  const CriterionVerdict& v = a.verdict(Criterion::kTriangularlyGuarded);
  ASSERT_FALSE(v.holds);
  const auto& w = std::get<TriangleWitness>(v.witness);
  // The component is exactly {E.0, E.1}, sorted.
  ASSERT_EQ(w.component.size(), 2u);
  EXPECT_EQ(a.graph.nodes[w.component[0]], Pos("E", 0));
  EXPECT_EQ(a.graph.nodes[w.component[1]], Pos("E", 1));
  // Both repair disciplines failed on the single rule.
  EXPECT_EQ(w.guard.rule, 0u);
  EXPECT_EQ(w.join.rule, 0u);
  EXPECT_NE(w.join.atom1, w.join.atom2);
  EXPECT_TRUE(ReplayWitness(ws_.arena, a, v).ok());
  // The rendering names the component and both failures, and the witness
  // pins to the statement's label and span through the indicted rules.
  std::string text = WitnessToString(ws_.arena, ws_.vocab, a, v);
  EXPECT_NE(text.find("triangular component"), std::string::npos) << text;
  EXPECT_NE(text.find("unguarded"), std::string::npos) << text;
  EXPECT_NE(text.find("unsticky"), std::string::npos) << text;
  EXPECT_EQ(a.rules[w.guard.rule].label, "bad");
  EXPECT_EQ(a.rules[w.guard.rule].line, 1u);
}

TEST_F(AnalyzeTest, TamperedTriangleWitnessFailsReplay) {
  ProgramAnalysis a = Analyze("E(x, y) & E(y, z) -> exists w . E(z, w) .");
  const CriterionVerdict& good =
      a.verdict(Criterion::kTriangularlyGuarded);
  ASSERT_FALSE(good.holds);
  // Dropping a node leaves a strict subset of the component.
  CriterionVerdict bad = good;
  std::get<TriangleWitness>(bad.witness).component.pop_back();
  EXPECT_FALSE(ReplayWitness(ws_.arena, a, bad).ok());
  // A cycle that no longer chains.
  bad = good;
  auto& cycle = std::get<TriangleWitness>(bad.witness).cycle;
  std::reverse(cycle.begin(), cycle.end());
  cycle.push_back(cycle.front());
  EXPECT_FALSE(ReplayWitness(ws_.arena, a, bad).ok());
  // A guard failure citing a variable the atom does contain.
  bad = good;
  std::get<TriangleWitness>(bad.witness).guard.missing[0] =
      ws_.vocab.InternVariable("x");  // E(x, y) contains x
  EXPECT_FALSE(ReplayWitness(ws_.arena, a, bad).ok());
  // A join citing an unmarked variable.
  bad = good;
  std::get<TriangleWitness>(bad.witness).join.var =
      ws_.vocab.InternVariable("phantom");
  EXPECT_FALSE(ReplayWitness(ws_.arena, a, bad).ok());
}

TEST_F(AnalyzeTest, ComplexityTiersMatchTheGeneratingComponents) {
  // No special cycle, two chained special edges: polynomial of rank 2.
  ProgramAnalysis poly = Analyze(
      "a(x) -> exists u . b(x, u) .\n"
      "b(x, u) -> exists v . c(u, v) .");
  EXPECT_EQ(poly.complexity.tier, ComplexityTier::kPolynomial);
  EXPECT_EQ(poly.complexity.rank, 2u);
  ASSERT_EQ(poly.complexity.rank_path.size(), 2u);
  EXPECT_TRUE(ReplayComplexity(poly).ok());
  // One generating component: exponential, witnessed by its cycle.
  ProgramAnalysis expo = Analyze("e(x, y) -> exists z . e(y, z) .");
  EXPECT_EQ(expo.complexity.tier, ComplexityTier::kExponential);
  EXPECT_FALSE(expo.complexity.cycle.empty());
  EXPECT_TRUE(ReplayComplexity(expo).ok());
  // A generating component reaching a second one: non-elementary.
  ProgramAnalysis tower = Analyze(
      "p(x, y) -> exists z . p(y, z) .\n"
      "p(x, y) -> q(x, y) .\n"
      "q(x, y) -> exists z . q(y, z) .");
  EXPECT_EQ(tower.complexity.tier, ComplexityTier::kNonElementary);
  EXPECT_FALSE(tower.complexity.cycle.empty());
  EXPECT_FALSE(tower.complexity.link.empty());
  EXPECT_FALSE(tower.complexity.cycle2.empty());
  EXPECT_TRUE(ReplayComplexity(tower).ok());
  // Rendering carries the tier and the provenance walks.
  EXPECT_NE(ComplexityToString(ws_.vocab, tower).find("non-elementary"),
            std::string::npos);
}

TEST_F(AnalyzeTest, TamperedComplexityBoundFailsReplay) {
  ProgramAnalysis a = Analyze("e(x, y) -> exists z . e(y, z) .");
  ASSERT_EQ(a.complexity.tier, ComplexityTier::kExponential);
  // A downgraded tier disagrees with the graph.
  ProgramAnalysis tampered = a;
  tampered.complexity.tier = ComplexityTier::kPolynomial;
  tampered.complexity.rank = 0;
  tampered.complexity.cycle.clear();
  EXPECT_FALSE(ReplayComplexity(tampered).ok());
  // A witness cycle missing its closing edge.
  tampered = a;
  tampered.complexity.cycle.pop_back();
  EXPECT_FALSE(ReplayComplexity(tampered).ok());
  // An inflated polynomial rank.
  ProgramAnalysis poly = Analyze("a(x) -> exists u . b(x, u) .");
  ASSERT_EQ(poly.complexity.tier, ComplexityTier::kPolynomial);
  tampered = poly;
  tampered.complexity.rank += 1;
  EXPECT_FALSE(ReplayComplexity(tampered).ok());
}

TEST_F(AnalyzeTest, PositiveVerdictsCarryNoWitness) {
  ProgramAnalysis a = Analyze("E(x, y) & E(y, z) -> E(x, z) .");
  EXPECT_TRUE(a.verdict(Criterion::kFull).holds);
  EXPECT_TRUE(std::holds_alternative<std::monostate>(
      a.verdict(Criterion::kFull).witness));
  EXPECT_TRUE(ReplayAllWitnesses(ws_.arena, a).ok());
}

// --- origin tracking --------------------------------------------------------

TEST_F(AnalyzeTest, RulesCarryLabelsAndSourceSpans) {
  DependencyProgram program = Parse(
      "first : P(x) -> Q(x) .\n"
      "R(x, y) -> exists z . R(y, z) .");
  EXPECT_EQ(program.dependencies[0].line, 1u);
  EXPECT_EQ(program.dependencies[0].column, 1u);
  EXPECT_EQ(program.dependencies[1].line, 2u);
  ProgramAnalysis a = AnalyzeProgram(&ws_.arena, &ws_.vocab, program);
  ASSERT_EQ(a.rules.size(), 2u);
  EXPECT_EQ(a.rules[0].label, "first");
  EXPECT_EQ(a.rules[1].label, "#2");
  EXPECT_EQ(a.rules[1].dep_index, 1u);
  EXPECT_EQ(a.rules[1].line, 2u);
  // The weak-acyclicity witness indicts the second statement.
  const CriterionVerdict& v = a.verdict(Criterion::kWeaklyAcyclic);
  ASSERT_FALSE(v.holds);
  const auto& w = std::get<CycleWitness>(v.witness);
  EXPECT_EQ(a.graph.edges[w.edges.front()].rule, 1u);
}

TEST_F(AnalyzeTest, AnalysisDotRendersGraphWithWitnessCycle) {
  ProgramAnalysis a = Analyze("loop : R(x, y) -> exists z . R(y, z) .");
  std::string dot = AnalysisDot(ws_.vocab, a);
  EXPECT_NE(dot.find("digraph analysis"), std::string::npos);
  EXPECT_NE(dot.find("\"R.0\""), std::string::npos);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);  // special edge
  EXPECT_NE(dot.find("color=red"), std::string::npos);     // witness cycle
  EXPECT_NE(dot.find("loop/"), std::string::npos);         // provenance label
}

// --- differential suite: analyzer vs critical-instance oracle ---------------

class AnalyzeDifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(AnalyzeDifferentialTest, WeaklyAcyclicVerdictImpliesChaseFixpoint) {
  // Marnette 2009: the Skolem chase terminates on every instance iff it
  // terminates on the critical instance. Weak acyclicity is a sound
  // termination criterion, so a positive analyzer verdict must be
  // confirmed by a critical-instance fixpoint. Witnesses of negative
  // verdicts must replay on every generated program, whatever the class.
  TestWorkspace ws;
  Rng rng(GetParam() * 31 + 12);
  std::vector<RelationId> relations =
      GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
  std::vector<Tgd> tgds;
  for (int i = 0; i < 3; ++i) {
    tgds.push_back(
        GenerateTgd(&ws.arena, &ws.vocab, &rng, relations, TgdConfig{}));
  }
  SoTgd so = TgdsToSo(&ws.arena, &ws.vocab, tgds);
  ProgramAnalysis analysis = AnalyzeSo(ws.arena, so);
  Status replay = ReplayAllWitnesses(ws.arena, analysis);
  EXPECT_TRUE(replay.ok()) << replay.ToString();
  if (!analysis.verdict(Criterion::kWeaklyAcyclic).holds) return;
  ChaseLimits limits;
  limits.max_rounds = 100000;
  limits.max_facts = 500000;
  limits.max_term_depth = 10000;
  CriticalInstanceReport report = TerminatesOnCriticalInstance(
      &ws.arena, &ws.vocab, so, relations, limits);
  EXPECT_TRUE(report.terminated)
      << "analyzer says weakly acyclic but the critical-instance chase "
         "found no fixpoint";
}

TEST_P(AnalyzeDifferentialTest, TriangularGuardednessSubsumesEveryClass) {
  // TG must hold whenever any of the three maximal classic classes does
  // (weakly acyclic: no triangular components; weakly guarded: the global
  // guard covers every component-dangerous subset; sticky-join: no
  // cross-atom marked join at all). A single disagreement on a random
  // ruleset falsifies the construction.
  TestWorkspace ws;
  Rng rng(GetParam() * 57 + 5);
  std::vector<RelationId> relations =
      GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
  std::vector<Tgd> tgds;
  for (int i = 0; i < 3; ++i) {
    tgds.push_back(
        GenerateTgd(&ws.arena, &ws.vocab, &rng, relations, TgdConfig{}));
  }
  SoTgd so = TgdsToSo(&ws.arena, &ws.vocab, tgds);
  ProgramAnalysis analysis = AnalyzeSo(ws.arena, so);
  bool tg = analysis.verdict(Criterion::kTriangularlyGuarded).holds;
  if (analysis.verdict(Criterion::kWeaklyAcyclic).holds ||
      analysis.verdict(Criterion::kWeaklyGuarded).holds ||
      analysis.verdict(Criterion::kStickyJoin).holds) {
    EXPECT_TRUE(tg) << "a classic class holds but TG disagrees";
  }
  // Exact cross-check against the brute-force oracle, both polarities:
  // subsumption alone can only catch false negatives on rulesets that
  // happen to be in a classic class; the naive reimplementation of the
  // TG definition agrees or disagrees on every ruleset.
  EXPECT_EQ(tg, BruteForceTriangularlyGuarded(ws.arena, so))
      << "analyzer and brute-force TG oracle disagree";
  // The complexity artifact must agree with the weak-acyclicity verdict
  // (polynomial ⟺ no generating component ⟺ weakly acyclic), and its
  // provenance must replay.
  EXPECT_EQ(analysis.complexity.tier == ComplexityTier::kPolynomial,
            analysis.verdict(Criterion::kWeaklyAcyclic).holds);
  Status replay = ReplayComplexity(analysis);
  EXPECT_TRUE(replay.ok()) << replay.ToString();
}

TEST_P(AnalyzeDifferentialTest, PolynomialTierImpliesChaseFixpoint) {
  // The polynomial tier coincides with weak acyclicity, so it is a sound
  // termination certificate: cross-check against the critical-instance
  // semi-decision oracle (Marnette 2009).
  TestWorkspace ws;
  Rng rng(GetParam() * 91 + 17);
  std::vector<RelationId> relations =
      GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
  std::vector<Tgd> tgds;
  for (int i = 0; i < 3; ++i) {
    tgds.push_back(
        GenerateTgd(&ws.arena, &ws.vocab, &rng, relations, TgdConfig{}));
  }
  SoTgd so = TgdsToSo(&ws.arena, &ws.vocab, tgds);
  ProgramAnalysis analysis = AnalyzeSo(ws.arena, so);
  if (analysis.complexity.tier != ComplexityTier::kPolynomial) return;
  ChaseLimits limits;
  limits.max_rounds = 100000;
  limits.max_facts = 500000;
  limits.max_term_depth = 10000;
  CriticalInstanceReport report = TerminatesOnCriticalInstance(
      &ws.arena, &ws.vocab, so, relations, limits);
  EXPECT_TRUE(report.terminated)
      << "polynomial tier but the critical-instance chase found no "
         "fixpoint";
}

INSTANTIATE_TEST_SUITE_P(Seeds, AnalyzeDifferentialTest,
                         ::testing::Values(3, 13, 29, 41, 53, 67, 79, 101,
                                           113, 127, 139, 151));

}  // namespace
}  // namespace tgdkit
