// End-to-end tests for the paper's reductions: each construction must
// agree with an independent brute-force oracle on small generated inputs.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "classify/criteria.h"
#include "dep/syntactic.h"
#include "homo/core.h"
#include "mc/model_check.h"
#include "reduce/pcp.h"
#include "reduce/qbf.h"
#include "reduce/separation.h"
#include "reduce/three_col.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

class ReductionTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;
};

// --- Theorem 6.1: 3-colorability --------------------------------------------

TEST_F(ReductionTest, ThreeColTriangleIsSatisfied) {
  Graph triangle{3, {{0, 1}, {1, 2}, {2, 0}}};
  ThreeColReduction red =
      BuildThreeColReduction(&ws_.arena, &ws_.vocab, triangle);
  EXPECT_TRUE(red.sigma.IsStandard());
  ASSERT_TRUE(ValidateHenkinTgd(ws_.arena, red.sigma).ok());
  McResult result =
      CheckHenkin(&ws_.arena, &ws_.vocab, red.instance, red.sigma);
  ASSERT_FALSE(result.budget_exceeded);
  EXPECT_TRUE(result.satisfied);
  EXPECT_TRUE(ThreeColorable(triangle));
}

TEST_F(ReductionTest, ThreeColK4IsViolated) {
  Graph k4{4, {{0, 1}, {0, 2}, {0, 3}, {1, 2}, {1, 3}, {2, 3}}};
  ThreeColReduction red = BuildThreeColReduction(&ws_.arena, &ws_.vocab, k4);
  McResult result =
      CheckHenkin(&ws_.arena, &ws_.vocab, red.instance, red.sigma);
  ASSERT_FALSE(result.budget_exceeded);
  EXPECT_FALSE(result.satisfied);
  EXPECT_FALSE(ThreeColorable(k4));
}

TEST_F(ReductionTest, ThreeColAgreesWithOracleOnRandomGraphs) {
  Rng rng(61);
  for (int trial = 0; trial < 25; ++trial) {
    // Fresh workspace per trial: the reduction interns fixed names.
    TestWorkspace ws;
    Graph g;
    g.num_vertices = 3 + static_cast<uint32_t>(rng.Below(4));  // 3..6
    for (uint32_t a = 0; a < g.num_vertices; ++a) {
      for (uint32_t b = a + 1; b < g.num_vertices; ++b) {
        if (rng.Chance(55)) g.edges.push_back({a, b});
      }
    }
    ThreeColReduction red = BuildThreeColReduction(&ws.arena, &ws.vocab, g);
    McResult result = CheckHenkin(&ws.arena, &ws.vocab, red.instance,
                                  red.sigma);
    ASSERT_FALSE(result.budget_exceeded) << "trial " << trial;
    EXPECT_EQ(result.satisfied, ThreeColorable(g)) << "trial " << trial;
  }
}

// --- Theorem 6.3: QBF --------------------------------------------------------

QbfLiteral X(uint32_t i, bool neg = false) {
  return {QbfLiteral::Kind::kUniversal, i, neg};
}
QbfLiteral Y(uint32_t i, bool neg = false) {
  return {QbfLiteral::Kind::kExistential, i, neg};
}

TEST_F(ReductionTest, QbfTrueFormulaSatisfiesTau) {
  // ∀x∃y (x ∨ y) ∧ (¬x ∨ ¬y): true (y := ¬x).
  Qbf q{1, {{X(0), Y(0), Y(0)}, {X(0, true), Y(0, true), Y(0, true)}}};
  QbfReduction red = BuildQbfReduction(&ws_.arena, &ws_.vocab, q);
  ASSERT_TRUE(ValidateNestedTgd(ws_.arena, red.tau).ok());
  EXPECT_TRUE(CheckNested(ws_.arena, red.instance, red.tau));
  EXPECT_TRUE(EvaluateQbf(q));
}

TEST_F(ReductionTest, QbfFalseFormulaViolatesTau) {
  // ∀x∃y (x): false at x = 0.
  Qbf q{1, {{X(0), X(0), X(0)}}};
  QbfReduction red = BuildQbfReduction(&ws_.arena, &ws_.vocab, q);
  EXPECT_FALSE(CheckNested(ws_.arena, red.instance, red.tau));
  EXPECT_FALSE(EvaluateQbf(q));
}

TEST_F(ReductionTest, QbfAgreesWithOracleOnRandomFormulas) {
  Rng rng(63);
  int true_count = 0;
  for (int trial = 0; trial < 40; ++trial) {
    TestWorkspace ws;
    Qbf q;
    q.num_pairs = 1 + static_cast<uint32_t>(rng.Below(3));  // 1..3
    uint32_t num_clauses = 1 + static_cast<uint32_t>(rng.Below(4));
    for (uint32_t c = 0; c < num_clauses; ++c) {
      std::array<QbfLiteral, 3> clause;
      for (int l = 0; l < 3; ++l) {
        bool universal = rng.Chance(50);
        uint32_t index = static_cast<uint32_t>(rng.Below(q.num_pairs));
        bool negated = rng.Chance(50);
        clause[l] = universal ? X(index, negated) : Y(index, negated);
      }
      q.clauses.push_back(clause);
    }
    QbfReduction red = BuildQbfReduction(&ws.arena, &ws.vocab, q);
    bool expected = EvaluateQbf(q);
    EXPECT_EQ(CheckNested(ws.arena, red.instance, red.tau), expected)
        << "trial " << trial;
    true_count += expected ? 1 : 0;
  }
  EXPECT_GT(true_count, 0);
  EXPECT_LT(true_count, 40);
}

TEST_F(ReductionTest, QbfTauIsSimpleInTheLimitedSense) {
  // τ is an s-t nested tgd whose depth equals the number of ∀∃ pairs.
  Qbf q{3, {{X(0), Y(1), Y(2)}}};
  QbfReduction red = BuildQbfReduction(&ws_.arena, &ws_.vocab, q);
  EXPECT_EQ(red.tau.Depth(), 3u);
  EXPECT_EQ(red.tau.NumParts(), 3u);
}

// --- Theorem 4.1: separation witness ----------------------------------------

TEST_F(ReductionTest, Theorem41ChaseBuildsProtectedBipartiteStructure) {
  Theorem41Witness witness = BuildTheorem41Witness(&ws_.arena, &ws_.vocab);
  EXPECT_TRUE(witness.sigma1.IsStandard());
  ASSERT_TRUE(ValidateSoTgd(ws_.arena, witness.rules).ok());

  const uint32_t n = 4;
  Instance input = BuildTheorem41Instance(&ws_.vocab, n);
  ChaseResult chased = Chase(&ws_.arena, &ws_.vocab, witness.rules, input);
  ASSERT_TRUE(chased.Terminated());

  RelationId r = ws_.vocab.FindRelation("R");
  RelationId q = ws_.vocab.FindRelation("Q");
  RelationId s = ws_.vocab.FindRelation("S");
  // Complete bipartite n×n structure between the u_i and v_j nulls.
  EXPECT_EQ(chased.instance.NumTuples(r), n * n);
  EXPECT_EQ(chased.instance.NumTuples(q), n);
  EXPECT_EQ(chased.instance.NumTuples(s), n);

  // The R structure violates both functional dependencies — the structure
  // a single nested tgd could never directly generate (Idea 2).
  EXPECT_FALSE(FunctionalDependencyHolds(chased.instance, r, 0, 1));
  EXPECT_FALSE(FunctionalDependencyHolds(chased.instance, r, 1, 0));
  // Q and S pin the nulls to constants: each satisfies its FD.
  EXPECT_TRUE(FunctionalDependencyHolds(chased.instance, q, 0, 1));
  EXPECT_TRUE(FunctionalDependencyHolds(chased.instance, s, 0, 1));

  // Protection: the core keeps the full n² bipartite structure.
  Instance core = ComputeCore(&ws_.arena, &ws_.vocab, chased.instance);
  EXPECT_EQ(core.NumTuples(r), n * n);
}

TEST_F(ReductionTest, Theorem44WitnessShape) {
  SoTgd so = BuildTheorem44Witness(&ws_.arena, &ws_.vocab);
  ASSERT_TRUE(ValidateSoTgd(ws_.arena, so).ok());
  EXPECT_TRUE(IsPlainSo(ws_.arena, so));
  EXPECT_EQ(so.parts.size(), 1u);  // simple
  // One function symbol with two different argument lists: not a
  // Skolemized Henkin tgd (the syntactic footprint of Theorem 4.4).
  EXPECT_FALSE(IsSkolemizedHenkin(ws_.arena, so));
}

TEST_F(ReductionTest, Theorem44SharedFunctionSemantics) {
  SoTgd so = BuildTheorem44Witness(&ws_.arena, &ws_.vocab);
  // Emps(a,b), Emps(b,a): f(a) and f(b) must be chosen once and reused
  // crosswise: Mgrs must contain (f(a),f(b)) AND (f(b),f(a)).
  Instance good(&ws_.vocab);
  RelationId emps = ws_.vocab.FindRelation("Emps");
  RelationId mgrs = ws_.vocab.FindRelation("Mgrs");
  good.AddFact(emps, std::vector<Value>{ws_.Cv("a"), ws_.Cv("b")});
  good.AddFact(emps, std::vector<Value>{ws_.Cv("b"), ws_.Cv("a")});
  good.AddFact(mgrs, std::vector<Value>{ws_.Cv("ma"), ws_.Cv("mb")});
  good.AddFact(mgrs, std::vector<Value>{ws_.Cv("mb"), ws_.Cv("ma")});
  EXPECT_TRUE(CheckSo(ws_.arena, good, so).satisfied);

  Instance bad(&ws_.vocab);
  bad.AddFact(emps, std::vector<Value>{ws_.Cv("a"), ws_.Cv("b")});
  bad.AddFact(emps, std::vector<Value>{ws_.Cv("b"), ws_.Cv("a")});
  bad.AddFact(mgrs, std::vector<Value>{ws_.Cv("ma"), ws_.Cv("mb")});
  bad.AddFact(mgrs, std::vector<Value>{ws_.Cv("mc"), ws_.Cv("ma")});
  EXPECT_FALSE(CheckSo(ws_.arena, bad, so).satisfied);
}

}  // namespace
}  // namespace tgdkit
