// Tests for the serve wire protocol (src/serve/protocol): request and
// response frame round-trips, refusal rendering, and rejection of
// malformed frames — the parsing layer the daemon's chaos resilience
// rests on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "serve/protocol.h"

namespace tgdkit {
namespace {

TEST(ServeProtocol, RequestRoundTripsThroughRenderAndParse) {
  ServeRequest request;
  request.id = "r-42";
  request.command = "classify";
  request.args = {"deps.tgd", "--threads", "2"};
  request.file_names = {"deps.tgd"};
  request.file_contents = {"p(X) -> q(X) .\nline with \"quotes\"\n"};
  request.deadline_ms = 1500;
  request.memory_mb = 64;

  std::string frame = RenderServeRequest(request);
  EXPECT_EQ(frame.find('\n'), std::string::npos) << frame;

  ServeRequest parsed;
  ASSERT_TRUE(ParseServeRequest(frame, &parsed).ok()) << frame;
  EXPECT_EQ(parsed.id, request.id);
  EXPECT_EQ(parsed.command, request.command);
  EXPECT_EQ(parsed.args, request.args);
  EXPECT_EQ(parsed.file_names, request.file_names);
  EXPECT_EQ(parsed.file_contents, request.file_contents);
  EXPECT_EQ(parsed.deadline_ms, request.deadline_ms);
  EXPECT_EQ(parsed.memory_mb, request.memory_mb);
}

TEST(ServeProtocol, MinimalRequestOmitsOptionalFields) {
  ServeRequest request;
  request.id = "a";
  request.command = "ping";
  ServeRequest parsed;
  ASSERT_TRUE(ParseServeRequest(RenderServeRequest(request), &parsed).ok());
  EXPECT_EQ(parsed.id, "a");
  EXPECT_EQ(parsed.command, "ping");
  EXPECT_TRUE(parsed.args.empty());
  EXPECT_EQ(parsed.deadline_ms, 0u);
  EXPECT_EQ(parsed.memory_mb, 0u);
}

TEST(ServeProtocol, RejectsMalformedRequests) {
  ServeRequest out;
  // Not JSON at all.
  EXPECT_FALSE(ParseServeRequest("hello", &out).ok());
  // Valid JSON, no id.
  EXPECT_FALSE(ParseServeRequest("{\"command\":\"lint\"}", &out).ok());
  // Valid JSON, no command.
  EXPECT_FALSE(ParseServeRequest("{\"id\":\"x\"}", &out).ok());
  // Mismatched file arrays.
  EXPECT_FALSE(
      ParseServeRequest("{\"id\":\"x\",\"command\":\"lint\","
                        "\"file_names\":[\"a\"],\"file_contents\":[]}",
                        &out)
          .ok());
  // Nested objects are outside the flat-JSON grammar.
  EXPECT_FALSE(
      ParseServeRequest("{\"id\":\"x\",\"command\":\"lint\","
                        "\"extra\":{\"nested\":1}}",
                        &out)
          .ok());
}

TEST(ServeProtocol, InvalidFrameStillSurfacesTheId) {
  ServeRequest out;
  Status status = ParseServeRequest("{\"id\":\"r9\"}", &out);
  EXPECT_FALSE(status.ok());
  EXPECT_EQ(out.id, "r9");
}

TEST(ServeProtocol, OkResponseRoundTrips) {
  ServeResponse response;
  response.id = "r1";
  response.status = ServeStatus::kOk;
  response.exit_code = 3;
  response.cached = true;
  response.duration_ms = 12;
  response.out = "verdict line\n";
  response.err = "warning: something\n";

  ServeResponse parsed;
  ASSERT_TRUE(
      ParseServeResponse(RenderServeResponse(response), &parsed).ok());
  EXPECT_EQ(parsed.id, "r1");
  EXPECT_EQ(parsed.status, ServeStatus::kOk);
  EXPECT_EQ(parsed.exit_code, 3);
  EXPECT_TRUE(parsed.cached);
  EXPECT_EQ(parsed.duration_ms, 12u);
  EXPECT_EQ(parsed.out, response.out);
  EXPECT_EQ(parsed.err, response.err);
}

TEST(ServeProtocol, RefusalRoundTripsWithRetryHint) {
  ServeResponse refusal =
      MakeRefusal("r2", ServeStatus::kOverloaded, "capacity committed");
  refusal.retry_after_ms = 50;
  ServeResponse parsed;
  ASSERT_TRUE(
      ParseServeResponse(RenderServeResponse(refusal), &parsed).ok());
  EXPECT_EQ(parsed.id, "r2");
  EXPECT_EQ(parsed.status, ServeStatus::kOverloaded);
  EXPECT_EQ(parsed.error, "capacity committed");
  EXPECT_EQ(parsed.retry_after_ms, 50u);
}

TEST(ServeProtocol, EveryStatusHasAStableWireName) {
  for (ServeStatus status :
       {ServeStatus::kOk, ServeStatus::kBadRequest, ServeStatus::kOverloaded,
        ServeStatus::kQuarantined, ServeStatus::kTimeout,
        ServeStatus::kDraining}) {
    ServeStatus parsed;
    ASSERT_TRUE(ParseServeStatus(ToString(status), &parsed))
        << ToString(status);
    EXPECT_EQ(parsed, status);
  }
  ServeStatus parsed;
  EXPECT_FALSE(ParseServeStatus("no_such_status", &parsed));
}

}  // namespace
}  // namespace tgdkit
