// Semantic sanity properties relating the dependency classes — the
// "expressive power" facts of Section 4 stated as checkable implications
// between the model-checking engines, plus classic data-exchange chase
// scenarios.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "chase/chase.h"
#include "dep/skolem.h"
#include "gen/generators.h"
#include "mc/model_check.h"
#include "parse/parser.h"
#include "query/query.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

class SemanticsTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;
};

TEST_F(SemanticsTest, HenkinImpliesPlainTgd) {
  // A Henkin tgd is stronger than the tgd obtained by forgetting the
  // quantifier structure: Q(ϕ→ψ) ⊨ ∀x̄(ϕ→∃ȳψ). Checked on random
  // instances: whenever the Henkin MC accepts, the tgd MC must accept.
  Rng rng(24681357);
  int henkin_true = 0, checked = 0;
  for (int trial = 0; trial < 40; ++trial) {
    TestWorkspace ws;
    SchemaConfig schema_config;
    schema_config.num_relations = 3;
    schema_config.max_arity = 2;
    auto relations = GenerateSchema(&ws.vocab, &rng, schema_config);
    HenkinTgd henkin = GenerateHenkinTgd(&ws.arena, &ws.vocab, &rng,
                                         relations, TgdConfig{});
    Tgd weakened;
    weakened.body = henkin.body;
    weakened.head = henkin.head;
    weakened.exist_vars = henkin.quantifier.existentials();
    ASSERT_TRUE(ValidateTgd(ws.arena, weakened).ok());

    Instance inst(&ws.vocab);
    GenerateInstance(&ws.vocab, &rng, relations, 9, 3, 0, &inst);
    McResult h = CheckHenkin(&ws.arena, &ws.vocab, inst, henkin);
    if (h.budget_exceeded) continue;
    ++checked;
    if (h.satisfied) {
      ++henkin_true;
      EXPECT_TRUE(CheckTgd(ws.arena, inst, weakened))
          << ToString(ws.arena, ws.vocab, henkin) << "\n" << inst.ToString();
    }
  }
  EXPECT_GT(checked, 30);
  EXPECT_GT(henkin_true, 0);
}

TEST_F(SemanticsTest, TgdSkolemizationImpliesHenkinWeakenings) {
  // Adding dependencies to an existential's Skolem term only STRENGTHENS
  // the function's discriminating power: if the full-dependency (tgd)
  // Skolemization is satisfied... the converse fails; check the known
  // direction concretely: f(d) satisfiable => f(e, d) satisfiable.
  Parser p(&ws_.arena, &ws_.vocab);
  auto restricted = p.ParseDependencies(
      "henkin { forall e, d ; exists m(d) } Emp(e, d) -> Mgr(e, m) .");
  auto full = p.ParseDependencies(
      "henkin { forall e, d ; exists m2(e, d) } Emp(e, d) -> Mgr(e, m2) .");
  ASSERT_TRUE(restricted.ok() && full.ok());

  Rng rng(11223344);
  RelationId emp = ws_.vocab.FindRelation("Emp");
  RelationId mgr = ws_.vocab.FindRelation("Mgr");
  int restricted_true = 0, full_only = 0;
  for (int trial = 0; trial < 40; ++trial) {
    Instance inst(&ws_.vocab);
    std::vector<Value> dom{ws_.Cv("a"), ws_.Cv("b"), ws_.Cv("c")};
    for (Value x : dom) {
      for (Value y : dom) {
        if (rng.Chance(30)) inst.AddFact(emp, std::vector<Value>{x, y});
        if (rng.Chance(45)) inst.AddFact(mgr, std::vector<Value>{x, y});
      }
    }
    bool r = CheckHenkin(&ws_.arena, &ws_.vocab, inst,
                         restricted->dependencies[0].henkin)
                 .satisfied;
    bool f = CheckHenkin(&ws_.arena, &ws_.vocab, inst,
                         full->dependencies[0].henkin)
                 .satisfied;
    if (r) {
      EXPECT_TRUE(f) << inst.ToString();  // m(d) choice also works for m2(e,d)
      ++restricted_true;
    }
    if (f && !r) ++full_only;  // the separation: f(e,d) strictly weaker
  }
  EXPECT_GT(restricted_true, 0);
  EXPECT_GT(full_only, 0);  // the paper's introduction distinction is real
}

TEST_F(SemanticsTest, CertainAnswersAreMonotoneInRules) {
  // Adding rules can only add certain answers (for terminating chases).
  Parser p(&ws_.arena, &ws_.vocab);
  auto small = p.ParseDependencies("Takes(s, c) -> Attends(s) .");
  auto extra = p.ParseDependencies(
      "Takes(s, c) -> Attends(s) .\n"
      "Takes(s, c) -> Attends(c) .");
  ASSERT_TRUE(small.ok() && extra.ok());
  Instance source(&ws_.vocab);
  ASSERT_TRUE(
      p.ParseInstanceInto("Takes(ada, logic). Takes(bob, sets).", &source)
          .ok());
  auto q = p.ParseQuery("ans(x) :- Attends(x).");
  ASSERT_TRUE(q.ok());
  std::vector<Tgd> small_tgds = small->Tgds();
  std::vector<Tgd> extra_tgds = extra->Tgds();
  SoTgd so_small = TgdsToSo(&ws_.arena, &ws_.vocab, small_tgds);
  SoTgd so_extra = TgdsToSo(&ws_.arena, &ws_.vocab, extra_tgds);
  CertainAnswers a =
      ComputeCertainAnswers(&ws_.arena, &ws_.vocab, so_small, source, *q);
  CertainAnswers b =
      ComputeCertainAnswers(&ws_.arena, &ws_.vocab, so_extra, source, *q);
  EXPECT_EQ(a.answers.size(), 2u);
  EXPECT_EQ(b.answers.size(), 4u);
  for (const auto& row : a.answers) {
    EXPECT_NE(std::find(b.answers.begin(), b.answers.end(), row),
              b.answers.end());
  }
}

TEST_F(SemanticsTest, ClassicFlightExample) {
  // Fagin et al.'s flight example shape: routes with intermediate stops
  // invented by the target.
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies(
      "Flight(src, dst) -> exists plane . Leg(src, dst, plane) .\n"
      "Leg(src, dst, plane) -> Serves(plane, src) & Serves(plane, dst) .");
  ASSERT_TRUE(program.ok());
  Instance source(&ws_.vocab);
  ASSERT_TRUE(p.ParseInstanceInto(
                   "Flight(vienna, oxford). Flight(oxford, melbourne).",
                   &source)
                  .ok());
  std::vector<Tgd> tgds = program->Tgds();
  SoTgd so = TgdsToSo(&ws_.arena, &ws_.vocab, tgds);
  ChaseResult model = Chase(&ws_.arena, &ws_.vocab, so, source);
  ASSERT_TRUE(model.Terminated());
  RelationId serves = ws_.vocab.FindRelation("Serves");
  EXPECT_EQ(model.instance.NumTuples(serves), 4u);
  // Each leg has its own invented plane.
  RelationId leg = ws_.vocab.FindRelation("Leg");
  ASSERT_EQ(model.instance.NumTuples(leg), 2u);
  EXPECT_NE(model.instance.Tuple(leg, 0)[2], model.instance.Tuple(leg, 1)[2]);
  // Provenance: each plane null explains as a Skolem term over its route.
  Value plane = model.instance.Tuple(leg, 0)[2];
  std::string explained =
      model.ExplainValue(ws_.arena, ws_.vocab, plane);
  EXPECT_NE(explained.find("sk_plane"), std::string::npos);
}

TEST_F(SemanticsTest, RestrictedChaseReusesExistingWitnesses) {
  // The restricted chase produces a SMALLER (but hom-equivalent) model
  // when witnesses pre-exist — the classic restricted-vs-oblivious gap.
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies(
      "Person(x) -> exists y . Knows(x, y) .\n"
      "Knows(x, y) -> Person(y) .");
  ASSERT_TRUE(program.ok());
  Instance source(&ws_.vocab);
  ASSERT_TRUE(
      p.ParseInstanceInto("Person(ada). Knows(ada, bob).", &source).ok());
  std::vector<Tgd> tgds = program->Tgds();
  // Neither chase terminates (every new person needs a new acquaintance);
  // compare fact counts under matched budgets: 8 rounds for the
  // restricted chase vs Skolem-term depth 8 for the oblivious one.
  // Restricted reuses Knows(ada, bob), so it grows ONE null chain (from
  // bob); the oblivious chase also invents a witness for ada — two
  // chains — and must be strictly larger.
  ChaseLimits restricted_limits;
  restricted_limits.max_rounds = 8;
  ChaseResult restricted = RestrictedChaseTgds(&ws_.arena, &ws_.vocab, tgds,
                                               source, restricted_limits);
  EXPECT_FALSE(restricted.Terminated());
  SoTgd so = TgdsToSo(&ws_.arena, &ws_.vocab, tgds);
  ChaseLimits oblivious_limits;
  oblivious_limits.max_term_depth = 8;
  ChaseResult oblivious =
      Chase(&ws_.arena, &ws_.vocab, so, source, oblivious_limits);
  EXPECT_FALSE(oblivious.Terminated());
  EXPECT_LT(restricted.instance.NumFacts(), oblivious.instance.NumFacts());
}

}  // namespace
}  // namespace tgdkit
