// Concurrency stress for the parallel chase path, written to be run
// under ThreadSanitizer (the CI tsan leg runs the whole suite, but this
// file concentrates the racy shapes): worker-side aborts from external
// cancellation and deadlines, memory-budget stops, and repeated 4-lane
// runs whose scheduling jitter must never leak into results.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "chase/chase.h"
#include "data/instance.h"
#include "dep/skolem.h"
#include "test_util.h"

namespace tgdkit {
namespace {

/// A non-terminating Skolem chase with *wide* rounds: every edge spawns
/// a fresh successor edge while transitive closure keeps relating them,
/// so rounds grow without bound (and term depth stays shallow — one
/// nesting level per round). Keeps all lanes busy mid-round until a
/// time-based stop aborts the workers.
SoTgd DivergingRules(TestWorkspace* ws) {
  SoTgd so;
  FunctionId f = ws->vocab.InternFunction("f", 2);
  so.functions = {f};
  SoPart trans;
  trans.body = {ws->A("E", {ws->V("x"), ws->V("y")}),
                ws->A("E", {ws->V("y"), ws->V("z")})};
  trans.head = {ws->A("E", {ws->V("x"), ws->V("z")})};
  SoPart grow;
  grow.body = {ws->A("E", {ws->V("x"), ws->V("y")})};
  grow.head = {
      ws->A("E", {ws->V("y"), ws->F("f", {ws->V("x"), ws->V("y")})})};
  so.parts = {trans, grow};
  return so;
}

/// Wide terminating workload: transitive closure over a path.
std::vector<Tgd> ClosureRules(TestWorkspace* ws) {
  Tgd trans;
  trans.body = {ws->A("E", {ws->V("x"), ws->V("y")}),
                ws->A("E", {ws->V("y"), ws->V("z")})};
  trans.head = {ws->A("E", {ws->V("x"), ws->V("z")})};
  return {trans};
}

Instance PathInstance(TestWorkspace* ws, int nodes) {
  Instance input(&ws->vocab);
  for (int i = 0; i + 1 < nodes; ++i) {
    input.AddFact(ws->Fc("E", {"n" + std::to_string(i),
                               "n" + std::to_string(i + 1)}));
  }
  return input;
}

TEST(ParallelStressTest, ExternalCancellationStopsParallelRound) {
  // Cancel() is called from another thread while 4 lanes are matching;
  // the engine must halt with kCancelled and stay a consistent partial
  // model (the aborted round is discarded wholesale).
  TestWorkspace ws;
  SoTgd so = DivergingRules(&ws);
  Instance input = PathInstance(&ws, 12);
  ChaseLimits limits;
  limits.threads = 4;
  limits.max_rounds = ~0ull;
  limits.max_facts = ~0ull;
  limits.max_term_depth = ~0u;
  CancellationToken cancel;
  limits.budget.cancel = cancel;
  ChaseEngine engine(&ws.arena, &ws.vocab, so, input, limits);
  std::thread canceller([&cancel] {
    std::this_thread::sleep_for(std::chrono::milliseconds(50));
    cancel.Cancel();
  });
  engine.Run();
  canceller.join();
  EXPECT_TRUE(engine.done());
  EXPECT_EQ(engine.stop_reason(), ChaseStop::kCancelled);
  EXPECT_GT(engine.facts_created(), 0u);
}

TEST(ParallelStressTest, DeadlineAbortsWorkersMidRound) {
  TestWorkspace ws;
  SoTgd so = DivergingRules(&ws);
  Instance input = PathInstance(&ws, 12);
  ChaseLimits limits;
  limits.threads = 4;
  limits.max_rounds = ~0ull;
  limits.max_facts = ~0ull;
  limits.max_term_depth = ~0u;
  limits.budget.deadline_ms = 50;
  ChaseEngine engine(&ws.arena, &ws.vocab, so, input, limits);
  engine.Run();
  EXPECT_TRUE(engine.done());
  EXPECT_EQ(engine.stop_reason(), ChaseStop::kDeadline);
}

TEST(ParallelStressTest, MemoryBudgetStopsParallelRun) {
  // The byte budget now includes the fact store's index bytes; a tight
  // budget must stop a 4-lane run deterministically (memory is only
  // checked on the serial path, never from workers).
  auto run = [](uint32_t threads) {
    TestWorkspace ws;
    std::vector<Tgd> tgds = ClosureRules(&ws);
    SoTgd so = TgdsToSo(&ws.arena, &ws.vocab, tgds);
    Instance input = PathInstance(&ws, 64);
    ChaseLimits limits;
    limits.threads = threads;
    limits.budget.max_memory_bytes = 96 * 1024;
    ChaseEngine engine(&ws.arena, &ws.vocab, so, input, limits);
    engine.Run();
    EXPECT_TRUE(engine.done());
    EXPECT_EQ(engine.stop_reason(), ChaseStop::kMemoryLimit);
    return engine.instance().ToExactText();
  };
  std::string serial = run(1);
  std::string parallel = run(4);
  EXPECT_EQ(serial, parallel);
}

TEST(ParallelStressTest, RepeatedParallelRunsAreJitterFree) {
  // The same 4-lane run, many times: scheduling differences across runs
  // must never change the result or the step count. Under TSan this also
  // hammers the pool handoff and the per-slice result slots.
  auto run = [] {
    TestWorkspace ws;
    std::vector<Tgd> tgds = ClosureRules(&ws);
    SoTgd so = TgdsToSo(&ws.arena, &ws.vocab, tgds);
    Instance input = PathInstance(&ws, 28);
    ChaseLimits limits;
    limits.threads = 4;
    ChaseEngine engine(&ws.arena, &ws.vocab, so, input, limits);
    engine.Run();
    EXPECT_EQ(engine.stop_reason(), ChaseStop::kFixpoint);
    return std::make_pair(engine.instance().ToExactText(),
                          engine.governor().total_steps());
  };
  auto first = run();
  for (int i = 0; i < 8; ++i) {
    auto again = run();
    ASSERT_EQ(again.first, first.first) << "iteration " << i;
    ASSERT_EQ(again.second, first.second) << "iteration " << i;
  }
}

TEST(ParallelStressTest, RestrictedChaseDeadlineUnderLoad) {
  // The restricted engine stages per-tgd; a deadline must abort its
  // workers too. Diverging standard-chase workload: R(x) -> exists y
  // R(y) fires forever (each new null re-triggers).
  TestWorkspace ws;
  Tgd grow;  // R(x) -> exists y . E(x, y): never satisfiable by extension
  grow.body = {ws.A("R", {ws.V("x")})};
  grow.head = {ws.A("E", {ws.V("x"), ws.V("y")})};
  grow.exist_vars = {ws.Vid("y")};
  Tgd back;  // E(x, y) -> R(y): re-arms the existential rule forever
  back.body = {ws.A("E", {ws.V("x"), ws.V("y")})};
  back.head = {ws.A("R", {ws.V("y")})};
  std::vector<Tgd> tgds = {grow, back};
  Instance input(&ws.vocab);
  input.AddFact(ws.Fc("R", {"a"}));
  ChaseLimits limits;
  limits.threads = 4;
  limits.max_rounds = ~0ull;
  limits.max_facts = ~0ull;
  limits.budget.deadline_ms = 50;
  ChaseResult result =
      RestrictedChaseTgds(&ws.arena, &ws.vocab, tgds, input, limits);
  EXPECT_EQ(result.stop_reason, ChaseStop::kDeadline);
}

}  // namespace
}  // namespace tgdkit
