// Tests for the GraphViz exports and the `tgdkit dot` CLI command.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>

#include "classify/dot.h"
#include "cli/cli.h"
#include "dep/skolem.h"
#include "parse/parser.h"
#include "reduce/pcp.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

class DotTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;
};

TEST_F(DotTest, PositionGraphShowsSpecialEdges) {
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies("P(x) -> exists y . R(x, y) .");
  ASSERT_TRUE(program.ok());
  std::vector<Tgd> tgds = program->Tgds();
  SoTgd so = TgdsToSo(&ws_.arena, &ws_.vocab, tgds);
  std::string dot = PositionGraphDot(ws_.arena, ws_.vocab, so);
  EXPECT_NE(dot.find("digraph positions"), std::string::npos);
  // Regular edge P.0 -> R.0, special edge P.0 -> R.1.
  EXPECT_NE(dot.find("\"P.0\" -> \"R.0\";"), std::string::npos);
  EXPECT_NE(dot.find("\"P.0\" -> \"R.1\" [style=dashed"), std::string::npos);
  // The affected position R.1 is shaded.
  EXPECT_NE(dot.find("\"R.1\" [style=filled"), std::string::npos);
  EXPECT_EQ(dot.find("\"R.0\" [style=filled"), std::string::npos);
}

TEST_F(DotTest, QuantifierGraphShapes) {
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies(
      "henkin { forall e, d ; exists eid(e) ; exists dm(d) }"
      " Emp(e, d) -> Pair(e, d, eid, dm) .");
  ASSERT_TRUE(program.ok());
  std::string dot =
      QuantifierDot(ws_.vocab, program->dependencies[0].henkin.quantifier);
  EXPECT_NE(dot.find("\"e\" [shape=box]"), std::string::npos);
  EXPECT_NE(dot.find("\"eid\" [shape=ellipse"), std::string::npos);
  EXPECT_NE(dot.find("\"e\" -> \"eid\";"), std::string::npos);
  EXPECT_NE(dot.find("\"d\" -> \"dm\";"), std::string::npos);
  EXPECT_EQ(dot.find("\"e\" -> \"dm\""), std::string::npos);
}

TEST_F(DotTest, NestingTreeHasOneNodePerPart) {
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies(
      "nested Dep(d) -> exists u . Dep2(u) &"
      " [ Grp(d, g) -> Grp2(u, g) ] &"
      " [ Emp(e, d) -> Mgr(e, u) ] .");
  ASSERT_TRUE(program.ok());
  std::string dot =
      NestingTreeDot(ws_.arena, ws_.vocab, program->dependencies[0].nested);
  EXPECT_NE(dot.find("n0 "), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n1;"), std::string::npos);
  EXPECT_NE(dot.find("n0 -> n2;"), std::string::npos);
  EXPECT_NE(dot.find("Dep(d)"), std::string::npos);
}

TEST_F(DotTest, PcpPositionGraphHasSpecialCycle) {
  // The PCP encoding's position graph must contain dashed (special)
  // edges — the visual signature of its non-weak-acyclicity.
  PcpInstance pcp{2, {{{1}, {2}}, {{2}, {1}}}};
  PcpEncoding enc = BuildPcpEncoding(&ws_.arena, &ws_.vocab, pcp);
  SoTgd rules = enc.HenkinRuleSet(&ws_.arena, &ws_.vocab);
  std::string dot = PositionGraphDot(ws_.arena, ws_.vocab, rules);
  EXPECT_NE(dot.find("style=dashed"), std::string::npos);
  // Both term-carrying positions of R are affected (shaded).
  EXPECT_NE(dot.find("\"R.1\" [style=filled"), std::string::npos);
  EXPECT_NE(dot.find("\"R.2\" [style=filled"), std::string::npos);
}

TEST_F(DotTest, HasseDiagramColorsMembersAndDrawsSubsumptions) {
  Parser p(&ws_.arena, &ws_.vocab);
  auto program =
      p.ParseDependencies("Emp(e, d) -> exists m . Mgr(e, m) .");
  ASSERT_TRUE(program.ok());
  SoTgd so = program->Sos().empty()
                 ? TgdsToSo(&ws_.arena, &ws_.vocab, program->Tgds())
                 : program->Sos()[0];
  std::string dot = Figure2HasseDot(ClassifyFigure2(ws_.arena, so));
  EXPECT_NE(dot.find("digraph hasse"), std::string::npos);
  // Members are filled; full (a non-member here) is not.
  EXPECT_NE(dot.find("\"linear\" [style=filled"), std::string::npos);
  EXPECT_NE(dot.find("\"triangularly-guarded\" [style=filled"),
            std::string::npos);
  EXPECT_EQ(dot.find("\"full\" [style=filled"), std::string::npos);
  // The new class sits above all three maximal classic classes.
  EXPECT_NE(dot.find("\"weakly-acyclic\" -> \"triangularly-guarded\";"),
            std::string::npos);
  EXPECT_NE(dot.find("\"weakly-guarded\" -> \"triangularly-guarded\";"),
            std::string::npos);
  EXPECT_NE(dot.find("\"sticky-join\" -> \"triangularly-guarded\";"),
            std::string::npos);
}

TEST_F(DotTest, AnalysisGraphRendersTheWitnessTriangleRed) {
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies(
      "bad : E(x, y) & E(y, z) -> exists w . E(z, w) .");
  ASSERT_TRUE(program.ok());
  ProgramAnalysis analysis =
      AnalyzeProgram(&ws_.arena, &ws_.vocab, *program);
  ASSERT_FALSE(analysis.verdict(Criterion::kTriangularlyGuarded).holds);
  std::string dot = AnalysisDot(ws_.vocab, analysis);
  // The unguarded component's nodes carry a red border...
  EXPECT_NE(dot.find("\"E.0\" [style=filled, fillcolor=lightgray, "
                     "penwidth=2, color=red]"),
            std::string::npos)
      << dot;
  EXPECT_NE(dot.find("\"E.1\" [style=filled, fillcolor=lightgray, "
                     "penwidth=2, color=red]"),
            std::string::npos)
      << dot;
  // ... and its witness cycle edges are red too.
  EXPECT_NE(dot.find("color=red, penwidth=2"), std::string::npos) << dot;
}

TEST_F(DotTest, CliDotCommand) {
  std::string path = testing::TempDir() + "/dot_cli_deps.tgd";
  {
    std::ofstream out(path);
    out << "henkin { forall x ; exists y(x) } P(x) -> R(x, y) .\n"
        << "nested Q(a) -> exists b . S(a, b) & [ T(a, c) -> U(b, c) ] .\n";
  }
  std::ostringstream out, err;
  int code = RunCli({"dot", path}, out, err);
  std::remove(path.c_str());
  EXPECT_EQ(code, 0) << err.str();
  EXPECT_NE(out.str().find("digraph positions"), std::string::npos);
  EXPECT_NE(out.str().find("digraph quantifier"), std::string::npos);
  EXPECT_NE(out.str().find("digraph nesting"), std::string::npos);
  EXPECT_NE(out.str().find("digraph hasse"), std::string::npos);
}

}  // namespace
}  // namespace tgdkit
