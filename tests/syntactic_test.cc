// Tests for the Figure 1 syntactic recognizers: each dependency class's
// Skolemized form must be accepted by its own recognizer and by every
// recognizer above it in the Hasse diagram, and the example dependencies
// from the paper must land exactly where the paper places them.
#include <gtest/gtest.h>

#include "dep/skolem.h"
#include "dep/syntactic.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

class SyntacticTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;

  SoTgd EmpTgdSkolemized() {
    Tgd tgd;
    tgd.body = {ws_.A("Emp", {ws_.V("e"), ws_.V("d")})};
    tgd.head = {ws_.A("Mgr", {ws_.V("e"), ws_.V("dm")})};
    tgd.exist_vars = {ws_.Vid("dm")};
    return TgdToSo(&ws_.arena, &ws_.vocab, tgd);
  }

  /// The paper's "department manager depends only on the department":
  ///   Emp(e, d) -> Mgr(e, f_dm(d)).
  SoTgd DeptManagerSo() {
    FunctionId fdm = ws_.vocab.InternFunction("fdm", 1);
    SoTgd so;
    so.functions = {fdm};
    SoPart p;
    p.body = {ws_.A("Emp", {ws_.V("e"), ws_.V("d")})};
    p.head = {ws_.A("Mgr", {ws_.V("e"), ws_.F("fdm", {ws_.V("d")})})};
    so.parts = {p};
    return so;
  }

  /// The paper's employee-ID dependency:
  ///   Emp(e, d) -> Mgr(f_eid(e), f_dm(d)).
  SoTgd EmployeeIdSo() {
    FunctionId feid = ws_.vocab.InternFunction("feid", 1);
    FunctionId fdm2 = ws_.vocab.InternFunction("fdm2", 1);
    SoTgd so;
    so.functions = {feid, fdm2};
    SoPart p;
    p.body = {ws_.A("Emp", {ws_.V("e"), ws_.V("d")})};
    p.head = {ws_.A("Mgr", {ws_.F("feid", {ws_.V("e")}),
                            ws_.F("fdm2", {ws_.V("d")})})};
    so.parts = {p};
    return so;
  }

  /// Skolemized normalized nested tgd (the Dep/Grp/Emp example):
  ///   Dep(d) -> Dep2(fd(d));
  ///   Dep(d) & Grp(d,g) -> Grp2(fd(d), fg(d,g));
  ///   Dep(d) & Grp(d,g) & Emp(d,g,e) -> Emp2(fd(d), fg(d,g), e).
  SoTgd NestedNormalizedSo() {
    FunctionId fd = ws_.vocab.InternFunction("fd", 1);
    FunctionId fg = ws_.vocab.InternFunction("fg", 2);
    (void)fd;
    (void)fg;
    TermId d = ws_.V("d"), g = ws_.V("g"), e = ws_.V("e");
    TermId fdd = ws_.F("fd", {d});
    TermId fgdg = ws_.F("fg", {d, g});
    SoTgd so;
    so.functions = {ws_.vocab.FindFunction("fd"),
                    ws_.vocab.FindFunction("fg")};
    SoPart p1;
    p1.body = {ws_.A("Dep", {d})};
    p1.head = {ws_.A("Dep2", {fdd})};
    SoPart p2;
    p2.body = {ws_.A("Dep", {d}), ws_.A("Grp", {d, g})};
    p2.head = {ws_.A("Grp2", {fdd, fgdg})};
    SoPart p3;
    p3.body = {ws_.A("Dep", {d}), ws_.A("Grp", {d, g}),
               ws_.A("Emp", {d, g, e})};
    p3.head = {ws_.A("Emp2", {fdd, fgdg, e})};
    so.parts = {p1, p2, p3};
    return so;
  }
};

TEST_F(SyntacticTest, TgdSkolemizationIsInEveryClass) {
  SoTgd so = EmpTgdSkolemized();
  Figure1Membership m = ClassifyFigure1(ws_.arena, so);
  EXPECT_TRUE(m.tgd);
  EXPECT_TRUE(m.standard_henkin);
  EXPECT_TRUE(m.henkin);
  EXPECT_TRUE(m.normalized_nested_shape);
  EXPECT_TRUE(m.plain_so);
  EXPECT_TRUE(m.so_tgd);
}

TEST_F(SyntacticTest, DeptManagerIsHenkinNotTgd) {
  SoTgd so = DeptManagerSo();
  Figure1Membership m = ClassifyFigure1(ws_.arena, so);
  EXPECT_FALSE(m.tgd);  // f_dm(d) misses universal e
  EXPECT_TRUE(m.standard_henkin);
  EXPECT_TRUE(m.henkin);
  EXPECT_TRUE(m.plain_so);
}

TEST_F(SyntacticTest, EmployeeIdIsStandardHenkinNotNestedShape) {
  SoTgd so = EmployeeIdSo();
  Figure1Membership m = ClassifyFigure1(ws_.arena, so);
  EXPECT_FALSE(m.tgd);
  EXPECT_TRUE(m.standard_henkin);  // chains {e}, {d} are disjoint
  EXPECT_TRUE(m.henkin);
  // Within one part, nested-tgd Skolem terms lie on one ancestor path, so
  // the disjoint sets {e} and {d} violate the nested shape — matching the
  // paper: "Nested tgds are not able to express this dependency."
  EXPECT_FALSE(m.normalized_nested_shape);
}

TEST_F(SyntacticTest, OverlappingArgListsAreHenkinOnly) {
  // R(x,y,z) -> S(f(x,y), g(y,z)): {x,y} and {y,z} overlap but are not
  // nested — a (non-standard) Henkin tgd outside the nested shape.
  FunctionId f = ws_.vocab.InternFunction("f", 2);
  FunctionId g = ws_.vocab.InternFunction("g", 2);
  SoTgd so;
  so.functions = {f, g};
  SoPart p;
  TermId x = ws_.V("x"), y = ws_.V("y"), z = ws_.V("z");
  p.body = {ws_.A("R", {x, y, z})};
  p.head = {ws_.A("S", {ws_.F("f", {x, y}), ws_.F("g", {y, z})})};
  so.parts = {p};
  Figure1Membership m = ClassifyFigure1(ws_.arena, so);
  EXPECT_TRUE(m.henkin);
  EXPECT_FALSE(m.standard_henkin);
  EXPECT_FALSE(m.normalized_nested_shape);
  EXPECT_FALSE(m.tgd);
}

TEST_F(SyntacticTest, NestedArgListsAreNestedShapeNotStandardHenkin) {
  // R(d,g) -> S(f(d), g2(d,g)): {d} ⊆ {d,g} — hierarchical, not disjoint.
  FunctionId f = ws_.vocab.InternFunction("f1", 1);
  FunctionId g2 = ws_.vocab.InternFunction("g2", 2);
  SoTgd so;
  so.functions = {f, g2};
  SoPart p;
  TermId d = ws_.V("d"), g = ws_.V("g");
  p.body = {ws_.A("R", {d, g})};
  p.head = {ws_.A("S", {ws_.F("f1", {d}), ws_.F("g2", {d, g})})};
  so.parts = {p};
  Figure1Membership m = ClassifyFigure1(ws_.arena, so);
  EXPECT_TRUE(m.henkin);
  EXPECT_FALSE(m.standard_henkin);
  EXPECT_TRUE(m.normalized_nested_shape);
}

TEST_F(SyntacticTest, NormalizedNestedExampleClassifies) {
  SoTgd so = NestedNormalizedSo();
  ASSERT_TRUE(ValidateSoTgd(ws_.arena, so).ok());
  Figure1Membership m = ClassifyFigure1(ws_.arena, so);
  EXPECT_TRUE(m.normalized_nested_shape);
  EXPECT_TRUE(m.plain_so);
  // fd and fg span several parts: outside (standard) Henkin tgds, whose
  // functions are quantified per-dependency.
  EXPECT_FALSE(m.henkin);
  EXPECT_FALSE(m.tgd);
}

TEST_F(SyntacticTest, InconsistentArgumentListsLeaveAllSubclasses) {
  // f used as f(x) in one part and f(y) in another: plain SO tgd only.
  FunctionId f = ws_.vocab.InternFunction("fI", 1);
  SoTgd so;
  so.functions = {f};
  SoPart p1;
  p1.body = {ws_.A("P", {ws_.V("x")})};
  p1.head = {ws_.A("R", {ws_.F("fI", {ws_.V("x")})})};
  SoPart p2;
  p2.body = {ws_.A("Q", {ws_.V("y")})};
  p2.head = {ws_.A("R", {ws_.F("fI", {ws_.V("y")})})};
  so.parts = {p1, p2};
  Figure1Membership m = ClassifyFigure1(ws_.arena, so);
  EXPECT_TRUE(m.plain_so);
  EXPECT_FALSE(m.henkin);
  EXPECT_FALSE(m.normalized_nested_shape);
}

TEST_F(SyntacticTest, RepeatedVariableInSkolemArgsRejected) {
  FunctionId f = ws_.vocab.InternFunction("fR", 2);
  SoTgd so;
  so.functions = {f};
  SoPart p;
  TermId x = ws_.V("x");
  p.body = {ws_.A("P", {x})};
  p.head = {ws_.A("R", {ws_.F("fR", {x, x})})};
  so.parts = {p};
  Figure1Membership m = ClassifyFigure1(ws_.arena, so);
  EXPECT_TRUE(m.plain_so);
  EXPECT_FALSE(m.henkin);
  EXPECT_FALSE(m.tgd);
}

TEST_F(SyntacticTest, ConstantInSkolemArgsRejected) {
  FunctionId f = ws_.vocab.InternFunction("fC", 1);
  SoTgd so;
  so.functions = {f};
  SoPart p;
  p.body = {ws_.A("P", {ws_.V("x")})};
  p.head = {ws_.A("R", {ws_.V("x"), ws_.F("fC", {ws_.C("k")})})};
  so.parts = {p};
  Figure1Membership m = ClassifyFigure1(ws_.arena, so);
  EXPECT_FALSE(m.henkin);
}

TEST_F(SyntacticTest, EqualitiesExcludePlain) {
  FunctionId f = ws_.vocab.InternFunction("fE", 1);
  SoTgd so;
  so.functions = {f};
  SoPart p;
  p.body = {ws_.A("P", {ws_.V("x")})};
  p.equalities = {{ws_.V("x"), ws_.F("fE", {ws_.V("x")})}};
  p.head = {ws_.A("R", {ws_.V("x")})};
  so.parts = {p};
  Figure1Membership m = ClassifyFigure1(ws_.arena, so);
  EXPECT_FALSE(m.plain_so);
  EXPECT_FALSE(m.henkin);
  EXPECT_TRUE(m.so_tgd);
}

TEST_F(SyntacticTest, FullTgdWithoutFunctionsIsEverything) {
  Tgd full;
  full.body = {ws_.A("Q0", {ws_.V("x1"), ws_.V("x2")})};
  full.head = {ws_.A("Q", {ws_.V("x1"), ws_.V("x2")})};
  SoTgd so = TgdToSo(&ws_.arena, &ws_.vocab, full);
  Figure1Membership m = ClassifyFigure1(ws_.arena, so);
  EXPECT_TRUE(m.tgd);
  EXPECT_TRUE(m.standard_henkin);
  EXPECT_TRUE(m.henkin);
  EXPECT_TRUE(m.normalized_nested_shape);
}

TEST_F(SyntacticTest, MembershipToString) {
  SoTgd so = EmpTgdSkolemized();
  EXPECT_EQ(ToString(ClassifyFigure1(ws_.arena, so)),
            "tgd,std-henkin,henkin,nested,plain-so,so");
}

TEST_F(SyntacticTest, CollectFunctionOccurrencesFindsNestedOnes) {
  FunctionId f = ws_.vocab.InternFunction("fN", 1);
  FunctionId g = ws_.vocab.InternFunction("gN", 1);
  SoTgd so;
  so.functions = {f, g};
  SoPart p;
  p.body = {ws_.A("P", {ws_.V("x")})};
  p.head = {ws_.A("R", {ws_.F("fN", {ws_.F("gN", {ws_.V("x")})})})};
  so.parts = {p};
  auto occs = CollectFunctionOccurrences(ws_.arena, so);
  EXPECT_EQ(occs.at(f).size(), 1u);
  EXPECT_EQ(occs.at(g).size(), 1u);
}

}  // namespace
}  // namespace tgdkit
