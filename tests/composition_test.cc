// Tests for schema-mapping composition (transform/composition.h): the
// Fagin et al. construction the paper cites as the motivation for SO
// tgds, including the self-manager example reproduced in Section 2.
#include <gtest/gtest.h>

#include "chase/chase.h"
#include "dep/skolem.h"
#include "homo/core.h"
#include "mc/model_check.h"
#include "parse/parser.h"
#include "query/query.h"
#include "tests/test_util.h"
#include "transform/composition.h"

namespace tgdkit {
namespace {

class CompositionTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;

  std::vector<Tgd> ParseTgds(const std::string& text) {
    Parser p(&ws_.arena, &ws_.vocab);
    auto program = p.ParseDependencies(text);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    return program->Tgds();
  }
};

TEST_F(CompositionTest, SelfManagerExample) {
  // Σ12: Emp(e) -> exists m . Rep(e, m)
  // Σ23: Rep(e, m) -> Mgr(e, m);  Rep(e, e) -> SelfMgr(e)
  // Composition (Fagin et al., also the paper's Section 2 example):
  //   ∃f { Emp(e) -> Mgr(e, f(e)) ;  Emp(e) & e = f(e) -> SelfMgr(e) }.
  std::vector<Tgd> sigma12 = ParseTgds("Emp(e) -> exists m . Rep(e, m) .");
  std::vector<Tgd> sigma23 = ParseTgds(
      "Rep(e, m) -> Mgr(e, m) .\n"
      "Rep(e2, e2) -> SelfMgr(e2) .");
  auto composed = ComposeMappings(&ws_.arena, &ws_.vocab, sigma12, sigma23);
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();
  ASSERT_EQ(composed->parts.size(), 2u);
  EXPECT_EQ(composed->functions.size(), 1u);
  EXPECT_TRUE(ValidateSoTgd(ws_.arena, *composed).ok());

  // Part 1: Emp -> Mgr(e, f(e)) with no equalities.
  EXPECT_TRUE(composed->parts[0].equalities.empty());
  EXPECT_EQ(ws_.vocab.RelationName(composed->parts[0].head[0].relation),
            "Mgr");
  // Part 2: the repeated variable e2 forces the equality e = f(e).
  EXPECT_EQ(composed->parts[1].equalities.size(), 1u);
  EXPECT_EQ(ws_.vocab.RelationName(composed->parts[1].head[0].relation),
            "SelfMgr");
  // Equalities make it a proper (non-plain) SO tgd.
  EXPECT_FALSE(composed->IsPlain(ws_.arena));
}

TEST_F(CompositionTest, ComposedSemanticsMatchSequentialChase) {
  // Certain answers through the composition equal certain answers through
  // the two-step chase.
  std::vector<Tgd> sigma12 = ParseTgds(
      "Takes(s, c) -> Takes1(s, c) .\n"
      "Takes(s, c) -> exists k . Student(s, k) .");
  std::vector<Tgd> sigma23 = ParseTgds(
      "Takes1(s, c) & Student(s, k) -> Enrolled(k, c) .");
  auto composed = ComposeMappings(&ws_.arena, &ws_.vocab, sigma12, sigma23);
  ASSERT_TRUE(composed.ok()) << composed.status().ToString();
  ASSERT_FALSE(composed->parts.empty());

  Parser p(&ws_.arena, &ws_.vocab);
  Instance source(&ws_.vocab);
  ASSERT_TRUE(p.ParseInstanceInto(
                   "Takes(alice, logic). Takes(alice, algebra)."
                   "Takes(bob, logic).",
                   &source)
                  .ok());

  // Path A: chase with Σ12, then with Σ23.
  SoTgd so12 = TgdsToSo(&ws_.arena, &ws_.vocab, sigma12);
  ChaseResult step1 = Chase(&ws_.arena, &ws_.vocab, so12, source);
  ASSERT_TRUE(step1.Terminated());
  SoTgd so23 = TgdsToSo(&ws_.arena, &ws_.vocab, sigma23);
  ChaseResult step2 = Chase(&ws_.arena, &ws_.vocab, so23, step1.instance);
  ASSERT_TRUE(step2.Terminated());

  // Path B: chase with the composed SO tgd directly.
  ChaseResult direct = Chase(&ws_.arena, &ws_.vocab, *composed, source);
  ASSERT_TRUE(direct.Terminated());

  // Compare certain answers over the S3 schema.
  ConjunctiveQuery q;
  q.atoms = {ws_.A("Enrolled", {ws_.V("k"), ws_.V("c")})};
  q.free_vars = {ws_.Vid("c")};
  auto answers_a = Evaluate(ws_.arena, step2.instance, q);
  auto answers_b = Evaluate(ws_.arena, direct.instance, q);
  // Null-free projections must coincide.
  auto strip_nulls = [](std::vector<std::vector<Value>> rows) {
    std::vector<std::vector<Value>> out;
    for (auto& row : rows) {
      bool clean = true;
      for (Value v : row) clean &= v.is_constant();
      if (clean) out.push_back(row);
    }
    return out;
  };
  EXPECT_EQ(strip_nulls(answers_a), strip_nulls(answers_b));
  // Both see each course exactly once per enrolled key-pattern: logic and
  // algebra appear.
  EXPECT_EQ(strip_nulls(answers_a).size(), 2u);
}

TEST_F(CompositionTest, UnmatchedRelationYieldsNoParts) {
  std::vector<Tgd> sigma12 = ParseTgds("A(x) -> B(x) .");
  std::vector<Tgd> sigma23 = ParseTgds("Cx(x) -> D(x) .");
  auto composed = ComposeMappings(&ws_.arena, &ws_.vocab, sigma12, sigma23);
  ASSERT_TRUE(composed.ok());
  EXPECT_TRUE(composed->parts.empty());
}

TEST_F(CompositionTest, MultipleDerivationsMultiplyParts) {
  // Two ways to produce B: the composition enumerates both.
  std::vector<Tgd> sigma12 = ParseTgds(
      "A1(x) -> B(x) .\n"
      "A2(x) -> B(x) .");
  std::vector<Tgd> sigma23 = ParseTgds("B(x) -> Cx(x) .");
  auto composed = ComposeMappings(&ws_.arena, &ws_.vocab, sigma12, sigma23);
  ASSERT_TRUE(composed.ok());
  EXPECT_EQ(composed->parts.size(), 2u);
}

TEST_F(CompositionTest, JoinOverNullProducesNestedTerm) {
  // Σ12 invents a value; Σ23 joins over it and re-quantifies: the composed
  // head contains a Skolem term applied to a Skolem term.
  std::vector<Tgd> sigma12 = ParseTgds("A(x) -> exists y . B(x, y) .");
  std::vector<Tgd> sigma23 = ParseTgds("B(x, y) -> exists z . Cx(y, z) .");
  auto composed = ComposeMappings(&ws_.arena, &ws_.vocab, sigma12, sigma23);
  ASSERT_TRUE(composed.ok());
  ASSERT_EQ(composed->parts.size(), 1u);
  bool has_nested = false;
  for (const Atom& atom : composed->parts[0].head) {
    for (TermId t : atom.args) {
      has_nested |= ws_.arena.HasNestedFunction(t);
    }
  }
  EXPECT_TRUE(has_nested);
  EXPECT_FALSE(composed->IsPlain(ws_.arena));
}

TEST_F(CompositionTest, ComposedModelCheckAgreesOnExamples) {
  // The composed self-manager SO tgd behaves exactly like the paper's
  // hand-written one on concrete instances.
  std::vector<Tgd> sigma12 = ParseTgds("Emp(e) -> exists m . Rep(e, m) .");
  std::vector<Tgd> sigma23 = ParseTgds(
      "Rep(e, m) -> Mgr(e, m) .\n"
      "Rep(e2, e2) -> SelfMgr(e2) .");
  auto composed = ComposeMappings(&ws_.arena, &ws_.vocab, sigma12, sigma23);
  ASSERT_TRUE(composed.ok());

  Parser p(&ws_.arena, &ws_.vocab);
  Instance violating(&ws_.vocab);
  ASSERT_TRUE(
      p.ParseInstanceInto("Emp(carol). Mgr(carol, carol).", &violating).ok());
  // Forced self-management without the SelfMgr marker: violated.
  EXPECT_FALSE(CheckSo(ws_.arena, violating, *composed).satisfied);

  Instance fine(&ws_.vocab);
  ASSERT_TRUE(p.ParseInstanceInto(
                   "Emp(carol). Mgr(carol, carol). SelfMgr(carol).", &fine)
                  .ok());
  EXPECT_TRUE(CheckSo(ws_.arena, fine, *composed).satisfied);
}

}  // namespace
}  // namespace tgdkit
