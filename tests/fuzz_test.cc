// Tests for the chaos-fuzzing subsystem (src/fuzz, docs/FUZZING.md):
// adversarial generator determinism and parseability, the invariant
// battery on clean seeds, the seeded-defect catch -> shrink -> reproduce
// loop, the delta-debugging shrinker, and the reproducer format.
#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "api/api.h"
#include "base/rng.h"
#include "fuzz/corpus.h"
#include "fuzz/fuzz.h"
#include "fuzz/shrink.h"
#include "gen/generators.h"
#include "parse/parser.h"

namespace tgdkit {
namespace {

AdversarialShape ShapeAt(uint32_t i) {
  return static_cast<AdversarialShape>(i % kNumAdversarialShapes);
}

uint64_t CountNonEmptyLines(const std::string& text) {
  uint64_t count = 0;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) {
    if (!line.empty()) ++count;
  }
  return count;
}

TEST(AdversarialGeneratorTest, SameSeedSameScenario) {
  for (uint32_t s = 0; s < kNumAdversarialShapes; ++s) {
    for (uint64_t seed : {1ull, 7ull, 42ull, 1234567ull}) {
      Rng a(seed), b(seed);
      AdversarialScenario one =
          GenerateAdversarialScenario(&a, ShapeAt(s), AdversarialConfig{});
      AdversarialScenario two =
          GenerateAdversarialScenario(&b, ShapeAt(s), AdversarialConfig{});
      EXPECT_EQ(one.program, two.program);
      EXPECT_EQ(one.instance, two.instance);
      EXPECT_EQ(one.query, two.query);
      EXPECT_EQ(one.may_diverge, two.may_diverge);
    }
  }
}

TEST(AdversarialGeneratorTest, EveryShapeParsesAcrossSeeds) {
  for (uint32_t s = 0; s < kNumAdversarialShapes; ++s) {
    for (uint64_t seed = 1; seed <= 12; ++seed) {
      Rng rng(seed);
      AdversarialScenario scenario =
          GenerateAdversarialScenario(&rng, ShapeAt(s), AdversarialConfig{});
      SCOPED_TRACE(std::string(AdversarialShapeName(scenario.shape)) +
                   " seed " + std::to_string(seed));
      TermArena arena;
      Vocabulary vocab;
      Parser parser(&arena, &vocab);
      Result<DependencyProgram> program =
          parser.ParseDependencies(scenario.program);
      ASSERT_TRUE(program.ok())
          << program.status().ToString() << "\n" << scenario.program;
      EXPECT_FALSE(program->dependencies.empty());
      Instance instance(&vocab);
      Status inst = parser.ParseInstanceInto(scenario.instance, &instance);
      ASSERT_TRUE(inst.ok()) << inst.ToString() << "\n" << scenario.instance;
      EXPECT_GT(instance.NumFacts(), 0u);
      if (!scenario.query.empty()) {
        Result<ConjunctiveQuery> query = parser.ParseQuery(scenario.query);
        EXPECT_TRUE(query.ok()) << query.status().ToString();
      }
    }
  }
}

TEST(AdversarialGeneratorTest, ScaledFactsReachMillionsDeterministically) {
  const uint64_t kFacts = 1000000;
  Rng a(99), b(99);
  std::string one, two;
  AppendScaledFactsText(&a, "Big", 2, kFacts, 1000, &one);
  AppendScaledFactsText(&b, "Big", 2, kFacts, 1000, &two);
  EXPECT_EQ(one, two);
  EXPECT_EQ(CountNonEmptyLines(one), kFacts);
  // Spot-check the line format the parser expects.
  EXPECT_EQ(one.compare(0, 4, "Big("), 0);
  EXPECT_NE(one.find(") .\n"), std::string::npos);
}

TEST(FaultScheduleTest, ToStringParseRoundTrip) {
  std::vector<FaultSchedule> cases;
  cases.push_back({});
  cases.push_back({FaultSchedule::Kind::kCrashAt, 3, "mid"});
  cases.push_back({FaultSchedule::Kind::kFailWriteAt, 5, ""});
  cases.push_back({FaultSchedule::Kind::kStepBudget, 11, ""});
  for (const FaultSchedule& fault : cases) {
    FaultSchedule parsed;
    ASSERT_TRUE(ParseFaultSchedule(ToString(fault), &parsed))
        << ToString(fault);
    EXPECT_EQ(parsed.kind, fault.kind);
    if (fault.kind != FaultSchedule::Kind::kNone) {
      EXPECT_EQ(parsed.value, fault.value);
    }
  }
  FaultSchedule parsed;
  EXPECT_FALSE(ParseFaultSchedule("gibberish", &parsed));
  EXPECT_FALSE(ParseFaultSchedule("crash-at 0 mid", &parsed));
  EXPECT_FALSE(ParseFaultSchedule("crash-at 2 sideways", &parsed));
}

FuzzOptions LibraryOnlyOptions() {
  FuzzOptions options;  // no run_cli, no scratch: in-process battery only
  options.fork_faults = false;
  return options;
}

TEST(FuzzScenarioTest, MakeScenarioIsDeterministic) {
  FuzzOptions options = LibraryOnlyOptions();
  for (uint64_t seed = 1; seed <= 16; ++seed) {
    FuzzScenario one = MakeScenario(seed, options);
    FuzzScenario two = MakeScenario(seed, options);
    EXPECT_EQ(one.program, two.program);
    EXPECT_EQ(one.instance, two.instance);
    EXPECT_EQ(ToString(one.fault), ToString(two.fault));
    EXPECT_EQ(one.shape, two.shape);
  }
}

TEST(FuzzScenarioTest, CleanSeedsPassTheInProcessBattery) {
  FuzzOptions options = LibraryOnlyOptions();
  for (uint64_t seed = 1; seed <= 10; ++seed) {
    FuzzScenario scenario = MakeScenario(seed, options);
    ScenarioVerdict verdict = RunScenario(scenario, options);
    EXPECT_FALSE(verdict.violation.has_value())
        << "seed " << seed << " shape "
        << AdversarialShapeName(scenario.shape) << ": "
        << verdict.violation->invariant << ": "
        << verdict.violation->detail;
    EXPECT_FALSE(verdict.invariants.empty());
  }
}

TEST(FuzzScenarioTest, FullBatteryWithCliPassesOnCleanSeeds) {
  FuzzOptions options;
  options.scratch_dir = testing::TempDir() + "/tgdkit_fuzz_battery";
  options.run_cli = [](const std::vector<std::string>& args,
                       std::ostream& out, std::ostream& err) {
    return RunCommand(args, out, err, ApiOptions{});
  };
  for (uint64_t seed : {2ull, 3ull, 5ull, 9ull}) {
    FuzzScenario scenario = MakeScenario(seed, options);
    ScenarioVerdict verdict = RunScenario(scenario, options);
    EXPECT_FALSE(verdict.violation.has_value())
        << "seed " << seed << ": " << verdict.violation->invariant << ": "
        << verdict.violation->detail;
  }
}

TEST(FuzzInjectBugTest, TamperedWitnessIsCaughtShrunkAndReplays) {
  FuzzOptions options = LibraryOnlyOptions();
  options.inject_bug = "tamper-witness";
  FuzzScenario scenario = MakeScenario(4, options);
  ScenarioVerdict verdict = RunScenario(scenario, options);
  ASSERT_TRUE(verdict.violation.has_value());
  EXPECT_EQ(verdict.violation->invariant, "witness-replay");

  ShrinkOutcome shrunk =
      ShrinkScenario(scenario, verdict.violation->invariant, options);
  // Acceptance bar: the minimized reproducer is at most 8 statements.
  EXPECT_LE(CountNonEmptyLines(shrunk.scenario.program), 8u);
  EXPECT_GT(shrunk.attempts, 0u);

  // The shrunk scenario must fail standalone, through the reproducer
  // round-trip, exactly like the original.
  std::string rendered = RenderReproducer(shrunk.scenario, *verdict.violation);
  std::string invariant;
  Result<FuzzScenario> reparsed = ParseReproducer(rendered, &invariant);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  EXPECT_EQ(invariant, "witness-replay");
  ScenarioVerdict replay = RunScenario(*reparsed, options, invariant);
  ASSERT_TRUE(replay.violation.has_value());
  EXPECT_EQ(replay.violation->invariant, "witness-replay");
}

TEST(FuzzShrinkTest, DdminIsolatesTheOffendingStatement) {
  // Five valid statements plus one syntactically broken one: the "parse"
  // invariant fails, and ddmin must strip all the healthy statements.
  FuzzScenario scenario;
  scenario.seed = 1;
  scenario.program =
      "a1: P(x) -> Q(x) .\n"
      "a2: Q(x) -> R(x) .\n"
      "a3: R(x) -> S(x) .\n"
      "broken garbage that is not a statement\n"
      "a4: S(x) -> T(x) .\n"
      "a5: T(x) -> U(x) .\n";
  scenario.instance = "P(c) .\n";
  FuzzOptions options = LibraryOnlyOptions();
  ScenarioVerdict verdict = RunScenario(scenario, options, "parse");
  ASSERT_TRUE(verdict.violation.has_value());
  ASSERT_EQ(verdict.violation->invariant, "parse");

  ShrinkOutcome shrunk = ShrinkScenario(scenario, "parse", options);
  EXPECT_EQ(CountNonEmptyLines(shrunk.scenario.program), 1u);
  EXPECT_NE(shrunk.scenario.program.find("broken garbage"),
            std::string::npos);
  EXPECT_EQ(CountNonEmptyLines(shrunk.scenario.instance), 0u);
}

TEST(FuzzCorpusTest, ReproducerRoundTripPreservesEverything) {
  FuzzScenario scenario;
  scenario.seed = 77;
  scenario.shape = AdversarialShape::kWideGuard;
  scenario.program = "w1: G(a, b, c) -> exists u . H(a, u) .\n";
  scenario.instance = "G(d0, d1, d2) .\n";
  scenario.query = "ans(x) :- H(x, y).";
  scenario.fault = {FaultSchedule::Kind::kCrashAt, 2, "commit"};
  scenario.inject_bug = "torn-checkpoint";
  Violation violation{"crash-resume", "resume diverged\nacross two lines"};

  std::string text = RenderReproducer(scenario, violation);
  EXPECT_NE(text.find("# reproduce: tgdkit fuzz --replay"),
            std::string::npos);
  std::string invariant;
  Result<FuzzScenario> parsed = ParseReproducer(text, &invariant);
  ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
  EXPECT_EQ(invariant, "crash-resume");
  EXPECT_EQ(parsed->seed, 77u);
  EXPECT_EQ(parsed->shape, AdversarialShape::kWideGuard);
  EXPECT_EQ(parsed->program, scenario.program);
  EXPECT_EQ(parsed->instance, scenario.instance);
  EXPECT_EQ(parsed->query, scenario.query + "\n");
  EXPECT_EQ(parsed->fault.kind, FaultSchedule::Kind::kCrashAt);
  EXPECT_EQ(parsed->fault.value, 2u);
  EXPECT_EQ(parsed->fault.phase, "commit");
  EXPECT_EQ(parsed->inject_bug, "torn-checkpoint");

  EXPECT_FALSE(ParseReproducer("no header here", &invariant).ok());
}

}  // namespace
}  // namespace tgdkit
