// Unit tests for the fixed-size fork-join pool behind parallel chase
// rounds. The contract under test: every index in [0, n) is executed
// exactly once per ParallelFor, the pool is reusable across many calls
// (generations), and degenerate shapes (n == 0, n == 1, threads == 1)
// run inline without touching worker threads.

#include "base/thread_pool.h"

#include <atomic>
#include <cstdint>
#include <numeric>
#include <thread>
#include <vector>

#include "gtest/gtest.h"

namespace tgdkit {
namespace {

TEST(ThreadPoolTest, SingleLaneRunsInline) {
  ThreadPool pool(1);
  EXPECT_EQ(pool.threads(), 1u);
  std::thread::id caller = std::this_thread::get_id();
  std::vector<std::thread::id> seen(8);
  pool.ParallelFor(8, [&](size_t i) { seen[i] = std::this_thread::get_id(); });
  for (const auto& id : seen) EXPECT_EQ(id, caller);
}

TEST(ThreadPoolTest, EveryIndexExactlyOnce) {
  ThreadPool pool(4);
  EXPECT_EQ(pool.threads(), 4u);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<uint32_t>> hits(kN);
  pool.ParallelFor(kN, [&](size_t i) {
    hits[i].fetch_add(1, std::memory_order_relaxed);
  });
  for (size_t i = 0; i < kN; ++i) {
    ASSERT_EQ(hits[i].load(), 1u) << "index " << i;
  }
}

TEST(ThreadPoolTest, ZeroAndOneItemJobs) {
  ThreadPool pool(4);
  bool ran = false;
  pool.ParallelFor(0, [&](size_t) { ran = true; });
  EXPECT_FALSE(ran);
  // n == 1 runs inline on the caller: no synchronization needed to
  // observe the write afterwards.
  std::thread::id caller = std::this_thread::get_id();
  std::thread::id seen{};
  pool.ParallelFor(1, [&](size_t i) {
    EXPECT_EQ(i, 0u);
    seen = std::this_thread::get_id();
  });
  EXPECT_EQ(seen, caller);
}

TEST(ThreadPoolTest, ReusableAcrossGenerations) {
  ThreadPool pool(3);
  std::atomic<uint64_t> sum{0};
  uint64_t expected = 0;
  for (int round = 0; round < 200; ++round) {
    size_t n = static_cast<size_t>(round % 7);  // exercises n == 0 too
    pool.ParallelFor(n, [&](size_t i) {
      sum.fetch_add(i + 1, std::memory_order_relaxed);
    });
    expected += n * (n + 1) / 2;
  }
  EXPECT_EQ(sum.load(), expected);
}

TEST(ThreadPoolTest, CallerParticipatesAsALane) {
  // With many more items than workers the caller must drain items too;
  // otherwise this would deadlock (workers alone can't finish before
  // the caller's wait) or at least leave indexes unclaimed.
  ThreadPool pool(2);
  constexpr size_t kN = 4096;
  std::vector<std::atomic<uint8_t>> hit(kN);
  pool.ParallelFor(kN, [&](size_t i) {
    hit[i].store(1, std::memory_order_relaxed);
  });
  size_t total = 0;
  for (auto& h : hit) total += h.load();
  EXPECT_EQ(total, kN);
}

TEST(ThreadPoolTest, HammeredSmallJobs) {
  // Rapid-fire tiny generations: the regression this guards against is a
  // worker from generation g claiming indexes of generation g+1 after
  // the counters were reset (stale-claim race).
  ThreadPool pool(4);
  for (int round = 0; round < 2000; ++round) {
    std::atomic<uint32_t> count{0};
    pool.ParallelFor(3, [&](size_t) {
      count.fetch_add(1, std::memory_order_relaxed);
    });
    ASSERT_EQ(count.load(), 3u) << "generation " << round;
  }
}

TEST(ThreadPoolTest, ZeroResolvesToAtLeastOneLane) {
  ThreadPool pool(0);
  EXPECT_GE(pool.threads(), 1u);
  std::atomic<uint32_t> count{0};
  pool.ParallelFor(100, [&](size_t) {
    count.fetch_add(1, std::memory_order_relaxed);
  });
  EXPECT_EQ(count.load(), 100u);
}

}  // namespace
}  // namespace tgdkit
