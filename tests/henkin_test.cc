#include <gtest/gtest.h>

#include <set>

#include "dep/dependency.h"
#include "dep/skolem.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

class HenkinTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;

  /// The paper's employee-ID standard Henkin tgd:
  ///   (forall d exists dm / forall e exists eid)
  ///     Emp(e, d) -> Mgr(eid, dm).
  HenkinTgd MakeEmpHenkin() {
    HenkinTgd h;
    h.quantifier = HenkinQuantifier::FromRows(
        {{{ws_.Vid("d")}, {ws_.Vid("dm")}}, {{ws_.Vid("e")}, {ws_.Vid("eid")}}});
    h.body = {ws_.A("Emp", {ws_.V("e"), ws_.V("d")})};
    h.head = {ws_.A("Mgr", {ws_.V("eid"), ws_.V("dm")})};
    return h;
  }
};

TEST_F(HenkinTest, RowsBuildStandardQuantifier) {
  HenkinTgd h = MakeEmpHenkin();
  EXPECT_TRUE(h.quantifier.Validate().ok());
  EXPECT_TRUE(h.IsStandard());
  EXPECT_TRUE(h.IsTree());
  EXPECT_TRUE(ValidateHenkinTgd(ws_.arena, h).ok());
}

TEST_F(HenkinTest, EssentialOrderFollowsRows) {
  HenkinTgd h = MakeEmpHenkin();
  auto essential = h.quantifier.EssentialOrder();
  ASSERT_EQ(essential.size(), 2u);
  EXPECT_EQ(essential[0].first, ws_.Vid("dm"));
  EXPECT_EQ(essential[0].second, std::vector<VariableId>{ws_.Vid("d")});
  EXPECT_EQ(essential[1].first, ws_.Vid("eid"));
  EXPECT_EQ(essential[1].second, std::vector<VariableId>{ws_.Vid("e")});
}

TEST_F(HenkinTest, SkolemizationUsesEssentialOrder) {
  HenkinTgd h = MakeEmpHenkin();
  SoTgd so = HenkinToSo(&ws_.arena, &ws_.vocab, h);
  ASSERT_EQ(so.parts.size(), 1u);
  const Atom& mgr = so.parts[0].head[0];
  // Mgr(f_eid(e), f_dm(d)): unary Skolem terms, unlike the binary ones a
  // plain tgd would force.
  ASSERT_TRUE(ws_.arena.IsFunction(mgr.args[0]));
  ASSERT_TRUE(ws_.arena.IsFunction(mgr.args[1]));
  EXPECT_EQ(ws_.arena.args(mgr.args[0]).size(), 1u);
  EXPECT_EQ(ws_.arena.args(mgr.args[1]).size(), 1u);
  EXPECT_TRUE(ValidateSoTgd(ws_.arena, so).ok());
}

TEST_F(HenkinTest, NonDisjointChainsAreNotStandard) {
  // The paper's example σ with overlapping chains:
  //   x1 x2 ≺ y1; x2 x3 ≺ y2; x3 x1 ≺ y3.
  HenkinQuantifier q;
  for (const char* x : {"x1", "x2", "x3"}) q.AddUniversal(ws_.Vid(x));
  for (const char* y : {"y1", "y2", "y3"}) q.AddExistential(ws_.Vid(y));
  q.AddOrder(ws_.Vid("x1"), ws_.Vid("y1"));
  q.AddOrder(ws_.Vid("x2"), ws_.Vid("y1"));
  q.AddOrder(ws_.Vid("x2"), ws_.Vid("y2"));
  q.AddOrder(ws_.Vid("x3"), ws_.Vid("y2"));
  q.AddOrder(ws_.Vid("x3"), ws_.Vid("y3"));
  q.AddOrder(ws_.Vid("x1"), ws_.Vid("y3"));
  EXPECT_TRUE(q.Validate().ok());
  EXPECT_FALSE(q.IsStandard());
  // The Hasse graph of this order is a 6-cycle, so not a tree either.
  EXPECT_FALSE(q.IsTree());
}

TEST_F(HenkinTest, SharedRootIsTreeButNotStandard) {
  // f(d) and g(d, e): nested dependency sets — a tree, not disjoint chains.
  HenkinQuantifier q;
  q.AddUniversal(ws_.Vid("d"));
  q.AddUniversal(ws_.Vid("e"));
  q.AddExistential(ws_.Vid("y1"));
  q.AddExistential(ws_.Vid("y2"));
  q.AddOrder(ws_.Vid("d"), ws_.Vid("y1"));
  q.AddOrder(ws_.Vid("d"), ws_.Vid("e"));
  q.AddOrder(ws_.Vid("e"), ws_.Vid("y2"));
  EXPECT_TRUE(q.Validate().ok());
  EXPECT_TRUE(q.IsTree());
  EXPECT_FALSE(q.IsStandard());  // y1 and e are incomparable within a
                                 // comparability component
}

TEST_F(HenkinTest, PlainFirstOrderPrefixIsStandard) {
  // Ordinary ∀x∃y quantification is a single chain.
  HenkinQuantifier q = HenkinQuantifier::FromRows(
      {{{ws_.Vid("x1"), ws_.Vid("x2")}, {ws_.Vid("y1"), ws_.Vid("y2")}}});
  EXPECT_TRUE(q.IsStandard());
  EXPECT_TRUE(q.IsTree());
  auto essential = q.EssentialOrder();
  // Both existentials depend on both universals (chain may end in multiple
  // existentials, per the paper's footnote 4).
  EXPECT_EQ(essential[0].second.size(), 2u);
  EXPECT_EQ(essential[1].second.size(), 2u);
}

TEST_F(HenkinTest, CyclicOrderIsRejected) {
  HenkinQuantifier q;
  q.AddUniversal(ws_.Vid("x"));
  q.AddExistential(ws_.Vid("y"));
  q.AddOrder(ws_.Vid("x"), ws_.Vid("y"));
  q.AddOrder(ws_.Vid("y"), ws_.Vid("x"));
  EXPECT_FALSE(q.Validate().ok());
}

TEST_F(HenkinTest, DuplicateVariableRejected) {
  HenkinQuantifier q;
  q.AddUniversal(ws_.Vid("x"));
  q.AddExistential(ws_.Vid("x"));
  EXPECT_FALSE(q.Validate().ok());
}

TEST_F(HenkinTest, OrderOverUndeclaredVariableRejected) {
  HenkinQuantifier q;
  q.AddUniversal(ws_.Vid("x"));
  q.AddOrder(ws_.Vid("x"), ws_.Vid("ghost"));
  EXPECT_FALSE(q.Validate().ok());
}

TEST_F(HenkinTest, BodyMustUseExactlyTheUniversals) {
  HenkinTgd h = MakeEmpHenkin();
  h.body = {ws_.A("Emp", {ws_.V("e"), ws_.V("stranger")})};
  EXPECT_FALSE(ValidateHenkinTgd(ws_.arena, h).ok());
  // And all universals must occur in the body.
  HenkinTgd h2 = MakeEmpHenkin();
  h2.body = {ws_.A("EmpOnly", {ws_.V("e")})};
  EXPECT_FALSE(ValidateHenkinTgd(ws_.arena, h2).ok());
}

TEST_F(HenkinTest, ExistentialsMayNotAppearInBody) {
  HenkinTgd h = MakeEmpHenkin();
  h.body = {ws_.A("Emp", {ws_.V("e"), ws_.V("d")}),
            ws_.A("Extra", {ws_.V("dm")})};
  EXPECT_FALSE(ValidateHenkinTgd(ws_.arena, h).ok());
}

TEST_F(HenkinTest, HenkinsToSoRenamesFunctionsApart) {
  HenkinTgd h1 = MakeEmpHenkin();
  HenkinTgd h2 = MakeEmpHenkin();
  std::vector<HenkinTgd> set{h1, h2};
  SoTgd so = HenkinsToSo(&ws_.arena, &ws_.vocab, set);
  ASSERT_EQ(so.functions.size(), 4u);
  // All four Skolem functions are distinct symbols.
  std::set<FunctionId> distinct(so.functions.begin(), so.functions.end());
  EXPECT_EQ(distinct.size(), 4u);
  EXPECT_EQ(so.parts.size(), 2u);
}

TEST_F(HenkinTest, ToStringShowsEssentialOrder) {
  HenkinTgd h = MakeEmpHenkin();
  std::string s = ToString(ws_.arena, ws_.vocab, h);
  EXPECT_NE(s.find("exists dm(d)"), std::string::npos);
  EXPECT_NE(s.find("exists eid(e)"), std::string::npos);
  EXPECT_NE(s.find("Emp(e, d) -> Mgr(eid, dm)"), std::string::npos);
}

}  // namespace
}  // namespace tgdkit
