#include <gtest/gtest.h>

#include "dep/dependency.h"
#include "dep/skolem.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

class DependencyTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;

  /// The paper's introductory tgd: Emp(e, d) -> exists dm . Mgr(e, dm).
  Tgd MakeEmpTgd() {
    Tgd tgd;
    tgd.body = {ws_.A("Emp", {ws_.V("e"), ws_.V("d")})};
    tgd.head = {ws_.A("Mgr", {ws_.V("e"), ws_.V("dm")})};
    tgd.exist_vars = {ws_.Vid("dm")};
    return tgd;
  }
};

TEST_F(DependencyTest, ValidTgdPasses) {
  Tgd tgd = MakeEmpTgd();
  EXPECT_TRUE(ValidateTgd(ws_.arena, tgd).ok());
  EXPECT_FALSE(tgd.IsFull());
}

TEST_F(DependencyTest, FullTgdHasNoExistentials) {
  Tgd tgd;
  tgd.body = {ws_.A("Q0", {ws_.V("x"), ws_.V("y")})};
  tgd.head = {ws_.A("Q", {ws_.V("x"), ws_.V("y")})};
  EXPECT_TRUE(ValidateTgd(ws_.arena, tgd).ok());
  EXPECT_TRUE(tgd.IsFull());
}

TEST_F(DependencyTest, TgdRejectsUnquantifiedHeadVariable) {
  Tgd tgd;
  tgd.body = {ws_.A("P", {ws_.V("x")})};
  tgd.head = {ws_.A("R", {ws_.V("x"), ws_.V("y")})};
  // y neither universal nor listed existential.
  EXPECT_FALSE(ValidateTgd(ws_.arena, tgd).ok());
  tgd.exist_vars = {ws_.Vid("y")};
  EXPECT_TRUE(ValidateTgd(ws_.arena, tgd).ok());
}

TEST_F(DependencyTest, TgdRejectsExistentialInBody) {
  Tgd tgd;
  tgd.body = {ws_.A("P", {ws_.V("x"), ws_.V("y")})};
  tgd.head = {ws_.A("R", {ws_.V("y")})};
  tgd.exist_vars = {ws_.Vid("y")};
  EXPECT_FALSE(ValidateTgd(ws_.arena, tgd).ok());
}

TEST_F(DependencyTest, TgdRejectsFunctionTerms) {
  Tgd tgd;
  tgd.body = {ws_.A("P", {ws_.V("x")})};
  tgd.head = {ws_.A("R", {ws_.F("f", {ws_.V("x")})})};
  EXPECT_FALSE(ValidateTgd(ws_.arena, tgd).ok());
}

TEST_F(DependencyTest, TgdRejectsEmptyBodyOrHead) {
  Tgd no_body;
  no_body.head = {ws_.A("R", {ws_.V("x")})};
  EXPECT_FALSE(ValidateTgd(ws_.arena, no_body).ok());
  Tgd no_head;
  no_head.body = {ws_.A("R", {ws_.V("x")})};
  EXPECT_FALSE(ValidateTgd(ws_.arena, no_head).ok());
}

TEST_F(DependencyTest, TgdSkolemizationUsesAllUniversals) {
  // Emp(e, d) -> Mgr(e, f(e, d)): the Skolem term carries both universals —
  // exactly the restriction the paper's introduction highlights.
  SoTgd so = TgdToSo(&ws_.arena, &ws_.vocab, MakeEmpTgd());
  ASSERT_EQ(so.parts.size(), 1u);
  ASSERT_EQ(so.functions.size(), 1u);
  const Atom& mgr = so.parts[0].head[0];
  TermId skolem = mgr.args[1];
  ASSERT_TRUE(ws_.arena.IsFunction(skolem));
  EXPECT_EQ(ws_.arena.args(skolem).size(), 2u);
  EXPECT_TRUE(ValidateSoTgd(ws_.arena, so).ok());
  EXPECT_TRUE(so.IsPlain(ws_.arena));
}

TEST_F(DependencyTest, SoTgdWithEqualityIsNotPlain) {
  // The paper's self-manager SO tgd:
  //   Emp(e) -> Mgr(e, f(e));  Emp(e) & e = f(e) -> SelfMgr(e).
  FunctionId f = ws_.vocab.InternFunction("fmgr", 1);
  SoTgd so;
  so.functions = {f};
  SoPart p1;
  p1.body = {ws_.A("Emp", {ws_.V("e")})};
  p1.head = {ws_.A("Mgr", {ws_.V("e"), ws_.F("fmgr", {ws_.V("e")})})};
  SoPart p2;
  p2.body = {ws_.A("Emp", {ws_.V("e")})};
  p2.equalities = {{ws_.V("e"), ws_.F("fmgr", {ws_.V("e")})}};
  p2.head = {ws_.A("SelfMgr", {ws_.V("e")})};
  so.parts = {p1, p2};
  EXPECT_TRUE(ValidateSoTgd(ws_.arena, so).ok());
  EXPECT_FALSE(so.IsPlain(ws_.arena));
}

TEST_F(DependencyTest, SoTgdNestedTermIsNotPlain) {
  FunctionId f = ws_.vocab.InternFunction("f", 1);
  FunctionId g = ws_.vocab.InternFunction("g", 1);
  SoTgd so;
  so.functions = {f, g};
  SoPart p;
  p.body = {ws_.A("P", {ws_.V("x")})};
  p.head = {ws_.A("R", {ws_.F("f", {ws_.F("g", {ws_.V("x")})})})};
  so.parts = {p};
  EXPECT_TRUE(ValidateSoTgd(ws_.arena, so).ok());
  EXPECT_FALSE(so.IsPlain(ws_.arena));
}

TEST_F(DependencyTest, SoTgdRejectsUndeclaredFunction) {
  SoTgd so;
  SoPart p;
  p.body = {ws_.A("P", {ws_.V("x")})};
  p.head = {ws_.A("R", {ws_.F("mystery", {ws_.V("x")})})};
  so.parts = {p};
  EXPECT_FALSE(ValidateSoTgd(ws_.arena, so).ok());
}

TEST_F(DependencyTest, SoTgdRejectsHeadVariableNotInBody) {
  SoTgd so;
  SoPart p;
  p.body = {ws_.A("P", {ws_.V("x")})};
  p.head = {ws_.A("R", {ws_.V("z")})};
  so.parts = {p};
  EXPECT_FALSE(ValidateSoTgd(ws_.arena, so).ok());
}

TEST_F(DependencyTest, NestedTgdStructure) {
  // The paper's three-level Dep/Grp/Emp nested tgd τ.
  NestedTgd tau;
  tau.root.univ_vars = {ws_.Vid("d")};
  tau.root.body = {ws_.A("Dep", {ws_.V("d")})};
  tau.root.exist_vars = {ws_.Vid("d2")};
  tau.root.head_atoms = {ws_.A("Dep2", {ws_.V("d2")})};
  NestedNode grp;
  grp.univ_vars = {ws_.Vid("g")};
  grp.body = {ws_.A("Grp", {ws_.V("d"), ws_.V("g")})};
  grp.exist_vars = {ws_.Vid("g2")};
  grp.head_atoms = {ws_.A("Grp2", {ws_.V("d2"), ws_.V("g2")})};
  NestedNode emp;
  emp.univ_vars = {ws_.Vid("e")};
  emp.body = {ws_.A("Emp", {ws_.V("d"), ws_.V("g"), ws_.V("e")})};
  emp.head_atoms = {ws_.A("Emp2", {ws_.V("d2"), ws_.V("g2"), ws_.V("e")})};
  grp.children.push_back(emp);
  tau.root.children.push_back(grp);

  EXPECT_TRUE(ValidateNestedTgd(ws_.arena, tau).ok());
  EXPECT_EQ(tau.NumParts(), 3u);
  EXPECT_EQ(tau.Depth(), 3u);
  EXPECT_FALSE(tau.IsSimple());
}

TEST_F(DependencyTest, NestedTgdRejectsOutOfScopeVariable) {
  NestedTgd bad;
  bad.root.univ_vars = {ws_.Vid("d")};
  bad.root.body = {ws_.A("Dep", {ws_.V("d")})};
  bad.root.head_atoms = {ws_.A("R", {ws_.V("w")})};  // w unbound
  EXPECT_FALSE(ValidateNestedTgd(ws_.arena, bad).ok());
}

TEST_F(DependencyTest, NestedTgdRequiresUniversalsInOwnBody) {
  NestedTgd bad;
  bad.root.univ_vars = {ws_.Vid("d"), ws_.Vid("z")};
  bad.root.body = {ws_.A("Dep", {ws_.V("d")})};  // z missing
  bad.root.head_atoms = {ws_.A("R", {ws_.V("d")})};
  EXPECT_FALSE(ValidateNestedTgd(ws_.arena, bad).ok());
}

TEST_F(DependencyTest, NestedTgdRequiresExistentialsRenamedApart) {
  NestedTgd bad;
  bad.root.univ_vars = {ws_.Vid("d")};
  bad.root.body = {ws_.A("Dep", {ws_.V("d")})};
  bad.root.exist_vars = {ws_.Vid("y")};
  bad.root.head_atoms = {ws_.A("R", {ws_.V("y")})};
  NestedNode child;
  child.univ_vars = {ws_.Vid("e")};
  child.body = {ws_.A("Emp", {ws_.V("e"), ws_.V("d")})};
  child.exist_vars = {ws_.Vid("y")};  // reused!
  child.head_atoms = {ws_.A("S", {ws_.V("y")})};
  bad.root.children.push_back(child);
  EXPECT_FALSE(ValidateNestedTgd(ws_.arena, bad).ok());
}

TEST_F(DependencyTest, SimpleNestedTgd) {
  NestedTgd simple;
  simple.root.univ_vars = {ws_.Vid("x")};
  simple.root.body = {ws_.A("P", {ws_.V("x")})};
  simple.root.exist_vars = {ws_.Vid("y")};
  simple.root.head_atoms = {ws_.A("R", {ws_.V("x"), ws_.V("y")})};
  EXPECT_TRUE(ValidateNestedTgd(ws_.arena, simple).ok());
  EXPECT_TRUE(simple.IsSimple());
  EXPECT_EQ(simple.Depth(), 1u);
}

TEST_F(DependencyTest, ToStringRendersTgd) {
  Tgd tgd = MakeEmpTgd();
  EXPECT_EQ(ToString(ws_.arena, ws_.vocab, tgd),
            "Emp(e, d) -> exists dm . Mgr(e, dm)");
}

}  // namespace
}  // namespace tgdkit
