// Tests for the data-exchange module: solutions, core solutions, target
// certain answers, s-t validation.
#include <gtest/gtest.h>

#include "dep/skolem.h"
#include "exchange/exchange.h"
#include "homo/core.h"
#include "parse/parser.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

class ExchangeTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;

  SchemaMapping EmpMapping() {
    Parser p(&ws_.arena, &ws_.vocab);
    auto program = p.ParseDependencies(
        "Emp(e, d) -> exists m . Mgr(e, m) .\n"
        "Emp(e, d) -> Dept(d) .\n"
        "so exists fdm { Emp(e, d) -> DM(e, fdm(d)) } .");
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    SchemaMapping mapping;
    std::vector<Tgd> tgds = program->Tgds();
    std::vector<SoTgd> pieces{TgdsToSo(&ws_.arena, &ws_.vocab, tgds),
                              program->Sos()[0]};
    mapping.rules = MergeSo(pieces);
    mapping.source_relations = {ws_.vocab.FindRelation("Emp")};
    mapping.target_relations = {ws_.vocab.FindRelation("Mgr"),
                                ws_.vocab.FindRelation("Dept"),
                                ws_.vocab.FindRelation("DM")};
    return mapping;
  }

  Instance EmpSource() {
    Parser p(&ws_.arena, &ws_.vocab);
    Instance source(&ws_.vocab);
    EXPECT_TRUE(p.ParseInstanceInto(
                     "Emp(alice, cs). Emp(bob, cs). Emp(carol, math).",
                     &source)
                    .ok());
    return source;
  }
};

TEST_F(ExchangeTest, SourceToTargetValidation) {
  SchemaMapping mapping = EmpMapping();
  EXPECT_TRUE(ValidateSourceToTarget(mapping).ok());
  // Moving Mgr into the source schema breaks disjointness.
  SchemaMapping broken = mapping;
  broken.source_relations.insert(ws_.vocab.FindRelation("Mgr"));
  EXPECT_FALSE(ValidateSourceToTarget(broken).ok());
  // Declaring Dept as non-target breaks the head check.
  SchemaMapping missing = mapping;
  missing.target_relations.erase(ws_.vocab.FindRelation("Dept"));
  EXPECT_FALSE(ValidateSourceToTarget(missing).ok());
}

TEST_F(ExchangeTest, SolutionContainsOnlyTargetFacts) {
  SchemaMapping mapping = EmpMapping();
  Instance source = EmpSource();
  ExchangeResult result = Solve(&ws_.arena, &ws_.vocab, mapping, source);
  EXPECT_TRUE(result.IsUniversal());
  RelationId emp = ws_.vocab.FindRelation("Emp");
  EXPECT_EQ(result.solution.NumTuples(emp), 0u);  // source facts excluded
  EXPECT_EQ(result.solution.NumTuples(ws_.vocab.FindRelation("Mgr")), 3u);
  EXPECT_EQ(result.solution.NumTuples(ws_.vocab.FindRelation("Dept")), 2u);
  EXPECT_EQ(result.solution.NumTuples(ws_.vocab.FindRelation("DM")), 3u);
}

TEST_F(ExchangeTest, SharedDepartmentManagerNulls) {
  SchemaMapping mapping = EmpMapping();
  Instance source = EmpSource();
  ExchangeResult result = Solve(&ws_.arena, &ws_.vocab, mapping, source);
  RelationId dm = ws_.vocab.FindRelation("DM");
  // alice and bob share fdm(cs); carol gets fdm(math).
  Value alice_dm, bob_dm, carol_dm;
  for (uint32_t row = 0; row < 3; ++row) {
    auto t = result.solution.Tuple(dm, row);
    if (t[0] == ws_.Cv("alice")) alice_dm = t[1];
    if (t[0] == ws_.Cv("bob")) bob_dm = t[1];
    if (t[0] == ws_.Cv("carol")) carol_dm = t[1];
  }
  EXPECT_EQ(alice_dm, bob_dm);
  EXPECT_NE(alice_dm, carol_dm);
}

TEST_F(ExchangeTest, CoreSolutionIsNoLargerAndEquivalent) {
  SchemaMapping mapping = EmpMapping();
  Instance source = EmpSource();
  ExchangeResult plain = Solve(&ws_.arena, &ws_.vocab, mapping, source);
  Instance core = CoreSolution(&ws_.arena, &ws_.vocab, mapping, source);
  EXPECT_LE(core.NumFacts(), plain.solution.NumFacts());
  EXPECT_TRUE(HomomorphicallyEquivalent(&ws_.arena, &ws_.vocab,
                                        plain.solution, core));
}

TEST_F(ExchangeTest, CoreSolutionCollapsesRedundancy) {
  // Two rules inventing independent nulls for the same pattern: the core
  // keeps one.
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies(
      "S(x) -> exists y . T(x, y) .\n"
      "S(x) -> exists z . T(x, z) .");
  ASSERT_TRUE(program.ok());
  SchemaMapping mapping;
  std::vector<Tgd> tgds = program->Tgds();
  mapping.rules = TgdsToSo(&ws_.arena, &ws_.vocab, tgds);
  mapping.source_relations = {ws_.vocab.FindRelation("S")};
  mapping.target_relations = {ws_.vocab.FindRelation("T")};
  Instance source(&ws_.vocab);
  source.AddFact(ws_.Fc("S", {"a"}));
  ExchangeResult plain = Solve(&ws_.arena, &ws_.vocab, mapping, source);
  EXPECT_EQ(plain.solution.NumFacts(), 2u);
  Instance core = CoreSolution(&ws_.arena, &ws_.vocab, mapping, source);
  EXPECT_EQ(core.NumFacts(), 1u);
}

TEST_F(ExchangeTest, HenkinBasedMapping) {
  // A mapping whose only rule is a standard Henkin tgd: employee ids per
  // employee, manager per department, materialized as two independent
  // null families.
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies(
      "henkin { forall e, d ; exists eid(e) ; exists dm(d) }"
      " Emp(e, d) -> Badge(e, eid) & Head(d, dm) .");
  ASSERT_TRUE(program.ok()) << program.status().ToString();
  SchemaMapping mapping;
  std::vector<HenkinTgd> henkins = program->Henkins();
  mapping.rules = HenkinsToSo(&ws_.arena, &ws_.vocab, henkins);
  mapping.source_relations = {ws_.vocab.FindRelation("Emp")};
  mapping.target_relations = {ws_.vocab.FindRelation("Badge"),
                              ws_.vocab.FindRelation("Head")};
  ASSERT_TRUE(ValidateSourceToTarget(mapping).ok());
  Instance source = EmpSource();
  ExchangeResult result = Solve(&ws_.arena, &ws_.vocab, mapping, source);
  ASSERT_TRUE(result.IsUniversal());
  // Three badges (one per employee), two heads (one per department).
  EXPECT_EQ(result.solution.NumTuples(ws_.vocab.FindRelation("Badge")), 3u);
  EXPECT_EQ(result.solution.NumTuples(ws_.vocab.FindRelation("Head")), 2u);
  // The solution is already a core: nothing is redundant.
  Instance core = CoreSolution(&ws_.arena, &ws_.vocab, mapping, source);
  EXPECT_EQ(core.NumFacts(), result.solution.NumFacts());
}

TEST_F(ExchangeTest, TargetCertainAnswers) {
  SchemaMapping mapping = EmpMapping();
  Instance source = EmpSource();
  Parser p(&ws_.arena, &ws_.vocab);
  auto q = p.ParseQuery("ans(d) :- Dept(d).");
  ASSERT_TRUE(q.ok());
  CertainAnswers answers =
      TargetCertainAnswers(&ws_.arena, &ws_.vocab, mapping, source, *q);
  EXPECT_TRUE(answers.Complete());
  EXPECT_EQ(answers.answers.size(), 2u);  // cs, math
  // Managers are nulls: no certain manager values.
  auto q2 = p.ParseQuery("ans(m) :- Mgr(e, m).");
  ASSERT_TRUE(q2.ok());
  CertainAnswers none =
      TargetCertainAnswers(&ws_.arena, &ws_.vocab, mapping, source, *q2);
  EXPECT_TRUE(none.answers.empty());
}

}  // namespace
}  // namespace tgdkit
