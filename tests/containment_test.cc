// Tests for CQ containment/equivalence and chase-based dependency
// implication.
#include <gtest/gtest.h>

#include "dep/skolem.h"
#include "dep/syntactic.h"
#include "parse/parser.h"
#include "query/query.h"
#include "reduce/separation.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

class ContainmentTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;

  ConjunctiveQuery ParseQ(const std::string& text) {
    Parser p(&ws_.arena, &ws_.vocab);
    auto q = p.ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }

  std::vector<Tgd> ParseTgds(const std::string& text) {
    Parser p(&ws_.arena, &ws_.vocab);
    auto program = p.ParseDependencies(text);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    return program->Tgds();
  }
};

TEST_F(ContainmentTest, MoreAtomsContainedInFewer) {
  ConjunctiveQuery tight = ParseQ("ans(x) :- R(x, y), S(y).");
  ConjunctiveQuery loose = ParseQ("ans(x) :- R(x, y).");
  EXPECT_TRUE(QueryContained(&ws_.arena, &ws_.vocab, tight, loose));
  EXPECT_FALSE(QueryContained(&ws_.arena, &ws_.vocab, loose, tight));
  EXPECT_FALSE(QueryEquivalent(&ws_.arena, &ws_.vocab, tight, loose));
}

TEST_F(ContainmentTest, RedundantAtomEquivalence) {
  ConjunctiveQuery redundant = ParseQ("ans(x) :- R(x, y), R(x, z).");
  ConjunctiveQuery minimal = ParseQ("ans(x) :- R(x, y).");
  EXPECT_TRUE(QueryEquivalent(&ws_.arena, &ws_.vocab, redundant, minimal));
}

TEST_F(ContainmentTest, FreeVariablePositionsMatter) {
  ConjunctiveQuery forward = ParseQ("ans(x) :- R(x, y).");
  ConjunctiveQuery backward = ParseQ("ans(x) :- R(y, x).");
  EXPECT_FALSE(QueryContained(&ws_.arena, &ws_.vocab, forward, backward));
  EXPECT_FALSE(QueryContained(&ws_.arena, &ws_.vocab, backward, forward));
}

TEST_F(ContainmentTest, ConstantSpecializes) {
  ConjunctiveQuery specific = ParseQ(R"(ans(x) :- Emp(x, "cs").)");
  ConjunctiveQuery general = ParseQ("ans(x) :- Emp(x, d).");
  EXPECT_TRUE(QueryContained(&ws_.arena, &ws_.vocab, specific, general));
  EXPECT_FALSE(QueryContained(&ws_.arena, &ws_.vocab, general, specific));
}

TEST_F(ContainmentTest, BooleanPathContainment) {
  ConjunctiveQuery path3 = ParseQ("ans() :- E(x, y), E(y, z), E(z, w).");
  ConjunctiveQuery path2 = ParseQ("ans() :- E(a, b), E(b, c).");
  // A 3-path contains a homomorphic image of a 2-path.
  EXPECT_TRUE(QueryContained(&ws_.arena, &ws_.vocab, path3, path2));
  EXPECT_FALSE(QueryContained(&ws_.arena, &ws_.vocab, path2, path3));
}

TEST_F(ContainmentTest, MinimizedQueryStaysEquivalent) {
  ConjunctiveQuery q = ParseQ("ans(x) :- R(x, y), R(x, z), R(x, w).");
  ConjunctiveQuery min = MinimizeQuery(&ws_.arena, &ws_.vocab, q);
  EXPECT_EQ(min.atoms.size(), 1u);
  EXPECT_TRUE(QueryEquivalent(&ws_.arena, &ws_.vocab, q, min));
}

TEST_F(ContainmentTest, TransitivityImpliesComposedEdge) {
  std::vector<Tgd> tgds = ParseTgds("E(x, y) & E(y, z) -> E(x, z) .");
  SoTgd rules = TgdsToSo(&ws_.arena, &ws_.vocab, tgds);
  // E(a,b) & E(b,c) & E(c,d) -> E(a,d) is implied by transitivity.
  std::vector<Tgd> candidate =
      ParseTgds("E(a, b) & E(b, c) & E(c, d) -> E(a, d) .");
  ImplicationResult result =
      ImpliesTgd(&ws_.arena, &ws_.vocab, rules, candidate[0]);
  EXPECT_TRUE(result.complete);
  EXPECT_TRUE(result.implied);
  // ...but not the reversed edge.
  std::vector<Tgd> reversed = ParseTgds("E(a, b) -> E(b, a) .");
  ImplicationResult no =
      ImpliesTgd(&ws_.arena, &ws_.vocab, rules, reversed[0]);
  EXPECT_TRUE(no.complete);
  EXPECT_FALSE(no.implied);
}

TEST_F(ContainmentTest, ExistentialHeadImplication) {
  std::vector<Tgd> tgds = ParseTgds(
      "Person(x) -> exists y . Parent(x, y) .\n"
      "Parent(x, y) -> Anc(x, y) .");
  SoTgd rules = TgdsToSo(&ws_.arena, &ws_.vocab, tgds);
  std::vector<Tgd> candidate =
      ParseTgds("Person(p) -> exists a . Anc(p, a) .");
  ImplicationResult result =
      ImpliesTgd(&ws_.arena, &ws_.vocab, rules, candidate[0]);
  EXPECT_TRUE(result.implied);
}

TEST_F(ContainmentTest, NonTerminatingChaseStillSoundWhenImplied) {
  // Rules with a non-terminating chase; the implication is found before
  // any budget matters.
  Parser p(&ws_.arena, &ws_.vocab);
  auto program = p.ParseDependencies(
      "so exists f { N(x) -> N(f(x)) & Pos(x) } .");
  ASSERT_TRUE(program.ok());
  std::vector<Tgd> candidate = ParseTgds("N(n) -> Pos(n) .");
  ChaseLimits limits;
  limits.max_term_depth = 5;
  ImplicationResult result = ImpliesTgd(
      &ws_.arena, &ws_.vocab, program->Sos()[0], candidate[0], limits);
  EXPECT_TRUE(result.implied);
  EXPECT_TRUE(result.complete);
}

TEST_F(ContainmentTest, Theorem42WitnessShape) {
  Theorem42Witness witness = BuildTheorem42Witness(&ws_.arena, &ws_.vocab);
  ASSERT_TRUE(ValidateNestedTgd(ws_.arena, witness.tau).ok());
  EXPECT_TRUE(witness.tau.IsSimple() || witness.tau.root.head_atoms.empty());
  // The normalization has exactly one part: a SIMPLE nested tgd.
  EXPECT_EQ(witness.normalized.parts.size(), 1u);
  EXPECT_TRUE(ValidateSoTgd(ws_.arena, witness.normalized).ok());
  // Its Skolem argument sets are nested ({x} ⊂ {x,y}): a (tree) Henkin
  // Skolemization that is NOT standard — the syntactic footprint behind
  // Theorem 4.2's separation from standard Henkin tgds.
  EXPECT_TRUE(IsSkolemizedHenkin(ws_.arena, witness.normalized));
  EXPECT_FALSE(IsSkolemizedStandardHenkin(ws_.arena, witness.normalized));
  EXPECT_TRUE(IsHierarchicalSo(ws_.arena, witness.normalized));
}

}  // namespace
}  // namespace tgdkit
