// Chaos test for the batch supervisor's crash-safety story. The
// TGDKIT_CRASH_AT hook (src/base/fileio.cc) SIGKILLs a process at its
// n-th durable write, at a chosen phase of that write. Arming it inside
// a forked supervisor kills the supervisor mid-ledger-append (begin /
// mid / commit), and — because the armed environment is inherited — may
// also kill the chase workers it forks at their checkpoint writes. For
// every kill point the invariants must hold:
//
//   * the ledger left behind is always loadable (at most a torn trailing
//     line, never interior garbage),
//   * an unarmed rerun converges: every task reaches exactly one
//     terminal `done` record — no task is double-reported, none is lost,
//   * a third run is a no-op (attempts=0, everything skipped).
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdlib>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "base/fileio.h"
#include "cli/cli.h"
#include "supervise/ledger.h"

namespace tgdkit {
namespace {

class BatchCrashTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = testing::TempDir() + "/tgdkit_chaos_" + std::to_string(getpid()) +
           "_" + std::to_string(counter++);
    ASSERT_TRUE(MakeDirectories(dir_).ok());
    WriteFile("deps.tgd", "t: E(x, y) & E(y, z) -> E(x, z) .\n");
    std::string seed;
    for (int i = 0; i + 1 < 6; ++i) {
      seed += "E(n" + std::to_string(i) + ", n" + std::to_string(i + 1) +
              ") .\n";
    }
    WriteFile("seed.inst", seed);
    // A mixed workload: two clean tasks, one deterministic crasher, one
    // checkpointing chase (its workers do durable writes, so inherited
    // arming can kill them too).
    manifest_ = WriteFile(
        "chaos.manifest",
        "batch max-parallel=2 retries=3 backoff-ms=1 grace-ms=2000\n"
        "task ok : selftest --stdout-lines 1\n"
        "task verdict : selftest --die-exit 3\n"
        "task flaky : selftest --die-signal 9\n"
        "task tc : chase " + dir_ + "/deps.tgd " + dir_ + "/seed.inst "
        "--checkpoint-every-steps 1\n");
    ledger_ = manifest_ + ".runs/ledger.jsonl";
  }

  std::string WriteFile(const std::string& name,
                        const std::string& content) {
    std::string path = dir_ + "/" + name;
    std::ofstream out(path);
    out << content;
    return path;
  }

  /// Runs `tgdkit batch` in a forked child. With crash_at > 0 the child
  /// arms the fault hook first, so it (and the workers it forks) will
  /// SIGKILL themselves at the chosen durable write. Returns the raw
  /// wait status.
  int RunSupervisor(int crash_at, const char* phase) {
    pid_t pid = fork();
    if (pid == 0) {
      if (crash_at > 0) {
        setenv("TGDKIT_CRASH_AT", std::to_string(crash_at).c_str(), 1);
        setenv("TGDKIT_CRASH_PHASE", phase, 1);
      } else {
        unsetenv("TGDKIT_CRASH_AT");
        unsetenv("TGDKIT_CRASH_PHASE");
      }
      std::ostringstream out, err;
      int code = RunCli({"batch", manifest_}, out, err);
      _exit(code);
    }
    EXPECT_GT(pid, 0);
    int status = 0;
    EXPECT_EQ(waitpid(pid, &status, 0), pid);
    return status;
  }

  /// The ledger must load at every stage; returns the records.
  std::vector<LedgerRecord> MustLoad() {
    Result<std::vector<LedgerRecord>> loaded = LoadLedger(ledger_);
    EXPECT_TRUE(loaded.ok()) << loaded.status().ToString();
    return loaded.ok() ? *loaded : std::vector<LedgerRecord>{};
  }

  std::string dir_;
  std::string manifest_;
  std::string ledger_;
};

TEST_F(BatchCrashTest, SupervisorKilledAtEveryWritePointStaysConsistent) {
  // One scenario per (write ordinal, phase): enough points to cover the
  // run header, attempt records, and done records of the first tasks.
  // Deterministic by construction — the fault hook counts durable
  // writes, not wall-clock.
  const char* phases[] = {"begin", "mid", "commit"};
  int scenario = 0;
  for (int crash_at : {1, 2, 3, 5, 7}) {
    const char* phase = phases[scenario++ % 3];
    SCOPED_TRACE(std::string("crash_at=") + std::to_string(crash_at) +
                 " phase=" + phase);
    // Fresh run directory per scenario.
    std::string runs = manifest_ + ".runs";
    std::string wipe = "rm -rf '" + runs + "'";
    ASSERT_EQ(std::system(wipe.c_str()), 0);

    int status = RunSupervisor(crash_at, phase);
    if (WIFSIGNALED(status)) {
      EXPECT_EQ(WTERMSIG(status), SIGKILL);
    }
    // Invariant 1: whatever the kill point, the ledger loads. (It may be
    // missing entirely if the kill predated the first append.)
    Result<std::vector<LedgerRecord>> after_kill = LoadLedger(ledger_);
    if (!after_kill.ok()) {
      EXPECT_EQ(after_kill.status().code(), Status::Code::kNotFound)
          << after_kill.status().ToString();
    }

    // Invariant 2: the unarmed rerun converges. Workers may have been
    // killed mid-task in the armed run; their checkpoints and attempt
    // history carry over.
    int rerun = RunSupervisor(0, "");
    ASSERT_TRUE(WIFEXITED(rerun));
    // flaky always quarantines, so the converged batch exit is 3.
    EXPECT_EQ(WEXITSTATUS(rerun), kExitVerdict);

    std::vector<LedgerRecord> records = MustLoad();
    std::map<std::string, int> done_count;
    std::map<std::string, uint64_t> last_attempt;
    for (const LedgerRecord& record : records) {
      if (record.kind == LedgerRecord::Kind::kDone) {
        ++done_count[record.done.task];
      } else if (record.kind == LedgerRecord::Kind::kAttempt) {
        // Attempt numbering never goes backwards for a task: the rerun
        // replays history instead of restarting it.
        EXPECT_GE(record.attempt.attempt,
                  last_attempt[record.attempt.task])
            << record.attempt.task;
        last_attempt[record.attempt.task] = record.attempt.attempt;
      }
    }
    // Invariant 3: exactly one terminal record per task — nothing
    // double-reported, nothing lost.
    for (const char* task : {"ok", "verdict", "flaky", "tc"}) {
      EXPECT_EQ(done_count[task], 1) << task;
    }
    for (const LedgerRecord& record : records) {
      if (record.kind != LedgerRecord::Kind::kDone) continue;
      if (record.done.task == "ok" || record.done.task == "verdict" ||
          record.done.task == "tc") {
        EXPECT_TRUE(record.done.completed) << record.done.task;
      }
      if (record.done.task == "flaky") {
        EXPECT_FALSE(record.done.completed);
      }
    }

    // Invariant 4: a third run is a pure no-op.
    int third = RunSupervisor(0, "");
    ASSERT_TRUE(WIFEXITED(third));
    EXPECT_EQ(WEXITSTATUS(third), kExitVerdict);
    std::vector<LedgerRecord> final_records = MustLoad();
    std::map<std::string, int> final_done;
    size_t new_attempts = 0;
    for (size_t i = records.size(); i < final_records.size(); ++i) {
      if (final_records[i].kind == LedgerRecord::Kind::kAttempt) {
        ++new_attempts;
      }
    }
    EXPECT_EQ(new_attempts, 0u) << "third run re-ran a terminal task";
  }
}

TEST_F(BatchCrashTest, WorkerKillsAloneConvergeWithoutSupervisorDeath) {
  // Arm the crash hook per-task (manifest env) instead of globally: only
  // the chase workers die, the supervisor survives and drives the task
  // through its retry budget in a single invocation.
  std::string manifest = WriteFile(
      "workers.manifest",
      "batch retries=3 backoff-ms=1\n"
      "task ok : selftest\n"
      "task tc env TGDKIT_CRASH_AT=1 env TGDKIT_CRASH_PHASE=begin : "
      "chase " + dir_ + "/deps.tgd " + dir_ + "/seed.inst "
      "--checkpoint-every-steps 1\n");
  std::ostringstream out, err;
  int code = RunCli({"batch", manifest}, out, err);
  // Every tc attempt dies at its first checkpoint write's begin phase —
  // before committing anything — so the task cannot make progress and
  // quarantines; ok completes; the supervisor itself never crashes.
  EXPECT_EQ(code, kExitVerdict) << out.str();
  Result<std::vector<LedgerRecord>> records =
      LoadLedger(manifest + ".runs/ledger.jsonl");
  ASSERT_TRUE(records.ok()) << records.status().ToString();
  std::map<std::string, int> done_count;
  int tc_crashes = 0;
  for (const LedgerRecord& record : *records) {
    if (record.kind == LedgerRecord::Kind::kDone) {
      ++done_count[record.done.task];
    }
    if (record.kind == LedgerRecord::Kind::kAttempt &&
        record.attempt.task == "tc") {
      EXPECT_EQ(record.attempt.outcome, AttemptOutcome::kCrash);
      EXPECT_EQ(record.attempt.signal, SIGKILL);
      ++tc_crashes;
    }
  }
  EXPECT_EQ(done_count["ok"], 1);
  EXPECT_EQ(done_count["tc"], 1);
  EXPECT_EQ(tc_crashes, 4);  // retries=3 -> 4 charged attempts
}

}  // namespace
}  // namespace tgdkit
