// Textbook rule sets from the Datalog± literature, classified end to end:
// each row pins the exact Figure 2 membership of a known ontology shape.
#include <gtest/gtest.h>

#include "classify/criteria.h"
#include "dep/skolem.h"
#include "parse/parser.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

class TextbookTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;

  SoTgd ParseRules(const std::string& text) {
    Parser p(&ws_.arena, &ws_.vocab);
    auto program = p.ParseDependencies(text);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    std::vector<SoTgd> pieces;
    std::vector<Tgd> tgds = program->Tgds();
    if (!tgds.empty()) pieces.push_back(TgdsToSo(&ws_.arena, &ws_.vocab, tgds));
    for (const SoTgd& so : program->Sos()) pieces.push_back(so);
    return MergeSo(pieces);
  }
};

TEST_F(TextbookTest, LinearInclusionOntology) {
  // Classic inclusion dependencies: linear, hence guarded and sticky-join.
  SoTgd so = ParseRules(
      "Professor(x) -> Faculty(x) .\n"
      "Faculty(x) -> exists d . WorksIn(x, d) .\n"
      "WorksIn(x, d) -> Dept(d) .");
  Figure2Membership m = ClassifyFigure2(ws_.arena, so);
  EXPECT_TRUE(m.linear);
  EXPECT_TRUE(m.guarded);
  EXPECT_TRUE(m.weakly_guarded);
  EXPECT_TRUE(m.sticky);
  EXPECT_TRUE(m.sticky_join);
  EXPECT_TRUE(m.weakly_acyclic);
  EXPECT_FALSE(m.full);
}

TEST_F(TextbookTest, GuardedFamilyOntology) {
  // The guard atom carries all variables; the side atoms refine.
  SoTgd so = ParseRules(
      "Supervises(x, y) & Employee(x) -> Manager(x) .\n"
      "Supervises(x, y) & Manager(x) -> exists p . Project(x, y, p) .");
  Figure2Membership m = ClassifyFigure2(ws_.arena, so);
  EXPECT_FALSE(m.linear);
  EXPECT_TRUE(m.guarded);
  EXPECT_TRUE(m.weakly_acyclic);
}

TEST_F(TextbookTest, StickyFamilyCartesianOntology) {
  // The canonical sticky-but-unguarded shape: cartesian-style joins that
  // keep the join variable everywhere.
  SoTgd so = ParseRules(
      "Elephant(x) & Herd(h) -> MemberOf(x, h, x) .\n"
      "MemberOf(x, h, y) -> exists z . Leads(z, x, h) .");
  Figure2Membership m = ClassifyFigure2(ws_.arena, so);
  EXPECT_TRUE(m.sticky);
  EXPECT_FALSE(m.guarded);  // Elephant(x) & Herd(h) has no guard
  EXPECT_TRUE(m.sticky_join);
}

TEST_F(TextbookTest, WeaklyAcyclicButNotAnythingElse) {
  // Joins drop variables (not sticky), no guard, but nulls never cycle.
  SoTgd so = ParseRules(
      "A(x, y) & B(y, z) -> exists w . Cz(x, w) .\n"
      "Cz(x, w) -> D(w) .");
  Figure2Membership m = ClassifyFigure2(ws_.arena, so);
  EXPECT_TRUE(m.weakly_acyclic);
  EXPECT_FALSE(m.sticky);   // y dropped from the head
  EXPECT_FALSE(m.guarded);
  EXPECT_FALSE(m.linear);
}

TEST_F(TextbookTest, WeaklyGuardedReachability) {
  // Affected positions stay confined to one attribute; the guard only
  // needs to cover variables living there.
  SoTgd so = ParseRules(
      "Node(x) -> exists y . Edge(x, y) .\n"
      "Edge(x, y) & Node(x) -> Reach(y) .");
  Figure2Membership m = ClassifyFigure2(ws_.arena, so);
  EXPECT_TRUE(m.weakly_guarded);
  std::set<Position> affected = AffectedPositions(ws_.arena, so);
  EXPECT_TRUE(affected.count({ws_.vocab.FindRelation("Edge"), 1}));
  EXPECT_FALSE(affected.count({ws_.vocab.FindRelation("Edge"), 0}));
  EXPECT_TRUE(affected.count({ws_.vocab.FindRelation("Reach"), 0}));
}

TEST_F(TextbookTest, OntologyWithAllCriteriaFailing) {
  // Self-feeding existential joined over a dropped variable without a
  // guard: outside every family of Figure 2.
  SoTgd so = ParseRules(
      "R(x, y) & R(y, z) -> exists w . R(z, w) .");
  Figure2Membership m = ClassifyFigure2(ws_.arena, so);
  EXPECT_FALSE(m.full);
  EXPECT_FALSE(m.weakly_acyclic);
  EXPECT_FALSE(m.linear);
  EXPECT_FALSE(m.guarded);
  EXPECT_FALSE(m.weakly_guarded);
  EXPECT_FALSE(m.sticky);
  EXPECT_FALSE(m.sticky_join);
}

TEST_F(TextbookTest, FullDatalogProgram) {
  SoTgd so = ParseRules(
      "Parent(x, y) -> Anc(x, y) .\n"
      "Parent(x, y) & Anc(y, z) -> Anc(x, z) .");
  Figure2Membership m = ClassifyFigure2(ws_.arena, so);
  EXPECT_TRUE(m.full);
  EXPECT_TRUE(m.weakly_acyclic);  // full programs always are
  EXPECT_FALSE(m.sticky);         // y joined and dropped
}

TEST_F(TextbookTest, CriticalInstanceMatchesWeakAcyclicityOnTextbook) {
  // For these finite-shape ontologies, the weakly acyclic ones must pass
  // the critical-instance termination check.
  SoTgd so = ParseRules(
      "Professor2(x) -> Faculty2(x) .\n"
      "Faculty2(x) -> exists d . WorksIn2(x, d) .\n"
      "WorksIn2(x, d) -> Dept2(d) .");
  ASSERT_TRUE(IsWeaklyAcyclic(ws_.arena, so));
  std::vector<RelationId> relations{
      ws_.vocab.FindRelation("Professor2"), ws_.vocab.FindRelation("Faculty2"),
      ws_.vocab.FindRelation("WorksIn2"), ws_.vocab.FindRelation("Dept2")};
  CriticalInstanceReport report = TerminatesOnCriticalInstance(
      &ws_.arena, &ws_.vocab, so, relations);
  EXPECT_TRUE(report.terminated);
}

}  // namespace
}  // namespace tgdkit
