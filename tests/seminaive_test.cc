// Semi-naive vs naive chase evaluation: identical fixpoints (up to null
// renaming), fewer redundant trigger evaluations.
#include <gtest/gtest.h>

#include "base/rng.h"
#include "chase/chase.h"
#include "classify/criteria.h"
#include "dep/skolem.h"
#include "gen/generators.h"
#include "homo/core.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

ChaseLimits Naive() {
  ChaseLimits limits;
  limits.semi_naive = false;
  return limits;
}

class SemiNaiveTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;
};

TEST_F(SemiNaiveTest, TransitiveClosureSameFixpoint) {
  Tgd trans;
  trans.body = {ws_.A("E", {ws_.V("x"), ws_.V("y")}),
                ws_.A("E", {ws_.V("y"), ws_.V("z")})};
  trans.head = {ws_.A("E", {ws_.V("x"), ws_.V("z")})};
  SoTgd so = TgdToSo(&ws_.arena, &ws_.vocab, trans);
  Instance input(&ws_.vocab);
  for (int i = 0; i < 12; ++i) {
    input.AddFact(ws_.Fc("E", {"n" + std::to_string(i),
                               "n" + std::to_string(i + 1)}));
  }
  ChaseResult fast = Chase(&ws_.arena, &ws_.vocab, so, input);
  ChaseResult slow = Chase(&ws_.arena, &ws_.vocab, so, input, Naive());
  EXPECT_TRUE(fast.Terminated());
  EXPECT_TRUE(slow.Terminated());
  EXPECT_EQ(fast.instance.NumFacts(), slow.instance.NumFacts());
  EXPECT_EQ(fast.instance.ToString(), slow.instance.ToString());
}

TEST_F(SemiNaiveTest, SkolemTermsSameFixpoint) {
  // Rules creating nulls: fixpoints agree up to null renaming.
  FunctionId f = ws_.vocab.InternFunction("fsn", 1);
  SoTgd so;
  so.functions = {f};
  SoPart invent;
  invent.body = {ws_.A("P", {ws_.V("x")})};
  invent.head = {ws_.A("R", {ws_.V("x"), ws_.F("fsn", {ws_.V("x")})})};
  SoPart copy;
  copy.body = {ws_.A("R", {ws_.V("x"), ws_.V("y")})};
  copy.head = {ws_.A("S", {ws_.V("y")})};
  so.parts = {invent, copy};
  Instance input(&ws_.vocab);
  input.AddFact(ws_.Fc("P", {"a"}));
  input.AddFact(ws_.Fc("P", {"b"}));
  ChaseResult fast = Chase(&ws_.arena, &ws_.vocab, so, input);
  ChaseResult slow = Chase(&ws_.arena, &ws_.vocab, so, input, Naive());
  EXPECT_EQ(fast.instance.NumFacts(), slow.instance.NumFacts());
  EXPECT_TRUE(HomomorphicallyEquivalent(&ws_.arena, &ws_.vocab,
                                        fast.instance, slow.instance));
}

TEST_F(SemiNaiveTest, ConstantsInBodiesHandled) {
  // Delta seeding must respect constants in body atoms.
  Tgd route;
  route.body = {ws_.A("St", {ws_.C("go"), ws_.V("x")})};
  route.head = {ws_.A("Out", {ws_.V("x")})};
  Tgd feed;
  feed.body = {ws_.A("In", {ws_.V("x")})};
  feed.head = {ws_.A("St", {ws_.C("go"), ws_.V("x")})};
  Tgd noise;
  noise.body = {ws_.A("In", {ws_.V("x")})};
  noise.head = {ws_.A("St", {ws_.C("stop"), ws_.V("x")})};
  std::vector<Tgd> tgds{route, feed, noise};
  SoTgd so = TgdsToSo(&ws_.arena, &ws_.vocab, tgds);
  Instance input(&ws_.vocab);
  input.AddFact(ws_.Fc("In", {"a"}));
  input.AddFact(ws_.Fc("In", {"b"}));
  ChaseResult fast = Chase(&ws_.arena, &ws_.vocab, so, input);
  ChaseResult slow = Chase(&ws_.arena, &ws_.vocab, so, input, Naive());
  EXPECT_EQ(fast.instance.ToString(), slow.instance.ToString());
  RelationId out = ws_.vocab.FindRelation("Out");
  EXPECT_EQ(fast.instance.NumTuples(out), 2u);
}

TEST_F(SemiNaiveTest, RepeatedVariableInPivot) {
  // Delta seeding must respect repeated variables in the pivot atom.
  Tgd diag;
  diag.body = {ws_.A("R", {ws_.V("x"), ws_.V("x")})};
  diag.head = {ws_.A("D", {ws_.V("x")})};
  Tgd gen;
  gen.body = {ws_.A("P", {ws_.V("x"), ws_.V("y")})};
  gen.head = {ws_.A("R", {ws_.V("x"), ws_.V("y")})};
  std::vector<Tgd> tgds{diag, gen};
  SoTgd so = TgdsToSo(&ws_.arena, &ws_.vocab, tgds);
  Instance input(&ws_.vocab);
  input.AddFact(ws_.Fc("P", {"a", "a"}));
  input.AddFact(ws_.Fc("P", {"a", "b"}));
  ChaseResult fast = Chase(&ws_.arena, &ws_.vocab, so, input);
  RelationId d = ws_.vocab.FindRelation("D");
  EXPECT_EQ(fast.instance.NumTuples(d), 1u);
  ChaseResult slow = Chase(&ws_.arena, &ws_.vocab, so, input, Naive());
  EXPECT_EQ(fast.instance.ToString(), slow.instance.ToString());
}

TEST_F(SemiNaiveTest, RandomRuleSetsAgree) {
  Rng rng(424242);
  for (int trial = 0; trial < 15; ++trial) {
    TestWorkspace ws;
    auto relations = GenerateSchema(&ws.vocab, &rng, SchemaConfig{});
    std::vector<Tgd> tgds;
    for (int i = 0; i < 3; ++i) {
      tgds.push_back(
          GenerateTgd(&ws.arena, &ws.vocab, &rng, relations, TgdConfig{}));
    }
    SoTgd so = TgdsToSo(&ws.arena, &ws.vocab, tgds);
    Instance input(&ws.vocab);
    GenerateInstance(&ws.vocab, &rng, relations, 10, 3, 0, &input);
    ChaseLimits limits;
    limits.max_term_depth = 5;
    limits.max_facts = 20000;
    ChaseLimits naive = limits;
    naive.semi_naive = false;
    ChaseResult fast = Chase(&ws.arena, &ws.vocab, so, input, limits);
    ChaseResult slow = Chase(&ws.arena, &ws.vocab, so, input, naive);
    if (!fast.Terminated() || !slow.Terminated()) continue;
    EXPECT_EQ(fast.instance.NumFacts(), slow.instance.NumFacts())
        << "trial " << trial;
    EXPECT_TRUE(HomomorphicallyEquivalent(&ws.arena, &ws.vocab,
                                          fast.instance, slow.instance))
        << "trial " << trial;
  }
}

}  // namespace
}  // namespace tgdkit
