// Concurrency stress for the serve daemon: many client threads hammer
// one in-process server with a mix of identical requests (cache-hit
// path), distinct rulesets (cache-miss + insert + eviction path), and
// abrupt disconnects mid-request (cancellation path). Run under TSan
// this is the data-race proof for the poll-loop / worker-pool / cache
// seams; under plain builds it is a correctness soak: every response
// must parse, match its request id, and carry the right classification
// output.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <chrono>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/fileio.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"

namespace tgdkit {
namespace {

TEST(ServeStress, ConcurrentClientsCacheHitsAndDisconnects) {
  static int counter = 0;
  std::string dir = testing::TempDir() + "/tgdkit_serve_stress_" +
                    std::to_string(getpid()) + "_" +
                    std::to_string(counter++);
  ASSERT_TRUE(MakeDirectories(dir).ok());

  ServeOptions options;
  options.socket_path = dir + "/stress.sock";
  options.threads = 4;
  options.max_inflight = 32;
  options.max_commit_deadline_ms = 1u << 24;
  options.max_commit_memory_mb = 1u << 24;
  // Tiny cache: eviction churns constantly under the distinct rulesets.
  options.cache_bytes = 16 * 1024;
  options.drain_ms = 30000;
  CancellationToken shutdown;
  options.shutdown = shutdown;
  std::promise<void> ready;
  options.on_ready = [&ready](uint16_t) { ready.set_value(); };

  std::thread server([&options] {
    std::ostringstream out, err;
    Result<ServeSummary> result = RunServer(options, out, err);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    if (result.ok()) EXPECT_FALSE(result->stuck_workers);
  });
  ready.get_future().wait();

  constexpr int kClients = 6;
  constexpr int kRequestsPerClient = 25;
  std::atomic<int> ok_count{0};
  std::atomic<int> cached_count{0};
  std::atomic<int> failures{0};

  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      for (int r = 0; r < kRequestsPerClient; ++r) {
        Result<ServeClient> client =
            ServeClient::ConnectUnixSocket(options.socket_path);
        if (!client.ok()) {
          ++failures;
          continue;
        }
        ServeRequest request;
        request.id = std::to_string(c) + "-" + std::to_string(r);
        request.command = "classify";
        request.args = {"deps.tgd"};
        request.file_names = {"deps.tgd"};
        if (r % 3 == 0) {
          // One shared ruleset: the cache-hit path.
          request.file_contents = {"p(X) -> q(X) .\n"};
        } else {
          // Distinct per (client, request): the miss/insert/evict path.
          request.file_contents = {"p" + std::to_string(c) + "x" +
                                   std::to_string(r) +
                                   "(X) -> q(X) .\n"};
        }
        if (r % 7 == 6) {
          // Fire and vanish mid-request: the daemon must cancel and
          // discard without wedging a lane.
          if (!client->Send(request).ok()) ++failures;
          continue;
        }
        Result<ServeResponse> response = client->Call(request);
        if (!response.ok()) {
          ++failures;
          continue;
        }
        if (response->status == ServeStatus::kOverloaded) {
          continue;  // legitimate shed under load
        }
        if (response->status != ServeStatus::kOk ||
            response->exit_code != 0 || response->id != request.id ||
            response->out.find("figure-1") == std::string::npos) {
          ADD_FAILURE() << "bad response for " << request.id << ": "
                        << RenderServeResponse(*response);
          ++failures;
          continue;
        }
        ++ok_count;
        if (response->cached) ++cached_count;
      }
    });
  }
  for (std::thread& client : clients) client.join();

  shutdown.Cancel();
  server.join();

  EXPECT_EQ(failures.load(), 0);
  // 6 clients * 25 requests, minus the ~1/7 that disconnect on purpose.
  EXPECT_GT(ok_count.load(), kClients * kRequestsPerClient / 2);
  // The shared ruleset recurs ~50 times; most are hits.
  EXPECT_GT(cached_count.load(), 10);
}

}  // namespace
}  // namespace tgdkit
