// Out-of-core spill backend, end to end through the CLI:
//  * byte-identical output: a --spill-dir run prints exactly the facts of
//    the in-core run (the status line additionally carries the
//    content-derived spill telemetry), at any --threads N;
//  * graceful degradation: a chase whose instance dwarfs --max-memory-mb
//    stops with the resource exit in-core and completes with --spill-dir;
//  * kill-and-resume: SIGKILL inside any durable write (snapshot or
//    segment — they share the atomic-write crash points) leaves a state
//    that resumes to the bit-identical golden output;
//  * disk-full: an injected ENOSPC fails the run cleanly with the
//    resource exit and leaves the last good checkpoint resumable.
#include <gtest/gtest.h>

#include <sys/types.h>
#include <sys/wait.h>
#include <unistd.h>

#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "base/rng.h"
#include "cli/cli.h"
#include "snapshot/snapshot.h"

namespace tgdkit {
namespace {

constexpr char kRules[] =
    "t: E(x, y) & E(y, z) -> E(x, z) .\n"
    "m: E(x, y) -> exists w . M(x, w) .\n";

std::string PathInstanceText(int nodes) {
  std::string out;
  for (int i = 0; i + 1 < nodes; ++i) {
    out += "E(n" + std::to_string(i) + ", n" + std::to_string(i + 1) + ") .\n";
  }
  return out;
}

/// Drops the ` spill_segments=... spill_bytes=...` suffix from the
/// `# status:` line so spilled stdout can be compared against in-core
/// stdout, which has no spill telemetry.
std::string StripSpillFields(std::string text) {
  size_t status = text.find("# status: ");
  if (status == std::string::npos) return text;
  size_t eol = text.find('\n', status);
  size_t spill = text.find(" spill_segments=", status);
  if (spill == std::string::npos || spill > eol) return text;
  text.erase(spill, eol - spill);
  return text;
}

/// Drops the deliberate ` threads=N` lane-count echo from the status
/// line — the one permitted difference between runs at different
/// --threads (the same normalization CI's determinism smoke test does).
std::string StripThreadsField(std::string text) {
  size_t pos = text.find(" threads=");
  if (pos == std::string::npos) return text;
  size_t end = pos + 9;
  while (end < text.size() && text[end] >= '0' && text[end] <= '9') ++end;
  text.erase(pos, end - pos);
  return text;
}

class SpillTest : public ::testing::Test {
 protected:
  void SetUp() override {
    dir_ = testing::TempDir() + "/tgdkit_spill_" + std::to_string(getpid());
    ASSERT_EQ(::system(("rm -rf " + dir_ + " && mkdir -p " + dir_).c_str()),
              0);
    spill_dir_ = dir_ + "/segments";
    rules_path_ = dir_ + "/rules.tgd";
    inst_path_ = dir_ + "/input.inst";
    snap_path_ = dir_ + "/ckpt.snap";
    std::ofstream(rules_path_) << kRules;
    std::ofstream(inst_path_) << PathInstanceText(24);
  }

  void ClearSpillDir() {
    ASSERT_EQ(::system(("rm -rf " + spill_dir_).c_str()), 0);
  }

  /// Runs the CLI in-process, returning (exit code, stdout).
  std::pair<int, std::string> Run(const std::vector<std::string>& args) {
    std::ostringstream out, err;
    int code = RunCli(args, out, err);
    last_err_ = err.str();
    return {code, out.str()};
  }

  std::string dir_, spill_dir_, rules_path_, inst_path_, snap_path_;
  std::string last_err_;
};

TEST_F(SpillTest, SpilledOutputMatchesInCoreByteForByte) {
  auto [gold_code, golden] =
      Run({"chase", rules_path_, inst_path_, "--seed", "5"});
  ASSERT_EQ(gold_code, 0) << last_err_;

  auto [code, spilled] =
      Run({"chase", rules_path_, inst_path_, "--seed", "5", "--spill-dir",
           spill_dir_, "--spill-segment-kb", "1"});
  ASSERT_EQ(code, 0) << last_err_;
  EXPECT_NE(spilled.find(" spill_segments="), std::string::npos)
      << "spill telemetry missing from the status line";
  EXPECT_EQ(StripSpillFields(spilled), golden);
}

TEST_F(SpillTest, SpilledOutputIsThreadCountInvariant) {
  auto [code1, one] =
      Run({"chase", rules_path_, inst_path_, "--seed", "5", "--threads", "1",
           "--spill-dir", spill_dir_, "--spill-segment-kb", "1"});
  ASSERT_EQ(code1, 0) << last_err_;
  ClearSpillDir();
  auto [code4, four] =
      Run({"chase", rules_path_, inst_path_, "--seed", "5", "--threads", "4",
           "--spill-dir", spill_dir_, "--spill-segment-kb", "1"});
  ASSERT_EQ(code4, 0) << last_err_;
  EXPECT_EQ(StripThreadsField(one), StripThreadsField(four));
}

TEST_F(SpillTest, OversizedInstanceNeedsSpillToComplete) {
  // ~20000 wide rows: far past a 1 MiB budget in-core (rows + per-position
  // postings + dedup index), but the spill backend's resident summaries
  // (~9 bytes/sealed row) fit comfortably. One projection rule keeps the
  // chase busy over the big relation without growing it.
  std::string big_rules = dir_ + "/big.tgd";
  std::string big_inst = dir_ + "/big.inst";
  std::ofstream(big_rules)
      << "Big(x1, x2, x3, x4, x5, x6, x7, x8) -> Want(x1) .\n";
  {
    // Column c holds digit c of `row` base 64: rows are pairwise distinct
    // (they spell the row number) over a 64-constant vocabulary, so the
    // payload, not the symbol table, carries the bytes.
    std::ofstream inst(big_inst);
    for (int row = 0; row < 20000; ++row) {
      inst << "Big(";
      int x = row;
      for (int col = 0; col < 8; ++col) {
        inst << (col ? ", " : "") << "v" << (x % 64);
        x /= 64;
      }
      inst << ") .\n";
    }
  }

  auto [incore_code, incore_out] =
      Run({"chase", big_rules, big_inst, "--max-memory-mb", "1"});
  EXPECT_EQ(incore_code, kExitResource)
      << "in-core run under a 1 MiB budget should stop on memory";

  // 64 KiB segments keep the mutable in-core tail (< one segment of rows,
  // with its dedup + posting indexes) well inside the 1 MiB budget.
  auto [spill_code, spill_out] = Run({"chase", big_rules, big_inst,
                                      "--max-memory-mb", "1", "--spill-dir",
                                      spill_dir_, "--spill-segment-kb", "64"});
  ASSERT_EQ(spill_code, 0)
      << "spilled run should complete under the same budget: " << last_err_;

  // And the completed spilled result matches the unconstrained run.
  auto [free_code, free_out] = Run({"chase", big_rules, big_inst});
  ASSERT_EQ(free_code, 0) << last_err_;
  EXPECT_EQ(StripSpillFields(spill_out), free_out);
}

TEST_F(SpillTest, ResumingSpilledSnapshotRequiresSpillDir) {
  auto [code, out] =
      Run({"chase", rules_path_, inst_path_, "--seed", "5", "--spill-dir",
           spill_dir_, "--spill-segment-kb", "1", "--checkpoint", snap_path_});
  ASSERT_EQ(code, 0) << last_err_;
  auto [resume_code, resume_out] = Run({"chase", "--resume", snap_path_});
  EXPECT_EQ(resume_code, kExitInput);
  EXPECT_NE(last_err_.find("spill"), std::string::npos) << last_err_;
}

TEST_F(SpillTest, SpillFlagsAreValidated) {
  auto [kb_code, kb_out] = Run({"chase", rules_path_, inst_path_,
                                "--spill-dir", spill_dir_,
                                "--spill-segment-kb", "0"});
  EXPECT_EQ(kb_code, kExitUsage);
  auto [cmd_code, cmd_out] =
      Run({"classify", rules_path_, "--spill-dir", spill_dir_});
  EXPECT_EQ(cmd_code, kExitUsage);
}

// ---------------------------------------------------------------------------
// Chaos: kill and resume across segment + snapshot writes.

class SpillCrashTest : public SpillTest {
 protected:
  void SetUp() override {
    SpillTest::SetUp();
    std::ostringstream out, err;
    int code = RunCli({"chase", rules_path_, inst_path_, "--seed", "5",
                       "--spill-dir", spill_dir_, "--spill-segment-kb", "1"},
                      out, err);
    ASSERT_EQ(code, 0) << err.str();
    golden_ = out.str();
    ASSERT_NE(golden_.find(" spill_segments="), std::string::npos);
    ClearSpillDir();
  }

  /// Forks a child that runs the checkpointing spilled chase with the
  /// crash hook armed to die at durable write `crash_at` in `phase`
  /// (segment files and snapshots share the AtomicWriteFile crash
  /// points). Returns true if the child was SIGKILLed.
  bool RunChildToDeath(uint64_t crash_at, const char* phase) {
    std::remove(snap_path_.c_str());
    std::remove((snap_path_ + ".tmp").c_str());
    ClearSpillDir();
    pid_t pid = fork();
    if (pid == 0) {
      setenv("TGDKIT_CRASH_AT", std::to_string(crash_at).c_str(), 1);
      setenv("TGDKIT_CRASH_PHASE", phase, 1);
      std::ostringstream out, err;
      RunCli({"chase", rules_path_, inst_path_, "--seed", "5", "--spill-dir",
              spill_dir_, "--spill-segment-kb", "1", "--checkpoint",
              snap_path_, "--checkpoint-every-steps", "1"},
             out, err);
      _exit(0);
    }
    int status = 0;
    EXPECT_EQ(waitpid(pid, &status, 0), pid);
    if (WIFSIGNALED(status)) {
      EXPECT_EQ(WTERMSIG(status), SIGKILL);
      return true;
    }
    EXPECT_TRUE(WIFEXITED(status));
    EXPECT_EQ(WEXITSTATUS(status), 0);
    return false;
  }

  bool SnapshotExists() const {
    std::ifstream in(snap_path_, std::ios::binary);
    return in.good();
  }

  /// Resumes from the surviving snapshot (+ segment files) and requires
  /// output bit-identical to the uninterrupted spilled run — including
  /// the content-derived spill telemetry.
  void ResumeAndCompare(const std::string& label) {
    std::ostringstream out, err;
    int code = RunCli({"chase", "--resume", snap_path_, "--spill-dir",
                       spill_dir_},
                      out, err);
    ASSERT_EQ(code, 0) << label << ": " << err.str();
    EXPECT_EQ(out.str(), golden_) << label;
  }

  std::string golden_;
};

TEST_F(SpillCrashTest, RandomizedKillPointsAllResumeBitIdentical) {
  // Randomized (seeded: failures reproduce) kill points across all three
  // crash phases. With --spill-segment-kb 1 the run makes many segment
  // writes interleaved with snapshot writes, so the counter lands inside
  // segment flushes too. Every kill that leaves a snapshot must resume
  // to the golden output.
  Rng rng(0x5B111);
  const char* phases[] = {"begin", "mid", "commit"};
  int resumed = 0, no_snapshot = 0, completed = 0;
  for (int trial = 0; trial < 24; ++trial) {
    uint64_t crash_at = 1 + rng.Below(12);
    const char* phase = phases[rng.Below(3)];
    std::string label = "trial " + std::to_string(trial) + ": crash_at=" +
                        std::to_string(crash_at) + " phase=" + phase;
    bool killed = RunChildToDeath(crash_at, phase);
    if (!killed) {
      ++completed;
      ASSERT_TRUE(SnapshotExists()) << label;
      ResumeAndCompare(label + " (completed)");
      continue;
    }
    if (!SnapshotExists()) {
      // Killed before the first snapshot commit: nothing to resume, and
      // nothing durable claims otherwise. A fresh run still converges.
      ++no_snapshot;
      continue;
    }
    ++resumed;
    ResumeAndCompare(label);
  }
  EXPECT_GE(resumed, 8) << "resumed=" << resumed
                        << " no_snapshot=" << no_snapshot
                        << " completed=" << completed;
}

TEST_F(SpillCrashTest, ChainedKillsConvergeToGolden) {
  ASSERT_TRUE(RunChildToDeath(4, "mid"));
  ASSERT_TRUE(SnapshotExists());

  std::remove((snap_path_ + ".tmp").c_str());
  pid_t pid = fork();
  if (pid == 0) {
    setenv("TGDKIT_CRASH_AT", "3", 1);
    setenv("TGDKIT_CRASH_PHASE", "commit", 1);
    std::ostringstream out, err;
    RunCli({"chase", "--resume", snap_path_, "--spill-dir", spill_dir_,
            "--checkpoint", snap_path_, "--checkpoint-every-steps", "1"},
           out, err);
    _exit(0);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFSIGNALED(status) && WTERMSIG(status) == SIGKILL)
      << "second leg was expected to die at a durable write";
  ASSERT_TRUE(SnapshotExists());
  ResumeAndCompare("after two chained kills");
}

TEST_F(SpillCrashTest, InjectedDiskFullFailsCleanlyAndKeepsLastCheckpoint) {
  // Leg 1: run to completion with checkpointing — leaves a good snapshot
  // and its segment files.
  {
    std::ostringstream out, err;
    int code = RunCli({"chase", rules_path_, inst_path_, "--seed", "5",
                       "--spill-dir", spill_dir_, "--spill-segment-kb", "1",
                       "--checkpoint", snap_path_},
                      out, err);
    ASSERT_EQ(code, 0) << err.str();
  }
  std::string good_snapshot;
  {
    std::ifstream in(snap_path_, std::ios::binary);
    std::ostringstream buffer;
    buffer << in.rdbuf();
    good_snapshot = buffer.str();
  }

  // Leg 2: rerun with the first durable write failing as ENOSPC. The run
  // must fail with the resource exit (not crash, not exit 5's internal),
  // and must not have disturbed the good snapshot.
  pid_t pid = fork();
  if (pid == 0) {
    setenv("TGDKIT_FAIL_WRITE_AT", "1", 1);
    std::ostringstream out, err;
    int code = RunCli({"chase", rules_path_, inst_path_, "--seed", "5",
                       "--spill-dir", spill_dir_, "--spill-segment-kb", "1",
                       "--checkpoint", snap_path_, "--checkpoint-every-steps",
                       "1"},
                      out, err);
    _exit(code);
  }
  int status = 0;
  ASSERT_EQ(waitpid(pid, &status, 0), pid);
  ASSERT_TRUE(WIFEXITED(status)) << "disk-full run must exit, not crash";
  EXPECT_EQ(WEXITSTATUS(status), kExitResource);

  std::ifstream in(snap_path_, std::ios::binary);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  EXPECT_EQ(buffer.str(), good_snapshot)
      << "failed leg must leave the previous snapshot byte-identical";
  ResumeAndCompare("after injected disk-full");
}

}  // namespace
}  // namespace tgdkit
