// End-to-end tests for `tgdkit serve` (src/serve/server): the daemon
// runs in-process on its own thread against a Unix socket in a temp
// directory, so every robustness property — byte-identity with the
// one-shot CLI, overload shedding, client-disconnect cancellation,
// malformed/oversized frame recovery, quarantine, hard-overrun
// abandonment, graceful drain, ledger discipline — is exercised with
// real sockets but no forked processes (TSan-compatible).
#include <gtest/gtest.h>

#include <unistd.h>

#include <chrono>
#include <fstream>
#include <future>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "base/fileio.h"
#include "cli/cli.h"
#include "serve/client.h"
#include "serve/protocol.h"
#include "serve/server.h"
#include "supervise/jsonl.h"

namespace tgdkit {
namespace {

constexpr const char* kDeps = "every: Emp(e) -> exists m . Mgr(e, m) .\n";
constexpr const char* kInst = "Emp(alice). Emp(bob). Mgr(alice, boss).\n";
constexpr const char* kQuery = "ans(e) :- Emp(e).";

class ServeTest : public ::testing::Test {
 protected:
  void SetUp() override {
    static int counter = 0;
    dir_ = testing::TempDir() + "/tgdkit_serve_" + std::to_string(getpid()) +
           "_" + std::to_string(counter++);
    ASSERT_TRUE(MakeDirectories(dir_).ok());
    options_.socket_path = dir_ + "/serve.sock";
    options_.threads = 4;
    options_.drain_ms = 10000;
  }

  void TearDown() override {
    if (server_.joinable()) StopServer();
  }

  std::string WriteInput(const std::string& name,
                         const std::string& content) {
    std::string path = dir_ + "/" + name;
    std::ofstream out(path);
    out << content;
    return path;
  }

  void StartServer() {
    options_.shutdown = shutdown_;
    // The promise outlives the server thread (it is a member), so the
    // on_ready closure never dangles.
    std::future<void> listening = ready_.get_future();
    options_.on_ready = [this](uint16_t) { ready_.set_value(); };
    server_ = std::thread([this] {
      std::ostringstream out, err;
      Result<ServeSummary> result = RunServer(options_, out, err);
      server_status_ = result.status();
      if (result.ok()) summary_ = *result;
      server_out_ = out.str();
      server_err_ = err.str();
    });
    listening.wait();
  }

  ServeSummary StopServer() {
    shutdown_.Cancel();
    server_.join();
    EXPECT_TRUE(server_status_.ok()) << server_status_.ToString();
    return summary_;
  }

  ServeClient Connect() {
    Result<ServeClient> client =
        ServeClient::ConnectUnixSocket(options_.socket_path);
    EXPECT_TRUE(client.ok()) << client.status().ToString();
    return std::move(*client);
  }

  static ServeResponse MustCall(ServeClient& client,
                                const ServeRequest& request) {
    Result<ServeResponse> response = client.Call(request);
    EXPECT_TRUE(response.ok()) << response.status().ToString();
    return response.ok() ? *response : ServeResponse{};
  }

  std::string dir_;
  ServeOptions options_;
  std::promise<void> ready_;
  CancellationToken shutdown_;
  std::thread server_;
  Status server_status_ = Status::Ok();
  ServeSummary summary_;
  std::string server_out_, server_err_;
};

/// A request whose inputs ride inline under the same absolute paths the
/// CLI invocation would read from disk, so the two can be compared.
ServeRequest InlineRequest(std::string id, std::string command,
                           std::vector<std::string> args,
                           std::vector<std::pair<std::string, std::string>>
                               files = {}) {
  ServeRequest request;
  request.id = std::move(id);
  request.command = std::move(command);
  request.args = std::move(args);
  for (auto& [name, content] : files) {
    request.file_names.push_back(name);
    request.file_contents.push_back(content);
  }
  return request;
}

TEST_F(ServeTest, EverySubcommandIsByteIdenticalToTheOneShotCli) {
  std::string deps = WriteInput("deps.tgd", kDeps);
  std::string inst = WriteInput("seed.inst", kInst);
  StartServer();
  ServeClient client = Connect();

  struct Case {
    const char* name;
    std::vector<std::string> cli;
  };
  const std::vector<Case> cases = {
      {"classify", {"classify", deps}},
      {"lint", {"lint", deps}},
      {"check", {"check", deps, inst}},
      {"chase", {"chase", deps, inst}},
      {"certain", {"certain", deps, inst, kQuery}},
      {"normalize", {"normalize", deps}},
      {"dot", {"dot", deps}},
      {"explain", {"explain", deps, inst}},
      {"solve", {"solve", deps, inst}},
  };
  for (const Case& test_case : cases) {
    std::ostringstream cli_out, cli_err;
    int cli_exit = RunCli(test_case.cli, cli_out, cli_err);

    ServeRequest request = InlineRequest(
        test_case.name, test_case.cli[0],
        {test_case.cli.begin() + 1, test_case.cli.end()},
        {{deps, kDeps}, {inst, kInst}});
    ServeResponse response = MustCall(client, request);
    EXPECT_EQ(response.status, ServeStatus::kOk) << test_case.name;
    EXPECT_EQ(response.exit_code, cli_exit) << test_case.name;
    EXPECT_EQ(response.out, cli_out.str()) << test_case.name;
    EXPECT_EQ(response.err, cli_err.str()) << test_case.name;
    EXPECT_FALSE(response.cached) << test_case.name;
  }
  ServeSummary summary = StopServer();
  EXPECT_EQ(summary.admitted, cases.size());
  EXPECT_EQ(summary.ok, cases.size());
  EXPECT_EQ(summary.cache_hits, 0u);
}

TEST_F(ServeTest, IdenticalRequestsHitTheCacheByteIdentically) {
  StartServer();
  ServeClient client = Connect();
  ServeRequest request = InlineRequest("c1", "classify", {"deps.tgd"},
                                       {{"deps.tgd", "p(X) -> q(X) .\n"}});
  ServeResponse first = MustCall(client, request);
  ASSERT_EQ(first.status, ServeStatus::kOk);
  EXPECT_FALSE(first.cached);

  request.id = "c2";
  ServeResponse second = MustCall(client, request);
  EXPECT_EQ(second.status, ServeStatus::kOk);
  EXPECT_TRUE(second.cached);
  EXPECT_EQ(second.exit_code, first.exit_code);
  EXPECT_EQ(second.out, first.out);
  EXPECT_EQ(second.err, first.err);

  // A different ruleset is a different key: no false sharing.
  ServeRequest other = InlineRequest("c3", "classify", {"deps.tgd"},
                                     {{"deps.tgd", "r(X) -> s(X) .\n"}});
  ServeResponse third = MustCall(client, other);
  EXPECT_EQ(third.status, ServeStatus::kOk);
  EXPECT_FALSE(third.cached);

  ServeSummary summary = StopServer();
  EXPECT_EQ(summary.admitted, 2u);
  EXPECT_EQ(summary.cache_hits, 1u);
  EXPECT_EQ(summary.ok, 3u);
}

TEST_F(ServeTest, RequestsReadingTheDaemonFilesystemAreNotCached) {
  std::string deps = WriteInput("disk.tgd", "p(X) -> q(X) .\n");
  StartServer();
  ServeClient client = Connect();
  // No inline files: the resolver falls back to the daemon's disk.
  ServeRequest request = InlineRequest("d1", "classify", {deps});
  ServeResponse first = MustCall(client, request);
  ASSERT_EQ(first.status, ServeStatus::kOk);
  ASSERT_EQ(first.exit_code, 0);

  request.id = "d2";
  ServeResponse second = MustCall(client, request);
  EXPECT_EQ(second.status, ServeStatus::kOk);
  EXPECT_FALSE(second.cached) << "filesystem reads must not warm the cache";
  ServeSummary summary = StopServer();
  EXPECT_EQ(summary.cache_hits, 0u);
}

TEST_F(ServeTest, OverloadShedsImmediatelyWithATypedResponse) {
  options_.threads = 1;
  options_.max_inflight = 1;
  StartServer();
  ServeClient client = Connect();
  // Occupy the only lane, then ask for more.
  ServeRequest slow =
      InlineRequest("slow", "selftest", {"--spin-ms", "2000"});
  ASSERT_TRUE(client.Send(slow).ok());
  ServeRequest extra = InlineRequest("extra", "classify", {"x.tgd"},
                                     {{"x.tgd", "p(X) -> q(X) .\n"}});
  // The slow request may not be admitted yet when `extra` arrives; retry
  // until the refusal shows up (admission is synchronous once it is).
  ServeResponse refusal;
  for (int attempt = 0; attempt < 200; ++attempt) {
    extra.id = "extra-" + std::to_string(attempt);
    refusal = MustCall(client, extra);
    if (refusal.status != ServeStatus::kOk) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(refusal.status, ServeStatus::kOverloaded);
  EXPECT_GT(refusal.retry_after_ms, 0u);
  EXPECT_NE(refusal.error.find("admission"), std::string::npos)
      << refusal.error;
  // The daemon is still healthy: the slow request completes normally.
  Result<ServeResponse> slow_response = client.ReadResponse();
  ASSERT_TRUE(slow_response.ok()) << slow_response.status().ToString();
  EXPECT_EQ(slow_response->id, "slow");
  EXPECT_EQ(slow_response->status, ServeStatus::kOk);
  ServeSummary summary = StopServer();
  EXPECT_GE(summary.shed, 1u);
}

TEST_F(ServeTest, ClientDisconnectCancelsTheInflightRequest) {
  StartServer();
  auto begun = std::chrono::steady_clock::now();
  {
    ServeClient client = Connect();
    // Would spin for 30 s if nothing cancelled it; it polls the token.
    ASSERT_TRUE(
        client
            .Send(InlineRequest("gone", "selftest", {"--spin-ms", "30000"}))
            .ok());
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }  // full close: the daemon sees the hangup and cancels
  ServeSummary summary = StopServer();
  double elapsed_ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - begun)
                          .count();
  EXPECT_LT(elapsed_ms, 15000) << "disconnect did not cancel the request";
  EXPECT_EQ(summary.admitted, 1u);
  EXPECT_EQ(summary.timeouts, 0u);
}

TEST_F(ServeTest, MalformedAndOversizedFramesNeverKillTheDaemon) {
  options_.max_frame_bytes = 1024;
  StartServer();
  ServeClient client = Connect();

  // Garbage that is not JSON.
  ASSERT_TRUE(client.SendRaw("this is not a frame\n").ok());
  Result<ServeResponse> bad = client.ReadResponse();
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, ServeStatus::kBadRequest);

  // Valid JSON missing required fields.
  ASSERT_TRUE(client.SendRaw("{\"id\":\"nope\"}\n").ok());
  bad = client.ReadResponse();
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, ServeStatus::kBadRequest);
  EXPECT_EQ(bad->id, "nope");

  // An unknown command.
  ASSERT_TRUE(
      client.SendRaw("{\"id\":\"rm\",\"command\":\"rm-rf\"}\n").ok());
  bad = client.ReadResponse();
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, ServeStatus::kBadRequest);

  // An oversized frame: refused mid-stream, and the daemon resyncs at
  // the next newline.
  std::string huge(4096, 'x');
  ASSERT_TRUE(client.SendRaw(huge).ok());
  bad = client.ReadResponse();
  ASSERT_TRUE(bad.ok());
  EXPECT_EQ(bad->status, ServeStatus::kBadRequest);
  EXPECT_NE(bad->error.find("exceeds"), std::string::npos) << bad->error;
  ASSERT_TRUE(client.SendRaw("tail-of-oversized-frame\n").ok());

  // A truncated frame (no newline) followed by the rest.
  ASSERT_TRUE(client.SendRaw("{\"id\":\"split\",\"comm").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  ASSERT_TRUE(client.SendRaw("and\":\"ping\"}\n").ok());
  Result<ServeResponse> pong = client.ReadResponse();
  ASSERT_TRUE(pong.ok());
  EXPECT_EQ(pong->id, "split");
  EXPECT_EQ(pong->status, ServeStatus::kOk);

  // After all that chaos a real request still works.
  ServeResponse ok = MustCall(
      client, InlineRequest("real", "classify", {"deps.tgd"},
                            {{"deps.tgd", "p(X) -> q(X) .\n"}}));
  EXPECT_EQ(ok.status, ServeStatus::kOk);
  EXPECT_EQ(ok.exit_code, 0);

  ServeSummary summary = StopServer();
  EXPECT_GE(summary.bad_frames, 4u);
  EXPECT_EQ(summary.admitted, 1u);
}

TEST_F(ServeTest, RepeatedInternalFailuresQuarantineTheRuleset) {
  options_.quarantine_after = 2;
  StartServer();
  ServeClient client = Connect();
  // selftest --die-exit 5 reports an internal failure (exit 5) without
  // taking the daemon down; its quarantine key is command+args.
  ServeRequest failing =
      InlineRequest("f1", "selftest", {"--die-exit", "5"});
  for (int i = 1; i <= 2; ++i) {
    failing.id = "f" + std::to_string(i);
    ServeResponse response = MustCall(client, failing);
    EXPECT_EQ(response.status, ServeStatus::kOk);
    EXPECT_EQ(response.exit_code, 5);
  }
  failing.id = "f3";
  ServeResponse refused = MustCall(client, failing);
  EXPECT_EQ(refused.status, ServeStatus::kQuarantined);

  // Other rulesets are unaffected.
  ServeResponse ok = MustCall(
      client, InlineRequest("fine", "classify", {"deps.tgd"},
                            {{"deps.tgd", "p(X) -> q(X) .\n"}}));
  EXPECT_EQ(ok.status, ServeStatus::kOk);

  ServeSummary summary = StopServer();
  EXPECT_EQ(summary.quarantined, 1u);
}

TEST_F(ServeTest, HostileRequestIsAbandonedWithATimeoutResponse) {
  options_.hard_grace_ms = 150;
  StartServer();
  ServeClient client = Connect();
  // --ignore-term makes selftest spin without polling its token: the
  // deadline cancellation is ignored, the grace expires, the request is
  // abandoned with a typed timeout while the worker spins on.
  ServeRequest hostile =
      InlineRequest("hostile", "selftest",
                    {"--ignore-term", "--spin-ms", "800"});
  hostile.deadline_ms = 100;
  ServeResponse response = MustCall(client, hostile);
  EXPECT_EQ(response.status, ServeStatus::kTimeout);

  // Let the spinner finish so the drain is clean (its late completion
  // must be discarded, not double-answered).
  std::this_thread::sleep_for(std::chrono::milliseconds(900));
  ServeSummary summary = StopServer();
  EXPECT_EQ(summary.timeouts, 1u);
  EXPECT_FALSE(summary.stuck_workers);
}

TEST_F(ServeTest, DrainFinishesEightConcurrentRequestsThenRefuses) {
  options_.threads = 8;
  options_.max_inflight = 8;
  // Eight default 10 s deadline commitments must all fit.
  options_.max_commit_deadline_ms = 1u << 20;
  StartServer();
  std::vector<ServeClient> clients;
  for (int i = 0; i < 8; ++i) {
    clients.push_back(Connect());
    ASSERT_TRUE(clients.back()
                    .Send(InlineRequest("req-" + std::to_string(i),
                                        "selftest", {"--spin-ms", "700"}))
                    .ok());
  }
  // Give the frames time to be admitted, then start the drain while all
  // eight are in flight.
  std::this_thread::sleep_for(std::chrono::milliseconds(200));
  shutdown_.Cancel();
  // Let the poll loop observe the shutdown before the late request
  // arrives (the drain flag flips at the top of a poll iteration).
  std::this_thread::sleep_for(std::chrono::milliseconds(150));

  // A request sent during the drain is refused with a typed response.
  ASSERT_TRUE(clients[0]
                  .Send(InlineRequest("late", "classify", {"x"}))
                  .ok());

  // Every in-flight request still completes and is delivered.
  int late_refusals = 0;
  for (int i = 0; i < 8; ++i) {
    for (;;) {
      Result<ServeResponse> response = clients[i].ReadResponse();
      ASSERT_TRUE(response.ok())
          << i << ": " << response.status().ToString();
      if (response->id == "late") {
        EXPECT_EQ(response->status, ServeStatus::kDraining);
        ++late_refusals;
        continue;
      }
      EXPECT_EQ(response->id, "req-" + std::to_string(i));
      EXPECT_EQ(response->status, ServeStatus::kOk);
      EXPECT_EQ(response->exit_code, 0);
      break;
    }
  }
  EXPECT_EQ(late_refusals, 1);
  ServeSummary summary = StopServer();
  EXPECT_EQ(summary.admitted, 8u);
  EXPECT_EQ(summary.ok, 8u);
  EXPECT_EQ(summary.draining_refusals, 1u);
  EXPECT_FALSE(summary.stuck_workers);
}

TEST_F(ServeTest, LedgerRecordsEveryAnswerBeforeItIsSent) {
  options_.ledger_path = dir_ + "/serve.jsonl";
  StartServer();
  ServeClient client = Connect();
  ServeRequest request = InlineRequest("L1", "classify", {"deps.tgd"},
                                       {{"deps.tgd", "p(X) -> q(X) .\n"}});
  ASSERT_EQ(MustCall(client, request).status, ServeStatus::kOk);
  request.id = "L2";  // cache hit: still one request + one response record
  ASSERT_EQ(MustCall(client, request).status, ServeStatus::kOk);
  // Refusals are stateless and must NOT be ledgered.
  ASSERT_TRUE(client.SendRaw("garbage\n").ok());
  ASSERT_TRUE(client.ReadResponse().ok());
  StopServer();

  Result<std::string> ledger = ReadFileBytes(options_.ledger_path);
  ASSERT_TRUE(ledger.ok());
  std::vector<std::string> types;
  std::vector<std::string> response_ids;
  std::istringstream lines(*ledger);
  std::string line;
  while (std::getline(lines, line)) {
    FlatJson record;
    ASSERT_TRUE(ParseFlatJson(line, &record).ok()) << line;
    std::string type = GetJsonString(record, "type");
    ASSERT_FALSE(type.empty()) << line;
    types.push_back(type);
    if (type == "response") {
      response_ids.push_back(GetJsonString(record, "id"));
    }
  }
  // header, request L1, response L1, request L2, response L2, drain.
  EXPECT_EQ(types,
            (std::vector<std::string>{"serve", "request", "response",
                                      "request", "response", "drain"}));
  // No id answered twice.
  EXPECT_EQ(response_ids, (std::vector<std::string>{"L1", "L2"}));
}

TEST_F(ServeTest, BatchOverServeRequiresAnExecWorker) {
  StartServer();
  ServeClient client = Connect();
  std::string manifest = WriteInput(
      "batch.manifest", "task one : selftest --stdout-lines 1\n");
  // No worker binary configured: the daemon must refuse to fork
  // in-process workers (it is multithreaded) with a usage error, not
  // crash or deadlock.
  ServeResponse response = MustCall(
      client, InlineRequest("b1", "batch", {manifest}));
  EXPECT_EQ(response.status, ServeStatus::kOk);
  EXPECT_EQ(response.exit_code, 1);
  EXPECT_NE(response.err.find("--worker"), std::string::npos)
      << response.err;
  StopServer();
}

TEST_F(ServeTest, PingAnswersWithoutBurningAdmission) {
  options_.threads = 1;
  options_.max_inflight = 1;
  StartServer();
  ServeClient client = Connect();
  for (int i = 0; i < 5; ++i) {
    ServeResponse pong =
        MustCall(client, InlineRequest("p" + std::to_string(i), "ping", {}));
    EXPECT_EQ(pong.status, ServeStatus::kOk);
    EXPECT_EQ(pong.exit_code, 0);
  }
  ServeSummary summary = StopServer();
  EXPECT_EQ(summary.admitted, 0u);
}

TEST_F(ServeTest, MaxRequestsTriggersAutomaticDrain) {
  options_.max_requests = 1;
  StartServer();
  ServeClient client = Connect();
  ServeResponse response = MustCall(
      client, InlineRequest("only", "classify", {"deps.tgd"},
                            {{"deps.tgd", "p(X) -> q(X) .\n"}}));
  EXPECT_EQ(response.status, ServeStatus::kOk);
  // The daemon drains on its own; no shutdown needed.
  server_.join();
  EXPECT_TRUE(server_status_.ok()) << server_status_.ToString();
  EXPECT_NE(server_out_.find("drained reason=max-requests"),
            std::string::npos)
      << server_out_;
}

}  // namespace
}  // namespace tgdkit
