#include <gtest/gtest.h>

#include "homo/core.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

class CoreTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;
};

TEST_F(CoreTest, HomomorphismFixesConstants) {
  Instance a(&ws_.vocab), b(&ws_.vocab);
  a.AddFact(ws_.Fc("R", {"c", "d"}));
  b.AddFact(ws_.Fc("R", {"d", "c"}));
  EXPECT_FALSE(HomomorphismExists(&ws_.arena, &ws_.vocab, a, b));
  b.AddFact(ws_.Fc("R", {"c", "d"}));
  EXPECT_TRUE(HomomorphismExists(&ws_.arena, &ws_.vocab, a, b));
}

TEST_F(CoreTest, NullMapsToAnything) {
  Instance a(&ws_.vocab), b(&ws_.vocab);
  RelationId r = ws_.vocab.InternRelation("R", 2);
  Value n = a.FreshNull();
  a.AddFact(r, std::vector<Value>{ws_.Cv("c"), n});
  b.AddFact(ws_.Fc("R", {"c", "d"}));
  EXPECT_TRUE(HomomorphismExists(&ws_.arena, &ws_.vocab, a, b));
  // Reverse direction fails: constant d cannot map to the null.
  EXPECT_FALSE(HomomorphismExists(&ws_.arena, &ws_.vocab, b, a));
}

TEST_F(CoreTest, FindHomomorphismReturnsWitness) {
  Instance a(&ws_.vocab), b(&ws_.vocab);
  RelationId r = ws_.vocab.InternRelation("R", 2);
  Value n = a.FreshNull();
  a.AddFact(r, std::vector<Value>{ws_.Cv("c"), n});
  b.AddFact(ws_.Fc("R", {"c", "d"}));
  auto hom = FindHomomorphism(&ws_.arena, &ws_.vocab, a, b);
  ASSERT_TRUE(hom.has_value());
  EXPECT_EQ(hom->at(n.index()), ws_.Cv("d"));
}

TEST_F(CoreTest, HomEquivalenceIsSymmetricCheck) {
  Instance a(&ws_.vocab), b(&ws_.vocab);
  RelationId r = ws_.vocab.InternRelation("R", 2);
  Value na = a.FreshNull();
  a.AddFact(r, std::vector<Value>{ws_.Cv("c"), na});
  Value nb1 = b.FreshNull();
  Value nb2 = b.FreshNull();
  b.AddFact(r, std::vector<Value>{ws_.Cv("c"), nb1});
  b.AddFact(r, std::vector<Value>{ws_.Cv("c"), nb2});
  EXPECT_TRUE(HomomorphicallyEquivalent(&ws_.arena, &ws_.vocab, a, b));
}

TEST_F(CoreTest, ApplyNullMapRewritesFacts) {
  Instance a(&ws_.vocab);
  RelationId r = ws_.vocab.InternRelation("R", 2);
  Value n1 = a.FreshNull();
  Value n2 = a.FreshNull();
  a.AddFact(r, std::vector<Value>{n1, n2});
  NullMap map{{n1.index(), ws_.Cv("c")}, {n2.index(), n1}};
  Instance image = ApplyNullMap(a, map);
  EXPECT_TRUE(image.Contains(r, std::vector<Value>{ws_.Cv("c"), n1}));
  EXPECT_EQ(image.NumFacts(), 1u);
}

TEST_F(CoreTest, CoreCollapsesRedundantNulls) {
  // R(c, n1), R(c, n2), R(c, d): core is R(c, d) alone.
  Instance j(&ws_.vocab);
  RelationId r = ws_.vocab.InternRelation("R", 2);
  Value n1 = j.FreshNull();
  Value n2 = j.FreshNull();
  j.AddFact(r, std::vector<Value>{ws_.Cv("c"), n1});
  j.AddFact(r, std::vector<Value>{ws_.Cv("c"), n2});
  j.AddFact(ws_.Fc("R", {"c", "d"}));
  Instance core = ComputeCore(&ws_.arena, &ws_.vocab, j);
  EXPECT_EQ(core.NumFacts(), 1u);
  EXPECT_TRUE(core.Contains(r, std::vector<Value>{ws_.Cv("c"), ws_.Cv("d")}));
}

TEST_F(CoreTest, CoreKeepsProtectedNulls) {
  // Q(a, u), R(u, v), S(v, b): u, v are "protected" by constants; the
  // instance is already a core (the paper's Idea 2 structure).
  Instance j(&ws_.vocab);
  RelationId q = ws_.vocab.InternRelation("Q", 2);
  RelationId r = ws_.vocab.InternRelation("R", 2);
  RelationId s = ws_.vocab.InternRelation("S", 2);
  Value u = j.FreshNull();
  Value v = j.FreshNull();
  j.AddFact(q, std::vector<Value>{ws_.Cv("a"), u});
  j.AddFact(r, std::vector<Value>{u, v});
  j.AddFact(s, std::vector<Value>{v, ws_.Cv("b")});
  Instance core = ComputeCore(&ws_.arena, &ws_.vocab, j);
  EXPECT_EQ(core.NumFacts(), 3u);
}

TEST_F(CoreTest, CoreOfConstantInstanceIsItself) {
  Instance j(&ws_.vocab);
  j.AddFact(ws_.Fc("R", {"a", "b"}));
  j.AddFact(ws_.Fc("R", {"b", "a"}));
  Instance core = ComputeCore(&ws_.arena, &ws_.vocab, j);
  EXPECT_EQ(core.NumFacts(), 2u);
}

TEST_F(CoreTest, CoreFoldsUnprotectedChain) {
  // R(n1, n2), R(n2, n3): folds to a single loop-free fact? No — folding
  // requires a target fact to map onto; R(n1,n2),R(n2,n1) has core of
  // size... both facts fold onto nothing smaller without a loop. Use a
  // clean case: R(n1, n2) and R(n1, n3) fold to one fact.
  Instance j(&ws_.vocab);
  RelationId r = ws_.vocab.InternRelation("R", 2);
  Value n1 = j.FreshNull();
  Value n2 = j.FreshNull();
  Value n3 = j.FreshNull();
  j.AddFact(r, std::vector<Value>{n1, n2});
  j.AddFact(r, std::vector<Value>{n1, n3});
  Instance core = ComputeCore(&ws_.arena, &ws_.vocab, j);
  EXPECT_EQ(core.NumFacts(), 1u);
}

TEST_F(CoreTest, CoreIsHomEquivalentToInput) {
  Instance j(&ws_.vocab);
  RelationId r = ws_.vocab.InternRelation("R", 2);
  Value n1 = j.FreshNull();
  Value n2 = j.FreshNull();
  j.AddFact(r, std::vector<Value>{ws_.Cv("c"), n1});
  j.AddFact(r, std::vector<Value>{n1, n2});
  j.AddFact(ws_.Fc("R", {"c", "d"}));
  Instance core = ComputeCore(&ws_.arena, &ws_.vocab, j);
  EXPECT_TRUE(HomomorphicallyEquivalent(&ws_.arena, &ws_.vocab, j, core));
  EXPECT_LE(core.NumFacts(), j.NumFacts());
}

}  // namespace
}  // namespace tgdkit
