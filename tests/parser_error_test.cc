// Exhaustive parser-error coverage: every production's failure mode must
// produce a ParseError with a useful message (never a crash, never a
// silent mis-parse).
#include <gtest/gtest.h>

#include "parse/parser.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

class ParserErrorTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;

  Status ParseDeps(const std::string& text) {
    Parser p(&ws_.arena, &ws_.vocab);
    auto program = p.ParseDependencies(text);
    return program.ok() ? Status::Ok() : program.status();
  }

  void ExpectError(const std::string& text, const std::string& needle) {
    Status status = ParseDeps(text);
    ASSERT_FALSE(status.ok()) << text;
    // Syntax problems surface as ParseError; well-formedness problems
    // found by the validators surface as InvalidArgument.
    EXPECT_TRUE(status.code() == Status::Code::kParseError ||
                status.code() == Status::Code::kInvalidArgument)
        << text << "\n" << status.ToString();
    EXPECT_NE(status.message().find(needle), std::string::npos)
        << text << "\n" << status.ToString();
  }
};

TEST_F(ParserErrorTest, MissingArrow) {
  ExpectError("P(x) Q(x) .", "expected");
}

TEST_F(ParserErrorTest, MissingParenthesis) {
  ExpectError("P(x -> Q(x) .", "expected");
}

TEST_F(ParserErrorTest, MissingDotAfterExists) {
  ExpectError("P(x) -> exists y Q(x, y) .", "expected '.'");
}

TEST_F(ParserErrorTest, DanglingConjunction) {
  ExpectError("P(x) & -> Q(x) .", "expected");
}

TEST_F(ParserErrorTest, ReservedWordAsVariable) {
  ExpectError("P(exists) -> Q(x) .", "reserved word");
}

TEST_F(ParserErrorTest, SoWithoutBraces) {
  ExpectError("so exists f P(x) -> Q(f(x)) .", "expected");
}

TEST_F(ParserErrorTest, SoDeclaredFunctionUnused) {
  ExpectError("so exists f, g { P(x) -> Q(f(x)) } .", "never used");
}

TEST_F(ParserErrorTest, SoFunctionArityConflict) {
  ExpectError("so exists f { P(x, y) -> Q(f(x), f(x, y)) } .", "arity");
}

TEST_F(ParserErrorTest, SoBareIdentifierNotEquality) {
  // A bare identifier in an SO body must start an equality.
  ExpectError("so exists f { x -> Q(f(x)) } .", "expected '='");
}

TEST_F(ParserErrorTest, NestedUnclosedBracket) {
  ExpectError("nested P(x) -> exists y . Q(y) & [ R(x) -> S(y) .",
              "expected ']'");
}

TEST_F(ParserErrorTest, NestedExistentialInChildBody) {
  // Grammar: child bodies may only use universals (X variables).
  ExpectError(
      "nested P(x) -> exists y . Q(y) & [ R(x, y) -> S(x) ] .",
      "not a universal");
}

TEST_F(ParserErrorTest, NestedExistentialReuse) {
  ExpectError(
      "nested P(x) -> exists y . Q(y) &"
      " [ R(x, z) -> exists y . S(y) ] .",
      "renamed apart");
}

TEST_F(ParserErrorTest, HenkinMissingBrace) {
  ExpectError("henkin forall x ; exists y(x) } P(x) -> Q(y) .", "expected");
}

TEST_F(ParserErrorTest, HenkinUnknownQuantifierKeyword) {
  ExpectError("henkin { every x } P(x) -> Q(x) .",
              "expected 'forall' or 'exists'");
}

TEST_F(ParserErrorTest, HenkinExistentialUsedInBody) {
  ExpectError("henkin { forall x ; exists y(x) } P(x, y) -> Q(y) .",
              "not a universal");
}

TEST_F(ParserErrorTest, HenkinDependencyOnUndeclared) {
  // z never declared as a universal: the quantifier mentions an unknown
  // variable.
  ExpectError("henkin { forall x ; exists y(z) } P(x) -> Q(y) .",
              "undeclared");
}

TEST_F(ParserErrorTest, RelationArityConflictAcrossStatements) {
  ExpectError("P(x) -> Q(x) .\nQ(x, y) -> R(x) .", "arity");
}

TEST_F(ParserErrorTest, HeadVariableNotQuantified) {
  ExpectError("P(x) -> Mystery(x, ghost) .", "neither universal");
}

TEST_F(ParserErrorTest, ExistentialAlsoInBody) {
  ExpectError("P(x, y) -> exists y . Q(x, y) .", "occurs in tgd body");
}

TEST_F(ParserErrorTest, LabelWithoutDependency) {
  ExpectError("lonely: .", "expected");
}

TEST_F(ParserErrorTest, InstanceErrorsSurfaceLocations) {
  Parser p(&ws_.arena, &ws_.vocab);
  Instance inst(&ws_.vocab);
  Status status = p.ParseInstanceInto("R(a).\nR(b, c).", &inst);
  ASSERT_FALSE(status.ok());
  EXPECT_NE(status.message().find("line 2"), std::string::npos);
  EXPECT_NE(status.message().find("arity"), std::string::npos);
}

TEST_F(ParserErrorTest, QueryMissingTurnstile) {
  Parser p(&ws_.arena, &ws_.vocab);
  auto q = p.ParseQuery("ans(x) R(x).");
  ASSERT_FALSE(q.ok());
  EXPECT_EQ(q.status().code(), Status::Code::kParseError);
}

TEST_F(ParserErrorTest, QueryTrailingGarbage) {
  Parser p(&ws_.arena, &ws_.vocab);
  auto q = p.ParseQuery("ans(x) :- R(x). extra");
  ASSERT_FALSE(q.ok());
  EXPECT_NE(q.status().message().find("trailing"), std::string::npos);
}

TEST_F(ParserErrorTest, GoodInputAfterErrorStateIsIndependent) {
  // A failed parse must not poison the parser for subsequent calls.
  Parser p(&ws_.arena, &ws_.vocab);
  EXPECT_FALSE(p.ParseDependencies("P(x ->").ok());
  auto ok = p.ParseDependencies("P(x) -> Q(x) .");
  EXPECT_TRUE(ok.ok()) << ok.status().ToString();
}

}  // namespace
}  // namespace tgdkit
