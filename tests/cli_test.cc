// Tests for the command-line driver (src/cli).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "cli/cli.h"

namespace tgdkit {
namespace {

/// Writes `content` to a unique temp file; removed on destruction.
class TempFile {
 public:
  TempFile(const std::string& tag, const std::string& content) {
    static int counter = 0;
    path_ = testing::TempDir() + "/tgdkit_cli_" + tag + "_" +
            std::to_string(counter++) + ".txt";
    std::ofstream out(path_);
    out << content;
  }
  ~TempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun RunTool(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  int code = RunCli(args, out, err);
  return {code, out.str(), err.str()};
}

TEST(CliTest, NoArgsPrintsUsage) {
  CliRun run = RunTool({});
  EXPECT_EQ(run.code, 1);
  EXPECT_NE(run.err.find("usage:"), std::string::npos);
}

TEST(CliTest, UnknownCommandPrintsUsage) {
  CliRun run = RunTool({"frobnicate"});
  EXPECT_EQ(run.code, 1);
}

TEST(CliTest, MissingFileReportsError) {
  CliRun run = RunTool({"classify", "/nonexistent/deps.tgd"});
  EXPECT_EQ(run.code, 2);
  EXPECT_NE(run.err.find("cannot open"), std::string::npos);
}

TEST(CliTest, ClassifyReportsBothFigures) {
  TempFile deps("classify",
                "mine: Emp(e, d) -> exists m . Mgr(e, m) .\n"
                "so exists fdm { Emp(e, d) -> DM(e, fdm(d)) } .\n");
  CliRun run = RunTool({"classify", deps.path()});
  EXPECT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("mine (tgd)"), std::string::npos);
  EXPECT_NE(run.out.find("figure-1: tgd,"), std::string::npos);
  EXPECT_NE(run.out.find("figure-2:"), std::string::npos);
  EXPECT_NE(run.out.find("#2 (so-tgd)"), std::string::npos);
  EXPECT_NE(run.out.find("chase termination (critical instance): PROVEN"),
            std::string::npos);
}

TEST(CliTest, ClassifyMembershipRowsArePrefixStableByteForByte) {
  // The membership row only ever APPENDS new classes: adding
  // triangularly-guarded must leave the pre-extension row a byte-exact
  // prefix of the new one. Pin the full rows for the old corpus shapes.
  TempFile deps("rows",
                "mine: Emp(e, d) -> exists m . Mgr(e, m) .\n"
                "full: E(x, y) & E(y, z) -> E(x, z) .\n"
                "none: E(x, y) & E(y, z) -> exists w . E(z, w) .\n");
  CliRun run = RunTool({"classify", deps.path()});
  EXPECT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("  figure-2: weakly-acyclic,linear,guarded,"
                         "weakly-guarded,sticky,sticky-join,"
                         "triangularly-guarded\n"),
            std::string::npos)
      << run.out;
  EXPECT_NE(run.out.find("  figure-2: full,weakly-acyclic,weakly-guarded,"
                         "triangularly-guarded\n"),
            std::string::npos)
      << run.out;
  // A member of nothing renders an empty row, exactly as before.
  EXPECT_NE(run.out.find("  figure-2: \n"), std::string::npos) << run.out;
  // Per-statement complexity lines ride along as '#' annotations.
  EXPECT_NE(run.out.find("  # complexity: polynomial (rank 1:"),
            std::string::npos)
      << run.out;
  EXPECT_NE(run.out.find("  # complexity: exponential (generating cycle "
                         "E.0 -*-> E.1 -> E.0)"),
            std::string::npos)
      << run.out;
  // ... and the merged program gets a structural complexity line.
  EXPECT_NE(run.out.find("chase complexity (structural): "),
            std::string::npos)
      << run.out;
}

TEST(CliTest, ClassifyCertifiesTheTriangularFrontierEndToEnd) {
  // Formerly "no decidable class": every classic criterion fails, the
  // row holds exactly the new class, and each failure still carries a
  // replayable witness line.
  TempFile deps("frontier",
                "frontier: so exists fv, fp, fq {"
                " ga(x, y) -> ga(y, fv(x, y)) ;"
                " hub(x) -> link(fp(x), fq(x)) ;"
                " link(x, u) & link(u, y) -> out(x, y) } .\n");
  CliRun run = RunTool({"classify", deps.path()});
  EXPECT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("  figure-2: triangularly-guarded\n"),
            std::string::npos)
      << run.out;
  EXPECT_NE(run.out.find("# witness: not weakly-acyclic:"),
            std::string::npos);
  EXPECT_NE(run.out.find("# witness: not weakly-guarded:"),
            std::string::npos);
  EXPECT_NE(run.out.find("# witness: not sticky-join:"), std::string::npos);
  EXPECT_NE(run.out.find("# complexity: exponential"), std::string::npos);
}

TEST(CliTest, ClassifyFlagsNonTerminatingRules) {
  TempFile deps("diverge", "so exists f { P(x) -> P(f(x)) } .\n");
  CliRun run = RunTool({"classify", deps.path()});
  EXPECT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("no fixpoint within budget"), std::string::npos);
}

TEST(CliTest, ChaseProducesModel) {
  TempFile deps("chase", "Emp(e) -> exists m . Mgr(e, m) .\n");
  TempFile inst("chase", "Emp(alice). Emp(bob).\n");
  CliRun run = RunTool({"chase", deps.path(), inst.path()});
  EXPECT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("# chase fixpoint"), std::string::npos);
  EXPECT_NE(run.out.find("Mgr(alice,"), std::string::npos);
  EXPECT_NE(run.out.find("Mgr(bob,"), std::string::npos);
}

TEST(CliTest, ChaseHonorsBudgetOptions) {
  TempFile deps("budget", "so exists f { P(x) -> P(f(x)) } .\n");
  TempFile inst("budget", "P(zero).\n");
  CliRun run = RunTool({"chase", deps.path(), inst.path(), "--max-depth", "5"});
  // A budget stop is a resource exit (docs/FORMAT.md), partial result on
  // stdout.
  EXPECT_EQ(run.code, 4) << run.err;
  EXPECT_NE(run.out.find("depth-limit"), std::string::npos);
}

TEST(CliTest, CheckReportsViolationWitness) {
  TempFile deps("check", "every: Emp(e) -> exists m . Mgr(e, m) .\n");
  TempFile inst("check", "Emp(alice). Emp(bob). Mgr(alice, boss).\n");
  CliRun run = RunTool({"check", deps.path(), inst.path()});
  EXPECT_EQ(run.code, 3);  // violated
  EXPECT_NE(run.out.find("VIOLATED at e=bob"), std::string::npos);
}

TEST(CliTest, CheckSatisfiedModel) {
  TempFile deps("check2",
                "Emp(e) -> exists m . Mgr(e, m) .\n"
                "henkin { forall e ; exists m(e) } Emp(e) -> Mgr(e, m) .\n");
  TempFile inst("check2", "Emp(alice). Mgr(alice, boss).\n");
  CliRun run = RunTool({"check", deps.path(), inst.path()});
  EXPECT_EQ(run.code, 0) << run.out;
  EXPECT_EQ(run.out.find("VIOLATED"), std::string::npos);
}

TEST(CliTest, CertainAnswersQuery) {
  TempFile deps("certain",
                "Takes(s, c) -> exists k . Enrolled(s, k) .\n"
                "Enrolled(s, k) -> Student(s) .\n");
  TempFile inst("certain", "Takes(ada, logic). Takes(bob, algebra).\n");
  CliRun run = RunTool(
      {"certain", deps.path(), inst.path(), "ans(s) :- Student(s)."});
  EXPECT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("# complete"), std::string::npos);
  EXPECT_NE(run.out.find("ada"), std::string::npos);
  EXPECT_NE(run.out.find("bob"), std::string::npos);
}

TEST(CliTest, CertainBooleanQuery) {
  TempFile deps("bool", "P(x) -> Q(x) .\n");
  TempFile inst("bool", "P(a).\n");
  CliRun yes = RunTool({"certain", deps.path(), inst.path(), "ans() :- Q(x)."});
  EXPECT_EQ(yes.code, 0);
  EXPECT_NE(yes.out.find("true"), std::string::npos);
  CliRun no = RunTool({"certain", deps.path(), inst.path(), "ans() :- R(x)."});
  EXPECT_EQ(no.code, 0);
  EXPECT_NE(no.out.find("false"), std::string::npos);
}

TEST(CliTest, NormalizePrintsBothAlgorithms) {
  TempFile deps("norm",
                "tau: nested Dep(d) -> exists u . Dep2(u) &"
                " [ Grp(d, g) -> Grp2(u, g) ] .\n");
  CliRun run = RunTool({"normalize", deps.path()});
  EXPECT_EQ(run.code, 0) << run.err;
  EXPECT_NE(run.out.find("nested-to-so: so exists"), std::string::npos);
  EXPECT_NE(run.out.find("nested-to-henkin (2 rules)"), std::string::npos);
}

TEST(CliTest, BadQuerySyntaxReported) {
  TempFile deps("badq", "P(x) -> Q(x) .\n");
  TempFile inst("badq", "P(a).\n");
  CliRun run = RunTool({"certain", deps.path(), inst.path(), "not a query"});
  EXPECT_EQ(run.code, 2);
  EXPECT_NE(run.err.find("query"), std::string::npos);
}

TEST(CliTest, BadDependencySyntaxReported) {
  TempFile deps("bad", "P(x) -> -> Q(x) .\n");
  CliRun run = RunTool({"classify", deps.path()});
  EXPECT_EQ(run.code, 2);
  EXPECT_NE(run.err.find("ParseError"), std::string::npos);
}

}  // namespace
}  // namespace tgdkit
