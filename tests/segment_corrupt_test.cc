// Corruption robustness for the spill segment loader: every file in
// corpus/segments/ and every programmatic mutilation of a valid segment
// must be rejected with a clean typed Status — never a crash, never rows
// reconstructed from half a file. Mirrors snapshot_corrupt_test, which
// covers the snapshot envelope the segment manifest rides in.
#include <gtest/gtest.h>

#include <cstdint>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "data/segment.h"

namespace tgdkit {
namespace {

std::string CorpusPath(const std::string& name) {
  return std::string(TGDKIT_SOURCE_DIR) + "/corpus/segments/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(SegmentCorruptTest, ValidBaselineParses) {
  auto seg = ParseSegment(ReadAll(CorpusPath("valid_v1.seg")));
  ASSERT_TRUE(seg.ok()) << seg.status().ToString();
  EXPECT_EQ(seg->relation_index, 3u);
  EXPECT_EQ(seg->arity, 2u);
  ASSERT_EQ(seg->rows(), 4u);
  EXPECT_EQ(seg->values, (std::vector<uint32_t>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(SegmentCorruptTest, SerializeParseRoundTrip) {
  std::vector<uint32_t> values = {10, 0xFFFFFFFFu, 0, 42, 7, 7};
  std::string bytes = SerializeSegment(5, 3, values.data(), values.size());
  auto seg = ParseSegment(bytes);
  ASSERT_TRUE(seg.ok()) << seg.status().ToString();
  EXPECT_EQ(seg->relation_index, 5u);
  EXPECT_EQ(seg->arity, 3u);
  EXPECT_EQ(seg->values, values);
}

TEST(SegmentCorruptTest, FileNamesAreStable) {
  EXPECT_EQ(SegmentFileName(0, 0), "r0_s0.seg");
  EXPECT_EQ(SegmentFileName(7, 123), "r7_s123.seg");
}

class SegmentCorpusRejectionTest
    : public ::testing::TestWithParam<std::pair<const char*, Status::Code>> {};

INSTANTIATE_TEST_SUITE_P(
    Files, SegmentCorpusRejectionTest,
    ::testing::Values(
        std::make_pair("truncated_payload.seg", Status::Code::kDataLoss),
        std::make_pair("truncated_header.seg", Status::Code::kDataLoss),
        std::make_pair("bitflip_payload.seg", Status::Code::kDataLoss),
        std::make_pair("bad_crc.seg", Status::Code::kDataLoss),
        std::make_pair("rows_mismatch.seg", Status::Code::kDataLoss),
        std::make_pair("future_version.seg", Status::Code::kUnsupported),
        std::make_pair("wrong_magic.seg", Status::Code::kDataLoss),
        std::make_pair("empty.seg", Status::Code::kDataLoss),
        std::make_pair("garbage.seg", Status::Code::kDataLoss),
        std::make_pair("interior_garbage.seg", Status::Code::kDataLoss),
        std::make_pair("zero_arity.seg", Status::Code::kDataLoss)));

TEST_P(SegmentCorpusRejectionTest, RejectedWithTypedStatus) {
  auto [name, code] = GetParam();
  std::string bytes = ReadAll(CorpusPath(name));
  auto seg = ParseSegment(bytes);
  ASSERT_FALSE(seg.ok()) << name;
  EXPECT_EQ(seg.status().code(), code)
      << name << ": " << seg.status().ToString();
  EXPECT_FALSE(seg.status().message().empty()) << name;
}

TEST(SegmentCorruptTest, LoadOfMissingFileIsNotFound) {
  auto seg = LoadSegment(CorpusPath("does_not_exist.seg"));
  ASSERT_FALSE(seg.ok());
  EXPECT_EQ(seg.status().code(), Status::Code::kNotFound);
}

TEST(SegmentCorruptTest, LoadNamesTheFileInTheError) {
  auto seg = LoadSegment(CorpusPath("bad_crc.seg"));
  ASSERT_FALSE(seg.ok());
  EXPECT_EQ(seg.status().code(), Status::Code::kDataLoss);
  EXPECT_NE(seg.status().message().find("bad_crc.seg"), std::string::npos);
}

TEST(SegmentCorruptTest, LoadPreservesUnsupportedForVersionSkew) {
  auto seg = LoadSegment(CorpusPath("future_version.seg"));
  ASSERT_FALSE(seg.ok());
  EXPECT_EQ(seg.status().code(), Status::Code::kUnsupported);
}

TEST(SegmentCorruptTest, EveryPrefixTruncationRejectedCleanly) {
  std::string valid = ReadAll(CorpusPath("valid_v1.seg"));
  ASSERT_TRUE(ParseSegment(valid).ok());
  // No proper prefix may parse: the header pins the exact payload size,
  // so anything shorter is reported as data loss.
  for (size_t len = 0; len < valid.size(); ++len) {
    auto seg = ParseSegment(std::string_view(valid).substr(0, len));
    ASSERT_FALSE(seg.ok()) << "prefix of length " << len << " parsed";
    EXPECT_EQ(seg.status().code(), Status::Code::kDataLoss) << "len " << len;
  }
}

TEST(SegmentCorruptTest, SingleByteFlipsRejectedCleanly) {
  std::string valid = ReadAll(CorpusPath("valid_v1.seg"));
  // Flip one bit in every position: header flips break a field or the
  // magic (DataLoss; a version flip may surface as Unsupported), payload
  // flips fail the CRC. Nothing may crash, and nothing may parse.
  for (size_t pos = 0; pos < valid.size(); ++pos) {
    std::string flipped = valid;
    flipped[pos] ^= 0x10;
    auto seg = ParseSegment(flipped);
    ASSERT_FALSE(seg.ok()) << "flip at " << pos << " parsed";
    EXPECT_TRUE(seg.status().code() == Status::Code::kDataLoss ||
                seg.status().code() == Status::Code::kUnsupported)
        << "flip at " << pos << ": " << seg.status().ToString();
  }
}

TEST(SegmentCorruptTest, TrailingJunkAfterPayloadRejected) {
  std::string valid = ReadAll(CorpusPath("valid_v1.seg"));
  auto seg = ParseSegment(valid + "extra");
  ASSERT_FALSE(seg.ok());
  EXPECT_EQ(seg.status().code(), Status::Code::kDataLoss);
}

}  // namespace
}  // namespace tgdkit
