#include <gtest/gtest.h>

#include "data/instance.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

class InstanceTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;
};

TEST_F(InstanceTest, AddFactDeduplicates) {
  Instance inst(&ws_.vocab);
  EXPECT_TRUE(inst.AddFact(ws_.Fc("Emp", {"alice", "cs"})));
  EXPECT_FALSE(inst.AddFact(ws_.Fc("Emp", {"alice", "cs"})));
  EXPECT_TRUE(inst.AddFact(ws_.Fc("Emp", {"bob", "cs"})));
  EXPECT_EQ(inst.NumFacts(), 2u);
}

TEST_F(InstanceTest, ContainsChecksExactTuple) {
  Instance inst(&ws_.vocab);
  Fact f = ws_.Fc("Emp", {"alice", "cs"});
  inst.AddFact(f);
  EXPECT_TRUE(inst.Contains(f.relation, f.args));
  Fact g = ws_.Fc("Emp", {"cs", "alice"});
  EXPECT_FALSE(inst.Contains(g.relation, g.args));
}

TEST_F(InstanceTest, FreshNullsAreDistinctValues) {
  Instance inst(&ws_.vocab);
  Value n1 = inst.FreshNull();
  Value n2 = inst.FreshNull("u");
  EXPECT_TRUE(n1.is_null());
  EXPECT_TRUE(n2.is_null());
  EXPECT_NE(n1, n2);
  EXPECT_EQ(inst.NullLabel(n2.index()), "u");
  EXPECT_NE(n1, ws_.Cv("alice"));
}

TEST_F(InstanceTest, NullAndConstantDoNotCollide) {
  Instance inst(&ws_.vocab);
  Value c = ws_.Cv("x");
  Value n = inst.FreshNull();
  // Same underlying index is possible; values must still differ.
  EXPECT_TRUE(c.is_constant());
  EXPECT_TRUE(n.is_null());
  EXPECT_NE(c, n);
}

TEST_F(InstanceTest, PositionIndexFindsRows) {
  Instance inst(&ws_.vocab);
  inst.AddFact(ws_.Fc("Emp", {"alice", "cs"}));
  inst.AddFact(ws_.Fc("Emp", {"bob", "cs"}));
  inst.AddFact(ws_.Fc("Emp", {"carol", "math"}));
  RelationId emp = ws_.vocab.FindRelation("Emp");
  EXPECT_EQ(inst.RowsWithValue(emp, 1, ws_.Cv("cs")).size(), 2u);
  EXPECT_EQ(inst.RowsWithValue(emp, 1, ws_.Cv("math")).size(), 1u);
  EXPECT_EQ(inst.RowsWithValue(emp, 0, ws_.Cv("cs")).size(), 0u);
  EXPECT_EQ(inst.RowsWithValue(emp, 1, ws_.Cv("physics")).size(), 0u);
}

TEST_F(InstanceTest, TupleAccess) {
  Instance inst(&ws_.vocab);
  inst.AddFact(ws_.Fc("R", {"a", "b"}));
  RelationId r = ws_.vocab.FindRelation("R");
  auto t = inst.Tuple(r, 0);
  ASSERT_EQ(t.size(), 2u);
  EXPECT_EQ(t[0], ws_.Cv("a"));
  EXPECT_EQ(t[1], ws_.Cv("b"));
}

TEST_F(InstanceTest, ActiveDomainCollectsDistinctValues) {
  Instance inst(&ws_.vocab);
  inst.AddFact(ws_.Fc("R", {"a", "b"}));
  inst.AddFact(ws_.Fc("S", {"b", "c"}));
  Value n = inst.FreshNull();
  RelationId s = ws_.vocab.FindRelation("S");
  inst.AddFact(s, std::vector<Value>{ws_.Cv("a"), n});
  EXPECT_EQ(inst.ActiveDomain().size(), 4u);  // a, b, c, null
}

TEST_F(InstanceTest, AllFactsRoundTrips) {
  Instance inst(&ws_.vocab);
  inst.AddFact(ws_.Fc("R", {"a", "b"}));
  inst.AddFact(ws_.Fc("S", {"c"}));
  std::vector<Fact> facts = inst.AllFacts();
  ASSERT_EQ(facts.size(), 2u);
  Instance copy(&ws_.vocab);
  for (const Fact& f : facts) copy.AddFact(f);
  EXPECT_EQ(copy.ToString(), inst.ToString());
}

TEST_F(InstanceTest, RemoveFactsRebuilds) {
  Instance inst(&ws_.vocab);
  inst.AddFact(ws_.Fc("R", {"a", "b"}));
  inst.AddFact(ws_.Fc("R", {"c", "d"}));
  RelationId r = ws_.vocab.FindRelation("R");
  Value a = ws_.Cv("a");
  inst.RemoveFacts([&](const Fact& f) { return f.args[0] != a; });
  EXPECT_EQ(inst.NumFacts(), 1u);
  EXPECT_TRUE(inst.Contains(r, std::vector<Value>{ws_.Cv("c"), ws_.Cv("d")}));
}

TEST_F(InstanceTest, ToStringIsSortedAndStable) {
  Instance inst(&ws_.vocab);
  inst.AddFact(ws_.Fc("B", {"x"}));
  inst.AddFact(ws_.Fc("A", {"y"}));
  EXPECT_EQ(inst.ToString(), "A(y)\nB(x)\n");
}

TEST_F(InstanceTest, CopyFactsPreservesNullSpace) {
  Instance src(&ws_.vocab);
  Value n = src.FreshNull();
  RelationId r = ws_.vocab.InternRelation("R", 1);
  src.AddFact(r, std::vector<Value>{n});
  Instance dst(&ws_.vocab);
  CopyFacts(src, &dst);
  EXPECT_EQ(dst.NumFacts(), 1u);
  EXPECT_EQ(dst.num_nulls(), 1u);
}

}  // namespace
}  // namespace tgdkit
