// Tests for conjunctive-query minimization (Chandra–Merlin cores) and
// tgd violation witnesses.
#include <gtest/gtest.h>

#include "mc/model_check.h"
#include "parse/parser.h"
#include "query/query.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

class MinimizeTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;

  ConjunctiveQuery ParseQ(const std::string& text) {
    Parser p(&ws_.arena, &ws_.vocab);
    auto q = p.ParseQuery(text);
    EXPECT_TRUE(q.ok()) << q.status().ToString();
    return *q;
  }
};

TEST_F(MinimizeTest, DropsSubsumedAtom) {
  // R(x,y) & R(x,z): z is unconstrained, the second atom folds onto the
  // first.
  ConjunctiveQuery q = ParseQ("ans(x) :- R(x, y), R(x, z).");
  ConjunctiveQuery min = MinimizeQuery(&ws_.arena, &ws_.vocab, q);
  EXPECT_EQ(min.atoms.size(), 1u);
  EXPECT_EQ(min.free_vars, q.free_vars);
}

TEST_F(MinimizeTest, KeepsGenuineJoin) {
  ConjunctiveQuery q = ParseQ("ans(x, z) :- R(x, y), S(y, z).");
  ConjunctiveQuery min = MinimizeQuery(&ws_.arena, &ws_.vocab, q);
  EXPECT_EQ(min.atoms.size(), 2u);
}

TEST_F(MinimizeTest, FreeVariablesBlockFolding) {
  // Without free vars, R(x,y) & R(y,z) folds? A path of length 2 maps
  // into a path of length 1 only if endpoints merge — no hom into a
  // single edge unless it is a loop. It does NOT fold.
  ConjunctiveQuery q = ParseQ("ans() :- R(x, y), R(y, z).");
  ConjunctiveQuery min = MinimizeQuery(&ws_.arena, &ws_.vocab, q);
  EXPECT_EQ(min.atoms.size(), 2u);
  // But two independent edges DO fold onto one.
  ConjunctiveQuery q2 = ParseQ("ans() :- R(x, y), R(u, v).");
  ConjunctiveQuery min2 = MinimizeQuery(&ws_.arena, &ws_.vocab, q2);
  EXPECT_EQ(min2.atoms.size(), 1u);
}

TEST_F(MinimizeTest, ConstantsRespected) {
  // R(x, "a") & R(x, y): folding y onto "a" is allowed (y unconstrained).
  ConjunctiveQuery q = ParseQ(R"(ans(x) :- R(x, "a"), R(x, y).)");
  ConjunctiveQuery min = MinimizeQuery(&ws_.arena, &ws_.vocab, q);
  EXPECT_EQ(min.atoms.size(), 1u);
  // But distinct constants never merge.
  ConjunctiveQuery q2 = ParseQ(R"(ans(x) :- R(x, "a"), R(x, "b").)");
  ConjunctiveQuery min2 = MinimizeQuery(&ws_.arena, &ws_.vocab, q2);
  EXPECT_EQ(min2.atoms.size(), 2u);
}

TEST_F(MinimizeTest, EquivalenceOnInstances) {
  ConjunctiveQuery q = ParseQ("ans(x) :- R(x, y), R(x, z), S(z, w).");
  ConjunctiveQuery min = MinimizeQuery(&ws_.arena, &ws_.vocab, q);
  EXPECT_LT(min.atoms.size(), q.atoms.size());
  Parser p(&ws_.arena, &ws_.vocab);
  Instance inst(&ws_.vocab);
  ASSERT_TRUE(p.ParseInstanceInto(
                   "R(a, b). R(a, c). S(c, d). R(e, f). S(b, g).", &inst)
                  .ok());
  EXPECT_EQ(Evaluate(ws_.arena, inst, q), Evaluate(ws_.arena, inst, min));
}

TEST_F(MinimizeTest, TriangleDoesNotFold) {
  ConjunctiveQuery q = ParseQ("ans() :- E(x, y), E(y, z), E(z, x).");
  ConjunctiveQuery min = MinimizeQuery(&ws_.arena, &ws_.vocab, q);
  EXPECT_EQ(min.atoms.size(), 3u);
}

TEST_F(MinimizeTest, ViolationWitnessReported) {
  Tgd tgd;
  tgd.body = {ws_.A("Emp", {ws_.V("e")})};
  tgd.head = {ws_.A("Mgr", {ws_.V("e"), ws_.V("m")})};
  tgd.exist_vars = {ws_.Vid("m")};
  Instance inst(&ws_.vocab);
  inst.AddFact(ws_.Fc("Emp", {"alice"}));
  inst.AddFact(ws_.Fc("Emp", {"bob"}));
  inst.AddFact(ws_.Fc("Mgr", {"alice", "boss"}));
  auto violation = FindTgdViolation(ws_.arena, inst, tgd);
  ASSERT_TRUE(violation.has_value());
  EXPECT_EQ(violation->trigger.at(ws_.Vid("e")), ws_.Cv("bob"));
  EXPECT_EQ(violation->ToString(ws_.vocab, inst), "e=bob");
}

TEST_F(MinimizeTest, NoViolationOnModel) {
  Tgd tgd;
  tgd.body = {ws_.A("P", {ws_.V("x")})};
  tgd.head = {ws_.A("Q", {ws_.V("x")})};
  Instance inst(&ws_.vocab);
  inst.AddFact(ws_.Fc("P", {"a"}));
  inst.AddFact(ws_.Fc("Q", {"a"}));
  EXPECT_FALSE(FindTgdViolation(ws_.arena, inst, tgd).has_value());
}

}  // namespace
}  // namespace tgdkit
