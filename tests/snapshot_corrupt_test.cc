// Corruption robustness for the snapshot loader: every file in
// corpus/snapshots/ and every programmatic mutilation of a valid snapshot
// must be rejected with a clean typed Status — never a crash, never an
// engine restored from half a file.
#include <gtest/gtest.h>

#include <fstream>
#include <sstream>
#include <string>

#include "base/fileio.h"
#include "snapshot/snapshot.h"

namespace tgdkit {
namespace {

std::string CorpusPath(const std::string& name) {
  return std::string(TGDKIT_SOURCE_DIR) + "/corpus/snapshots/" + name;
}

std::string ReadAll(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

TEST(SnapshotCorruptTest, ValidBaselineParses) {
  auto snap = ParseChaseSnapshot(ReadAll(CorpusPath("valid_chase_v1.snap")));
  ASSERT_TRUE(snap.ok()) << snap.status().ToString();
  EXPECT_GT(snap->state->rounds, 0u);
  EXPECT_GT(snap->state->instance.NumFacts(), 0u);
}

class CorpusRejectionTest
    : public ::testing::TestWithParam<std::pair<const char*, Status::Code>> {};

INSTANTIATE_TEST_SUITE_P(
    Files, CorpusRejectionTest,
    ::testing::Values(
        std::make_pair("truncated_half.snap", Status::Code::kDataLoss),
        std::make_pair("truncated_envelope.snap", Status::Code::kDataLoss),
        std::make_pair("bitflip_payload.snap", Status::Code::kDataLoss),
        std::make_pair("torn_write.snap", Status::Code::kDataLoss),
        std::make_pair("future_version.snap", Status::Code::kUnsupported),
        std::make_pair("wrong_magic.snap", Status::Code::kDataLoss),
        std::make_pair("empty.snap", Status::Code::kDataLoss),
        std::make_pair("garbage.snap", Status::Code::kDataLoss)));

TEST_P(CorpusRejectionTest, RejectedWithTypedStatus) {
  auto [name, code] = GetParam();
  std::string bytes = ReadAll(CorpusPath(name));
  auto snap = ParseChaseSnapshot(bytes);
  ASSERT_FALSE(snap.ok()) << name;
  EXPECT_EQ(snap.status().code(), code) << name << ": "
                                        << snap.status().ToString();
  EXPECT_FALSE(snap.status().message().empty()) << name;
}

TEST(SnapshotCorruptTest, LoadOfMissingFileIsNotFound) {
  auto snap = LoadChaseSnapshot(CorpusPath("does_not_exist.snap"));
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), Status::Code::kNotFound);
}

TEST(SnapshotCorruptTest, EveryPrefixTruncationRejectedCleanly) {
  std::string valid = ReadAll(CorpusPath("valid_chase_v1.snap"));
  ASSERT_TRUE(ParseChaseSnapshot(valid).ok());
  // No proper prefix of a valid snapshot may parse: the envelope pins the
  // exact payload length, so anything shorter is reported as data loss.
  for (size_t len = 0; len < valid.size(); ++len) {
    auto snap = ParseChaseSnapshot(std::string_view(valid).substr(0, len));
    ASSERT_FALSE(snap.ok()) << "prefix of length " << len << " parsed";
    EXPECT_EQ(snap.status().code(), Status::Code::kDataLoss) << "len " << len;
  }
}

TEST(SnapshotCorruptTest, SingleByteFlipsRejectedCleanly) {
  std::string valid = ReadAll(CorpusPath("valid_chase_v1.snap"));
  // Flip one bit in every position: either the envelope stops matching or
  // the CRC does. Nothing may crash, and nothing may parse. The envelope
  // header is not CRC-covered, so a flip there may surface as the typed
  // header error instead of DataLoss: Unsupported (version digit) or
  // InvalidArgument (kind word); everything else must be DataLoss.
  for (size_t pos = 0; pos < valid.size(); ++pos) {
    std::string flipped = valid;
    flipped[pos] ^= 0x10;
    auto snap = ParseChaseSnapshot(flipped);
    ASSERT_FALSE(snap.ok()) << "flip at " << pos << " parsed";
    EXPECT_TRUE(snap.status().code() == Status::Code::kDataLoss ||
                snap.status().code() == Status::Code::kUnsupported ||
                snap.status().code() == Status::Code::kInvalidArgument)
        << "flip at " << pos << ": " << snap.status().ToString();
  }
}

TEST(SnapshotCorruptTest, TrailingJunkAfterPayloadRejected) {
  std::string valid = ReadAll(CorpusPath("valid_chase_v1.snap"));
  auto snap = ParseChaseSnapshot(valid + "extra");
  ASSERT_FALSE(snap.ok());
  EXPECT_EQ(snap.status().code(), Status::Code::kDataLoss);
}

TEST(SnapshotCorruptTest, AllKindsRejectCorruptEnvelopeAlike) {
  // The restricted and PCP parsers share the envelope checks.
  std::string garbage = ReadAll(CorpusPath("garbage.snap"));
  EXPECT_EQ(ParseRestrictedSnapshot(garbage).status().code(),
            Status::Code::kDataLoss);
  EXPECT_EQ(ParsePcpCheckpoint(garbage).status().code(),
            Status::Code::kDataLoss);
}

}  // namespace
}  // namespace tgdkit
