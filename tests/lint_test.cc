// Tests for the lint checks (src/analyze/lint) and the `tgdkit lint`
// command: each check firing on a crafted program, severity gating of the
// exit code, and the three output formats.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>

#include "analyze/lint.h"
#include "cli/cli.h"
#include "parse/parser.h"
#include "tests/test_util.h"

namespace tgdkit {
namespace {

class LintTest : public ::testing::Test {
 protected:
  TestWorkspace ws_;

  LintReport Lint(const std::string& text) {
    Parser p(&ws_.arena, &ws_.vocab);
    auto program = p.ParseDependenciesLenient(text);
    EXPECT_TRUE(program.ok()) << program.status().ToString();
    return LintProgram(&ws_.arena, &ws_.vocab, *program);
  }

  static const LintDiagnostic* Find(const LintReport& report,
                                    const std::string& check) {
    for (const LintDiagnostic& d : report.diagnostics) {
      if (d.check == check) return &d;
    }
    return nullptr;
  }
};

TEST_F(LintTest, CleanProgramHasNoDiagnostics) {
  LintReport report = Lint("E(x, y) & E(y, z) -> E(x, z) .");
  EXPECT_TRUE(report.diagnostics.empty());
  EXPECT_FALSE(report.HasAtLeast(LintSeverity::kNote));
}

TEST_F(LintTest, NonRangeRestrictedHeadIsAnError) {
  LintReport report = Lint("P(a) -> Q(a, b) .");
  const LintDiagnostic* d = Find(report, "non-range-restricted-head");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, LintSeverity::kError);
  EXPECT_EQ(d->line, 1u);
  EXPECT_NE(d->message.find("b"), std::string::npos);
  // The underlying validation failure is folded into this diagnostic, not
  // reported twice.
  EXPECT_EQ(Find(report, "invalid-statement"), nullptr);
  EXPECT_TRUE(report.HasAtLeast(LintSeverity::kError));
}

TEST_F(LintTest, NoDecidableClassWarningEmbedsAllThreeWitnesses) {
  LintReport report =
      Lint("bad : E(x, y) & E(y, z) -> exists w . E(z, w) .");
  const LintDiagnostic* d = Find(report, "no-decidable-class");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, LintSeverity::kWarning);
  EXPECT_NE(d->message.find("cycle"), std::string::npos) << d->message;
  EXPECT_NE(d->message.find("no body atom covers"), std::string::npos)
      << d->message;
  EXPECT_NE(d->message.find("marked variable"), std::string::npos)
      << d->message;
}

TEST_F(LintTest, TriangularGuardednessDowngradesTheWarningToANote) {
  // Every classic class fails, but TG certifies decidability: the
  // diagnostic survives (with all three witnesses) at note severity.
  LintReport report = Lint(
      "frontier: so exists fv, fp, fq {"
      " ga(x, y) -> ga(y, fv(x, y)) ;"
      " hub(x) -> link(fp(x), fq(x)) ;"
      " link(x, u) & link(u, y) -> out(x, y) } .");
  const LintDiagnostic* d = Find(report, "no-decidable-class");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, LintSeverity::kNote);
  EXPECT_NE(d->message.find("still decidable"), std::string::npos)
      << d->message;
  EXPECT_NE(d->message.find("triangularly-guarded"), std::string::npos)
      << d->message;
  EXPECT_FALSE(report.HasAtLeast(LintSeverity::kWarning));
}

TEST_F(LintTest, UndecidableProgramsAlsoCarryTheTriangleWitness) {
  LintReport report =
      Lint("bad : E(x, y) & E(y, z) -> exists w . E(z, w) .");
  const LintDiagnostic* d = Find(report, "no-decidable-class");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, LintSeverity::kWarning);
  EXPECT_NE(d->message.find("not triangularly guarded"), std::string::npos)
      << d->message;
  EXPECT_NE(d->message.find("triangular component"), std::string::npos)
      << d->message;
}

TEST_F(LintTest, ChaseComplexityNoteOnlyWhenNullsAreMinted) {
  // A null-minting program gets the tier note, pinned to the rule that
  // owns the first special edge.
  LintReport report = Lint("grow : e(x, y) -> exists z . e(y, z) .");
  const LintDiagnostic* d = Find(report, "chase-complexity");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, LintSeverity::kNote);
  EXPECT_EQ(d->line, 1u);
  EXPECT_NE(d->message.find("exponential"), std::string::npos)
      << d->message;
  // A full program never mints nulls: no note (and no diagnostics at all
  // — pinned by CleanProgramHasNoDiagnostics above).
  LintReport full = Lint("E(x, y) & E(y, z) -> E(x, z) .");
  EXPECT_EQ(Find(full, "chase-complexity"), nullptr);
}

TEST_F(LintTest, DecidableProgramsDoNotWarn) {
  // Not weakly acyclic, but weakly guarded — one decidable class suffices.
  LintReport report = Lint("P(x) -> exists y . P(y) & R(x, y) .");
  EXPECT_EQ(Find(report, "no-decidable-class"), nullptr);
}

TEST_F(LintTest, SharedSkolemFunctionAcrossStatements) {
  LintReport report = Lint(
      "so exists f { P(x) -> Q(f(x)) } .\n"
      "so exists f { R(x) -> S(f(x)) } .");
  const LintDiagnostic* d = Find(report, "shared-skolem-function");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, LintSeverity::kWarning);
  EXPECT_EQ(d->line, 2u);  // pinned to the second statement
  EXPECT_NE(d->message.find("f"), std::string::npos);
}

TEST_F(LintTest, UnusedBodyVariableIsANote) {
  LintReport report = Lint("Emp(e, d) -> exists m . Mgr(e, m) .");
  const LintDiagnostic* d = Find(report, "unused-body-variable");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, LintSeverity::kNote);
  EXPECT_NE(d->message.find("d"), std::string::npos);
  EXPECT_TRUE(report.HasAtLeast(LintSeverity::kNote));
  EXPECT_FALSE(report.HasAtLeast(LintSeverity::kWarning));
}

TEST_F(LintTest, JoinedVariablesAreNotUnused) {
  LintReport report = Lint("P(x, y) & Q(y, z) -> R(x, z) .");
  EXPECT_EQ(Find(report, "unused-body-variable"), nullptr);
}

TEST_F(LintTest, DuplicateAtomIsANote) {
  LintReport report = Lint("P(x, y) & P(x, y) -> R(x, y) .");
  const LintDiagnostic* d = Find(report, "duplicate-atom");
  ASSERT_NE(d, nullptr);
  EXPECT_EQ(d->severity, LintSeverity::kNote);
}

TEST_F(LintTest, DiagnosticsSortedBySpan) {
  LintReport report = Lint(
      "P(a) -> Q(a, b) .\n"
      "R(x, y) & R(x, y) -> S(x, y) .");
  ASSERT_GE(report.diagnostics.size(), 2u);
  for (size_t i = 1; i < report.diagnostics.size(); ++i) {
    EXPECT_LE(report.diagnostics[i - 1].line, report.diagnostics[i].line);
  }
}

TEST_F(LintTest, RenderedFormatsCarryTheDiagnostic) {
  LintReport report = Lint("P(a) -> Q(a, b) .");
  std::string text = RenderLintText("deps.tgd", report);
  EXPECT_NE(text.find("deps.tgd:1:1: error [non-range-restricted-head]"),
            std::string::npos)
      << text;
  std::string json = RenderLintJson("deps.tgd", report);
  EXPECT_NE(json.find("\"check\": \"non-range-restricted-head\""),
            std::string::npos)
      << json;
  EXPECT_NE(json.find("\"severity\": \"error\""), std::string::npos);
  std::string sarif = RenderLintSarif("deps.tgd", report);
  EXPECT_NE(sarif.find("\"version\": \"2.1.0\""), std::string::npos) << sarif;
  EXPECT_NE(sarif.find("\"ruleId\": \"non-range-restricted-head\""),
            std::string::npos);
  EXPECT_NE(sarif.find("\"startLine\": 1"), std::string::npos);
}

TEST_F(LintTest, JsonEscapesSpecialCharacters) {
  // Relation names cannot carry quotes, but messages embed ToString'd
  // statements; make sure the renderer survives a program whose witness
  // text is nontrivial, producing balanced quotes.
  LintReport report = Lint("bad : E(x, y) & E(y, z) -> exists w . E(z, w) .");
  std::string json = RenderLintJson("d.tgd", report);
  int quotes = 0;
  for (size_t i = 0; i < json.size(); ++i) {
    if (json[i] == '"' && (i == 0 || json[i - 1] != '\\')) ++quotes;
  }
  EXPECT_EQ(quotes % 2, 0) << json;
}

// --- CLI integration --------------------------------------------------------

class LintCliTempFile {
 public:
  LintCliTempFile(const std::string& tag, const std::string& content) {
    static int counter = 0;
    path_ = testing::TempDir() + "/tgdkit_lint_" + tag + "_" +
            std::to_string(counter++) + ".tgd";
    std::ofstream out(path_);
    out << content;
  }
  ~LintCliTempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct LintCliRun {
  int code;
  std::string out;
  std::string err;
};

LintCliRun RunLint(const std::vector<std::string>& args) {
  std::ostringstream out, err;
  int code = RunCli(args, out, err);
  return {code, out.str(), err.str()};
}

constexpr char kBadProgram[] =
    "bad : E(x, y) & E(y, z) -> exists w . E(z, w) .\n"
    "orphan : P(a) -> Q(a, b) .\n";

TEST(LintCliTest, CleanProgramExitsZero) {
  LintCliTempFile deps("clean", "E(x, y) & E(y, z) -> E(x, z) .\n");
  LintCliRun run = RunLint({"lint", deps.path()});
  EXPECT_EQ(run.code, 0) << run.err;
  EXPECT_TRUE(run.out.empty()) << run.out;
}

TEST(LintCliTest, SeverityGatesTheExitCode) {
  LintCliTempFile deps("gate", kBadProgram);
  // Default --fail-on=error: the range error alone trips it. Findings at
  // or above the gate are a negative verdict: exit 3 (docs/FORMAT.md).
  EXPECT_EQ(RunLint({"lint", deps.path()}).code, 3);
  EXPECT_EQ(RunLint({"lint", deps.path(), "--fail-on=warning"}).code, 3);
  EXPECT_EQ(RunLint({"lint", deps.path(), "--fail-on", "note"}).code, 3);
  // Notes alone pass --fail-on=warning but trip --fail-on=note.
  LintCliTempFile notes("notes", "Emp(e, d) -> exists m . Mgr(e, m) .\n");
  EXPECT_EQ(RunLint({"lint", notes.path(), "--fail-on=warning"}).code, 0);
  EXPECT_EQ(RunLint({"lint", notes.path(), "--fail-on=note"}).code, 3);
}

TEST(LintCliTest, TextFormatPinsFileLineColumn) {
  LintCliTempFile deps("text", kBadProgram);
  LintCliRun run = RunLint({"lint", deps.path()});
  EXPECT_NE(run.out.find(deps.path() + ":1:1: warning [no-decidable-class]"),
            std::string::npos)
      << run.out;
  EXPECT_NE(
      run.out.find(deps.path() + ":2:1: error [non-range-restricted-head]"),
      std::string::npos)
      << run.out;
}

TEST(LintCliTest, JsonAndSarifFormats) {
  LintCliTempFile deps("fmt", kBadProgram);
  LintCliRun json = RunLint({"lint", deps.path(), "--format=json"});
  EXPECT_EQ(json.code, 3);
  EXPECT_NE(json.out.find("\"diagnostics\""), std::string::npos) << json.out;
  LintCliRun sarif = RunLint({"lint", deps.path(), "--format", "sarif"});
  EXPECT_EQ(sarif.code, 3);
  EXPECT_NE(sarif.out.find("\"$schema\""), std::string::npos) << sarif.out;
  EXPECT_NE(sarif.out.find("\"results\""), std::string::npos);
  LintCliRun bad = RunLint({"lint", deps.path(), "--format=yaml"});
  EXPECT_NE(bad.code, 0);
  EXPECT_NE(bad.err.find("must be text, json or sarif"), std::string::npos);
}

TEST(LintCliTest, MissingFileExitsTwo) {
  LintCliRun run = RunLint({"lint", "/nonexistent/deps.tgd"});
  EXPECT_EQ(run.code, 2);
}

}  // namespace
}  // namespace tgdkit
