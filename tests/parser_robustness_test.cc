// Robustness corpus for the parser, driven end-to-end through RunCli:
// truncated files, unbalanced parentheses, deeply nested terms, overlong
// identifiers, and non-UTF8 bytes must all surface as a clean ParseError
// (exit code 2, "ParseError" on stderr) — never a crash, hang, or
// silent mis-parse.
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.h"

namespace tgdkit {
namespace {

class RobustTempFile {
 public:
  RobustTempFile(const std::string& tag, const std::string& content) {
    static int counter = 0;
    path_ = testing::TempDir() + "/tgdkit_robust_" + tag + "_" +
            std::to_string(counter++) + ".txt";
    std::ofstream out(path_, std::ios::binary);
    out << content;
  }
  ~RobustTempFile() { std::remove(path_.c_str()); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

struct CliRun {
  int code;
  std::string out;
  std::string err;
};

CliRun RunWithDeps(const std::string& deps_content) {
  RobustTempFile deps("deps", deps_content);
  RobustTempFile inst("inst", "P(a) .\n");
  std::ostringstream out, err;
  int code = RunCli({"chase", deps.path(), inst.path()}, out, err);
  return {code, out.str(), err.str()};
}

CliRun RunWithInstance(const std::string& instance_content) {
  RobustTempFile deps("deps", "P(x) -> Q(x) .\n");
  RobustTempFile inst("inst", instance_content);
  std::ostringstream out, err;
  int code = RunCli({"chase", deps.path(), inst.path()}, out, err);
  return {code, out.str(), err.str()};
}

/// Every malformed input must exit 2 with an error diagnostic on stderr —
/// the parser rejects it cleanly instead of crashing or mis-parsing.
void ExpectCleanParseFailure(const CliRun& run, const std::string& what) {
  EXPECT_EQ(run.code, 2) << what << "\nstderr: " << run.err;
  EXPECT_NE(run.err.find("tgdkit:"), std::string::npos) << what;
  EXPECT_TRUE(run.err.find("ParseError") != std::string::npos ||
              run.err.find("InvalidArgument") != std::string::npos)
      << what << "\nstderr: " << run.err;
}

TEST(ParserRobustnessTest, TruncatedDependencyFiles) {
  // Progressive truncations of a valid rule: every prefix must fail
  // cleanly (the full rule, with the final '.', is the only valid form).
  const std::string full = "rule1: Emp(e, d) -> exists m . Mgr(e, m) .";
  for (size_t len : std::vector<size_t>{1, 5, 9, 17, 24, 31, 38,
                                        full.size() - 1}) {
    CliRun run = RunWithDeps(full.substr(0, len));
    ExpectCleanParseFailure(run, "truncated to " + std::to_string(len));
  }
}

TEST(ParserRobustnessTest, TruncatedInstanceFiles) {
  for (const char* text : {"P(", "P(a", "P(a,", "P(a)", "P(a) . Q("}) {
    CliRun run = RunWithInstance(text);
    ExpectCleanParseFailure(run, std::string("instance: ") + text);
  }
}

TEST(ParserRobustnessTest, UnbalancedParentheses) {
  for (const char* text :
       {"P(x)) -> Q(x) .", "P((x) -> Q(x) .", "P(x -> Q(x) .",
        "P(x) -> Q(x)) .", "so exists f { P(x) -> Q(f(x)) .",
        "henkin { forall e ; exists m(e } Emp(e) -> Mgr(e, m) ."}) {
    ExpectCleanParseFailure(RunWithDeps(text), text);
  }
}

TEST(ParserRobustnessTest, DeeplyNestedTermsDoNotOverflowTheStack) {
  // f(f(f(...(x)...))) with thousands of levels: either parse fine or be
  // rejected, but never crash. A recursive-descent parser without a depth
  // guard would blow the stack here.
  for (int depth : {64, 512, 4096, 20000}) {
    std::string term;
    for (int i = 0; i < depth; ++i) term += "f(";
    term += "x";
    for (int i = 0; i < depth; ++i) term += ")";
    std::string rule = "so exists f { P(x) -> Q(" + term + ") } .";
    CliRun run = RunWithDeps(rule);
    // Accept any controlled outcome: exit 0 (parsed and chased), exit 2
    // (clean diagnostic), or exit 4 (the chase hit its depth budget).
    EXPECT_TRUE(run.code == 0 || run.code == 2 || run.code == 4)
        << "depth " << depth << " exited " << run.code;
    if (run.code == 2) {
      EXPECT_NE(run.err.find("tgdkit:"), std::string::npos);
    }
  }
}

TEST(ParserRobustnessTest, OverlongIdentifiers) {
  // Megabyte-long identifiers must round-trip or fail cleanly, not crash.
  std::string big(1 << 20, 'a');
  CliRun run = RunWithDeps("P(" + big + ") -> Q(" + big + ") .");
  EXPECT_TRUE(run.code == 0 || run.code == 2) << "exited " << run.code;

  // An overlong relation name.
  std::string rel = "R" + std::string(1 << 18, 'x');
  CliRun run2 = RunWithDeps(rel + "(y) -> Q(y) .");
  EXPECT_TRUE(run2.code == 0 || run2.code == 2) << "exited " << run2.code;
}

TEST(ParserRobustnessTest, NonUtf8AndControlBytes) {
  std::vector<std::string> corpora;
  // Raw high bytes (invalid UTF-8 continuation sequences).
  corpora.push_back(std::string("P(\xff\xfe) -> Q(x) ."));
  corpora.push_back(std::string("\xc3(") + "x) -> Q(x) .");
  // NUL byte in the middle of the file.
  std::string nul = "P(x) -> Q(x) .";
  nul.insert(5, 1, '\0');
  corpora.push_back(nul);
  // A lone 0x80 and a BOM-prefixed rule.
  corpora.push_back(std::string("\x80"));
  corpora.push_back(std::string("\xef\xbb\xbfP(x) -> Q(x) ."));
  for (const std::string& text : corpora) {
    CliRun run = RunWithDeps(text);
    EXPECT_TRUE(run.code == 0 || run.code == 2)
        << "corpus entry exited " << run.code;
    if (run.code == 2) {
      EXPECT_NE(run.err.find("tgdkit:"), std::string::npos);
    }
  }
}

TEST(ParserRobustnessTest, EmptyAndWhitespaceOnlyFiles) {
  // An empty dependency program parses to zero rules; the chase of zero
  // rules is a fixpoint immediately. Must not crash either way.
  for (const char* text : {"", " ", "\n\n\n", "\t \n", "// only comments\n"}) {
    CliRun run = RunWithDeps(text);
    EXPECT_TRUE(run.code == 0 || run.code == 2)
        << "text '" << text << "' exited " << run.code;
  }
}

TEST(ParserRobustnessTest, GarbageOptionValuesDoNotCrash) {
  RobustTempFile deps("deps", "P(x) -> Q(x) .\n");
  RobustTempFile inst("inst", "P(a) .\n");
  // Missing option value.
  std::ostringstream out1, err1;
  EXPECT_EQ(RunCli({"chase", deps.path(), inst.path(), "--max-steps"},
                   out1, err1),
            1);
  EXPECT_NE(err1.str().find("missing value"), std::string::npos);
  // Unknown option.
  std::ostringstream out2, err2;
  EXPECT_EQ(RunCli({"chase", deps.path(), inst.path(), "--frobnicate"},
                   out2, err2),
            1);
  EXPECT_NE(err2.str().find("unknown option"), std::string::npos);
  // Non-numeric, trailing-junk, negative, and out-of-range values.
  for (const char* bad : {"abc", "12abc", "-5", "", " 7",
                          "99999999999999999999999999"}) {
    std::ostringstream out3, err3;
    EXPECT_EQ(RunCli({"chase", deps.path(), inst.path(), "--max-steps",
                      bad},
                     out3, err3),
              1)
        << "value '" << bad << "'";
    EXPECT_NE(err3.str().find("tgdkit:"), std::string::npos);
  }
}

}  // namespace
}  // namespace tgdkit
