// Quickstart: parse dependencies and an instance, chase, and query.
//
// Demonstrates the core tgdkit pipeline on the paper's introductory
// employee/department example.
#include <cstdio>

#include "chase/chase.h"
#include "dep/skolem.h"
#include "parse/parser.h"
#include "query/query.h"

int main() {
  using namespace tgdkit;

  Vocabulary vocab;
  TermArena arena;
  Parser parser(&arena, &vocab);

  // 1. Parse a dependency program: one tgd and one SO tgd.
  auto program = parser.ParseDependencies(R"(
    // Every employee has a manager (classic tgd).
    every_emp: Emp(e, d) -> exists m . Mgr(e, m) .

    // The department manager depends only on the department — the paper's
    // motivating dependency, expressible as an SO tgd but not as a tgd.
    dept_mgr: so exists fdm { Emp(e, d) -> DeptMgr(e, fdm(d)) } .
  )");
  if (!program.ok()) {
    std::fprintf(stderr, "parse error: %s\n",
                 program.status().ToString().c_str());
    return 1;
  }
  std::printf("parsed %zu dependencies\n", program->dependencies.size());
  for (const ParsedDependency& dep : program->dependencies) {
    if (dep.kind == ParsedDependency::Kind::kTgd) {
      std::printf("  [%s] %s\n", dep.label.c_str(),
                  ToString(arena, vocab, dep.tgd).c_str());
    } else if (dep.kind == ParsedDependency::Kind::kSo) {
      std::printf("  [%s] %s\n", dep.label.c_str(),
                  ToString(arena, vocab, dep.so).c_str());
    }
  }

  // 2. Parse a source instance.
  Instance source(&vocab);
  Status status = parser.ParseInstanceInto(R"(
    Emp(alice, cs). Emp(bob, cs). Emp(carol, math).
  )", &source);
  if (!status.ok()) {
    std::fprintf(stderr, "instance error: %s\n", status.ToString().c_str());
    return 1;
  }

  // 3. Skolemize everything into one executable rule set and chase.
  std::vector<Tgd> tgds = program->Tgds();
  SoTgd rules = TgdsToSo(&arena, &vocab, tgds);
  std::vector<SoTgd> all{rules, program->Sos()[0]};
  SoTgd merged = MergeSo(all);
  ChaseResult result = Chase(&arena, &vocab, merged, source);
  std::printf("\nchase: %s after %llu rounds, %llu facts created\n",
              ToString(result.stop_reason),
              static_cast<unsigned long long>(result.rounds),
              static_cast<unsigned long long>(result.facts_created));
  std::printf("%s\n", result.instance.ToString().c_str());

  // Note: alice and bob share a department manager null (fdm depends only
  // on d), but have distinct Mgr nulls (the tgd's Skolem term f(e, d)).

  // 4. Ask queries. Certain answers keep only null-free tuples.
  auto who_has_mgr = parser.ParseQuery("ans(e) :- Mgr(e, m).");
  if (!who_has_mgr.ok()) return 1;
  CertainAnswers answers = ComputeCertainAnswers(
      &arena, &vocab, merged, source, *who_has_mgr);
  std::printf("certain answers to 'who has a manager' (%s chase):\n",
              answers.Complete() ? "complete" : "truncated");
  for (const auto& row : answers.answers) {
    std::printf("  %s\n", vocab.ConstantName(row[0].index()).c_str());
  }
  return 0;
}
