// The decidability frontier: the triangularly-guarded class and the
// chase-complexity tiers, beyond the paper's Figure 2.
//
//  * a ruleset in NONE of the classic classes (not weakly acyclic, not
//    weakly guarded, not sticky-join) that the triangular-guardedness
//    analyzer still certifies decidable — with replayable witnesses for
//    every failed criterion;
//  * one ruleset per structural complexity tier (polynomial rank,
//    exponential, non-elementary), each tier read off the generating
//    components of the position dependency graph.
#include <cstdio>

#include "analyze/analysis.h"
#include "classify/criteria.h"
#include "parse/parser.h"

int main() {
  using namespace tgdkit;

  Vocabulary vocab;
  TermArena arena;
  Parser parser(&arena, &vocab);

  std::printf("== 1. Beyond Figure 2: the triangular frontier ==\n\n");
  auto frontier = parser.ParseDependencies(R"(
    frontier: so exists fv, fp, fq {
      ga(x, y) -> ga(y, fv(x, y)) ;
      hub(x) -> link(fp(x), fq(x)) ;
      link(x, u) & link(u, y) -> out(x, y)
    } .
  )");
  if (!frontier.ok()) {
    std::fprintf(stderr, "parse error\n");
    return 1;
  }
  ProgramAnalysis analysis = AnalyzeProgram(&arena, &vocab, *frontier);
  std::printf("memberships: %s\n",
              ToString(analysis.Membership()).c_str());
  for (const CriterionVerdict& v : analysis.verdicts) {
    if (v.holds) continue;
    std::printf("  not %s: %s\n", CriterionName(v.criterion),
                WitnessToString(arena, vocab, analysis, v).c_str());
  }
  Status replay = ReplayAllWitnesses(arena, analysis);
  std::printf("witness replay: %s\n",
              replay.ok() ? "all witnesses re-validate" : "FAILED");
  std::printf("chase complexity: %s\n\n",
              ComplexityToString(vocab, analysis).c_str());

  std::printf("== 2. The complexity tiers ==\n\n");
  struct TierDemo {
    const char* name;
    const char* text;
  };
  const TierDemo demos[] = {
      {"polynomial",
       R"(
         step1: a(x) -> exists u . b(x, u) .
         step2: b(x, u) -> exists v . c(u, v) .
       )"},
      {"exponential",
       R"(
         grow: e(x, y) -> exists z . e(y, z) .
       )"},
      {"non-elementary",
       R"(
         ploop: p(x, y) -> exists z . p(y, z) .
         bridge: p(x, y) -> q(x, y) .
         qloop: q(x, y) -> exists z . q(y, z) .
       )"},
  };
  for (const TierDemo& demo : demos) {
    Vocabulary v2;
    TermArena a2;
    Parser p2(&a2, &v2);
    auto program = p2.ParseDependencies(demo.text);
    if (!program.ok()) {
      std::fprintf(stderr, "parse error in %s\n", demo.name);
      return 1;
    }
    ProgramAnalysis tier = AnalyzeProgram(&a2, &v2, *program);
    Status tier_replay = ReplayComplexity(tier);
    std::printf("%-15s -> %s  (replay: %s)\n", demo.name,
                ComplexityToString(v2, tier).c_str(),
                tier_replay.ok() ? "ok" : "FAILED");
  }
  std::printf("\nThe polynomial tier coincides with weak acyclicity; the\n"
              "higher tiers bound the chase conditionally on termination\n"
              "(one generating component: exponential; a generating\n"
              "component feeding another: non-elementary).\n");
  return 0;
}
