// Data exchange with schema mappings — the application setting the
// paper's dependency classes come from: materialize a universal solution,
// shrink it to the core solution, answer target queries certainly, and
// see how the choice of dependency class (tgd vs SO tgd) changes the
// shape of the materialized nulls.
#include <cstdio>

#include "dep/skolem.h"
#include "exchange/exchange.h"
#include "parse/parser.h"

int main() {
  using namespace tgdkit;

  Vocabulary vocab;
  TermArena arena;
  Parser parser(&arena, &vocab);

  std::printf("== A schema mapping from HR to the org chart ==\n\n");
  auto program = parser.ParseDependencies(R"(
    // Every employee row yields a manager (fresh per employee: tgd).
    per_emp: Emp(e, d) -> exists m . Mgr(e, m) .
    // Department managers depend only on the department (SO tgd).
    per_dept: so exists fdm { Emp(e, d) -> DeptMgr(e, fdm(d)) } .
    // Departments are copied.
    depts: Emp(e, d) -> Dept(d) .
  )");
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }

  SchemaMapping mapping;
  std::vector<Tgd> tgds = program->Tgds();
  std::vector<SoTgd> pieces{TgdsToSo(&arena, &vocab, tgds),
                            program->Sos()[0]};
  mapping.rules = MergeSo(pieces);
  mapping.source_relations = {vocab.FindRelation("Emp")};
  mapping.target_relations = {vocab.FindRelation("Mgr"),
                              vocab.FindRelation("DeptMgr"),
                              vocab.FindRelation("Dept")};
  Status st = ValidateSourceToTarget(mapping);
  std::printf("mapping is source-to-target: %s\n\n",
              st.ok() ? "yes" : st.ToString().c_str());

  Instance source(&vocab);
  st = parser.ParseInstanceInto(
      "Emp(alice, cs). Emp(bob, cs). Emp(carol, math).", &source);
  if (!st.ok()) return 1;
  std::printf("source instance:\n%s\n", source.ToString().c_str());

  ExchangeResult result = Solve(&arena, &vocab, mapping, source);
  std::printf("universal solution (%s):\n%s\n",
              result.IsUniversal() ? "chase reached a fixpoint"
                                   : "truncated",
              result.solution.ToString().c_str());
  std::printf("note: Mgr nulls are per-employee (tgd Skolem term f(e, d)),\n"
              "while DeptMgr shares one null per department (fdm(d)) —\n"
              "the exact distinction the paper's introduction draws.\n\n");

  Instance core = CoreSolution(&arena, &vocab, mapping, source);
  std::printf("core solution: %zu facts (universal solution had %zu)\n\n",
              core.NumFacts(), result.solution.NumFacts());

  auto q1 = parser.ParseQuery("ans(d) :- Dept(d).");
  auto q2 = parser.ParseQuery("ans(m) :- Mgr(e, m).");
  if (!q1.ok() || !q2.ok()) return 1;
  CertainAnswers depts =
      TargetCertainAnswers(&arena, &vocab, mapping, source, *q1);
  std::printf("certain departments: %zu (cs, math)\n", depts.answers.size());
  CertainAnswers mgrs =
      TargetCertainAnswers(&arena, &vocab, mapping, source, *q2);
  std::printf("certain manager VALUES: %zu (all managers are invented "
              "nulls — nothing is certain about who they are)\n",
              mgrs.answers.size());
  return 0;
}
