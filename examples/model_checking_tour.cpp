// A tour of model checking (Section 6): the 3-colorability reduction
// (Theorem 6.1, NP-hardness in data complexity for Henkin tgds) and the
// QBF reduction (Theorem 6.3, PSPACE-hardness in query complexity for
// nested tgds), both validated against brute-force oracles.
#include <cstdio>

#include "base/rng.h"
#include "gen/generators.h"
#include "mc/model_check.h"
#include "reduce/qbf.h"
#include "reduce/three_col.h"

int main() {
  using namespace tgdkit;

  std::printf("== 1. 3-colorability as Henkin tgd model checking ==\n\n");
  {
    // Petersen graph: 3-chromatic.
    Graph petersen;
    petersen.num_vertices = 10;
    petersen.edges = {{0, 1}, {1, 2}, {2, 3}, {3, 4}, {4, 0},   // outer C5
                      {5, 7}, {7, 9}, {9, 6}, {6, 8}, {8, 5},   // inner star
                      {0, 5}, {1, 6}, {2, 7}, {3, 8}, {4, 9}};  // spokes
    Vocabulary vocab;
    TermArena arena;
    ThreeColReduction red = BuildThreeColReduction(&arena, &vocab, petersen);
    std::printf("sigma: %s\n", ToString(arena, vocab, red.sigma).c_str());
    std::printf("instance: %zu facts\n", red.instance.NumFacts());
    McResult mc = CheckHenkin(&arena, &vocab, red.instance, red.sigma);
    std::printf("Petersen graph: model check says %d, oracle says %d "
                "(%llu branches explored)\n\n",
                mc.satisfied, ThreeColorable(petersen),
                static_cast<unsigned long long>(mc.branches));
  }
  {
    // Random graphs, agreement sweep.
    Rng rng(20150601);
    int agree = 0, total = 0, colorable = 0;
    for (int trial = 0; trial < 20; ++trial) {
      Vocabulary vocab;
      TermArena arena;
      Graph g = GenerateGraph(&rng, 6, 45);
      ThreeColReduction red = BuildThreeColReduction(&arena, &vocab, g);
      McResult mc = CheckHenkin(&arena, &vocab, red.instance, red.sigma);
      bool oracle = ThreeColorable(g);
      agree += (mc.satisfied == oracle);
      colorable += oracle;
      ++total;
    }
    std::printf("random 6-vertex graphs: %d/%d agree with the oracle "
                "(%d colorable)\n\n", agree, total, colorable);
  }

  std::printf("== 2. QBF as nested tgd model checking ==\n\n");
  {
    auto x = [](uint32_t i, bool n = false) {
      return QbfLiteral{QbfLiteral::Kind::kUniversal, i, n};
    };
    auto y = [](uint32_t i, bool n = false) {
      return QbfLiteral{QbfLiteral::Kind::kExistential, i, n};
    };
    // ∀x1∃y1∀x2∃y2 (x1 ∨ y1 ∨ y2) ∧ (¬x2 ∨ y2 ∨ ¬y1)
    Qbf qbf{2, {{x(0), y(0), y(1)}, {x(1, true), y(1), y(0, true)}}};
    Vocabulary vocab;
    TermArena arena;
    QbfReduction red = BuildQbfReduction(&arena, &vocab, qbf);
    std::printf("tau: %s\n", ToString(arena, vocab, red.tau).c_str());
    std::printf("fixed instance: %zu facts (P, Q, and the OR-table C)\n",
                red.instance.NumFacts());
    bool mc = CheckNested(arena, red.instance, red.tau);
    std::printf("model check: %d, oracle: %d\n\n", mc, EvaluateQbf(qbf));
  }
  {
    Rng rng(20150602);
    int agree = 0, total = 0, truthy = 0;
    for (int trial = 0; trial < 30; ++trial) {
      Vocabulary vocab;
      TermArena arena;
      Qbf qbf = GenerateQbf(&rng, 1 + rng.Below(3), 2 + rng.Below(3));
      QbfReduction red = BuildQbfReduction(&arena, &vocab, qbf);
      bool oracle = EvaluateQbf(qbf);
      agree += (CheckNested(arena, red.instance, red.tau) == oracle);
      truthy += oracle;
      ++total;
    }
    std::printf("random QBFs: %d/%d agree with the oracle (%d true)\n\n",
                agree, total, truthy);
  }

  std::printf("== 3. Complexity profile ==\n\n");
  std::printf("  tgds:        data AC0, combined Pi2P-complete\n");
  std::printf("  nested tgds: data AC0, combined PSPACE-complete (Thm 6.3)\n");
  std::printf("  Henkin tgds: data NP-complete (Thm 6.1), combined "
              "NEXPTIME-complete (Thm 6.2)\n");
  std::printf("  SO tgds:     data NP-complete, combined "
              "NEXPTIME-complete\n");
  return 0;
}
