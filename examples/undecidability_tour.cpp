// A tour of the decidability/undecidability border (Section 5, Figure 2):
//
//  * the PCP encoding into sticky linear standard Henkin tgds with two
//    unary function symbols (Theorem 5.1) and its nested variant
//    (Theorem 5.2), with the chase as a semi-decision procedure;
//  * the decidable islands: weak acyclicity (chase terminates even for SO
//    tgds) and the Figure 2 classifiers.
#include <cstdio>

#include "classify/criteria.h"
#include "dep/skolem.h"
#include "dep/syntactic.h"
#include "oracle/oracle.h"
#include "parse/parser.h"
#include "query/query.h"
#include "reduce/pcp.h"

int main() {
  using namespace tgdkit;

  std::printf("== 1. Encoding PCP into Henkin tgds (Theorem 5.1) ==\n\n");
  // Solvable instance: (12, 1), (2, 22) — solution [1, 2].
  PcpInstance solvable;
  solvable.alphabet_size = 2;
  solvable.pairs = {{{1, 2}, {1}}, {{2}, {2, 2}}};

  {
    Vocabulary vocab;
    TermArena arena;
    PcpEncoding enc = BuildPcpEncoding(&arena, &vocab, solvable);
    SoTgd rules = enc.HenkinRuleSet(&arena, &vocab);
    std::printf("rules: %zu full tgds + %zu Henkin tgds, %zu functions\n",
                enc.full_rules.size(), enc.henkin_rules.size(),
                rules.functions.size());
    std::printf("the two Henkin tgds (Idea 3, two-phase application):\n");
    for (const HenkinTgd& h : enc.henkin_rules) {
      std::printf("  %s\n", ToString(arena, vocab, h).c_str());
    }
    Figure2Membership m = ClassifyFigure2(arena, rules);
    std::printf("Figure 2 classification: %s\n",
                ToString(m).c_str());
    std::printf("standard Henkin Skolemization: %d\n\n",
                IsSkolemizedStandardHenkin(arena, rules));

    ChaseLimits limits;
    limits.max_rounds = 200;
    limits.max_facts = 200000;
    PcpChaseOutcome outcome =
        SemiDecidePcp(&arena, &vocab, enc, rules, limits);
    auto oracle = SolvePcp(solvable, 10);
    std::printf("chase on the SOLVABLE instance: solved=%d after %llu "
                "rounds, %llu facts (oracle: solution of length %zu)\n\n",
                outcome.solved,
                static_cast<unsigned long long>(outcome.rounds),
                static_cast<unsigned long long>(outcome.facts),
                oracle.has_value() ? oracle->size() : 0);
  }

  std::printf("== 2. The chase diverges on unsolvable instances ==\n\n");
  PcpInstance unsolvable;
  unsolvable.alphabet_size = 2;
  unsolvable.pairs = {{{1}, {2}}, {{2}, {1}}};
  {
    Vocabulary vocab;
    TermArena arena;
    PcpEncoding enc = BuildPcpEncoding(&arena, &vocab, unsolvable);
    SoTgd rules = enc.HenkinRuleSet(&arena, &vocab);
    for (uint32_t depth : {8u, 12u, 16u}) {
      ChaseLimits limits;
      limits.max_rounds = 100000;
      limits.max_facts = 2000000;
      limits.max_term_depth = depth;
      PcpChaseOutcome outcome =
          SemiDecidePcp(&arena, &vocab, enc, rules, limits);
      std::printf("  term-depth budget %2u: solved=%d, facts=%llu, "
                  "stopped by %s\n",
                  depth, outcome.solved,
                  static_cast<unsigned long long>(outcome.facts),
                  ToString(outcome.stop));
    }
    std::printf("  (facts grow with the budget and no fixpoint is "
                "reached — undecidability in action)\n\n");
  }

  std::printf("== 3. The nested variant (Theorem 5.2, Idea 3+) ==\n\n");
  {
    Vocabulary vocab;
    TermArena arena;
    PcpEncoding enc = BuildPcpEncoding(&arena, &vocab, solvable);
    for (const NestedTgd& nested : enc.nested_rules) {
      std::printf("  %s\n", ToString(arena, vocab, nested).c_str());
    }
    SoTgd rules = enc.NestedRuleSet(&arena, &vocab);
    std::printf("Figure 2 classification: %s (guarded, no longer "
                "linear)\n",
                ToString(ClassifyFigure2(arena, rules)).c_str());
    ChaseLimits limits;
    limits.max_rounds = 200;
    limits.max_facts = 400000;
    PcpChaseOutcome outcome =
        SemiDecidePcp(&arena, &vocab, enc, rules, limits);
    std::printf("chase: solved=%d\n\n", outcome.solved);
  }

  std::printf("== 4. The decidable island: weak acyclicity ==\n\n");
  {
    Vocabulary vocab;
    TermArena arena;
    Parser parser(&arena, &vocab);
    auto program = parser.ParseDependencies(R"(
      Person(x) -> exists y . Parent(x, y) .
      Parent(x, y) -> Ancestor(x, y) .
      Ancestor(x, y) & Ancestor(y, z) -> Ancestor(x, z) .
    )");
    if (!program.ok()) return 1;
    std::vector<Tgd> tgds = program->Tgds();
    SoTgd so = TgdsToSo(&arena, &vocab, tgds);
    std::printf("rules:\n");
    for (const Tgd& t : tgds) {
      std::printf("  %s\n", ToString(arena, vocab, t).c_str());
    }
    std::printf("Figure 2 classification: %s\n",
                ToString(ClassifyFigure2(arena, so)).c_str());

    Instance source(&vocab);
    if (!parser.ParseInstanceInto("Person(ada). Person(bob).", &source).ok()) {
      return 1;
    }
    auto query = parser.ParseQuery("ans(x) :- Ancestor(x, y).");
    if (!query.ok()) return 1;
    CertainAnswers answers =
        ComputeCertainAnswers(&arena, &vocab, so, source, *query);
    std::printf("chase complete: %d — query answering is DECIDABLE here "
                "even though the rules invent values\n",
                answers.Complete());
    std::printf("certain ancestors: %zu\n", answers.answers.size());
  }
  return 0;
}
