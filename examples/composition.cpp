// Schema-mapping composition: the reason SO tgds exist (Fagin et al.
// 2005, cited by the paper as the origin of SO tgds). Composes two s-t
// tgd mappings into one SO tgd and verifies the composed mapping agrees
// with the two-step chase.
#include <cstdio>

#include "chase/chase.h"
#include "dep/skolem.h"
#include "parse/parser.h"
#include "query/query.h"
#include "transform/composition.h"

int main() {
  using namespace tgdkit;

  Vocabulary vocab;
  TermArena arena;
  Parser parser(&arena, &vocab);

  std::printf("== Composing M12 and M23 ==\n\n");
  auto p12 = parser.ParseDependencies(R"(
    Emp(e) -> exists m . Rep(e, m) .
  )");
  auto p23 = parser.ParseDependencies(R"(
    Rep(e, m) -> Mgr(e, m) .
    Rep(e2, e2) -> SelfMgr(e2) .
  )");
  if (!p12.ok() || !p23.ok()) {
    std::fprintf(stderr, "parse error\n");
    return 1;
  }
  std::vector<Tgd> sigma12 = p12->Tgds();
  std::vector<Tgd> sigma23 = p23->Tgds();

  std::printf("M12:\n");
  for (const Tgd& t : sigma12) {
    std::printf("  %s\n", ToString(arena, vocab, t).c_str());
  }
  std::printf("M23:\n");
  for (const Tgd& t : sigma23) {
    std::printf("  %s\n", ToString(arena, vocab, t).c_str());
  }

  auto composed = ComposeMappings(&arena, &vocab, sigma12, sigma23);
  if (!composed.ok()) {
    std::fprintf(stderr, "%s\n", composed.status().ToString().c_str());
    return 1;
  }
  std::printf("\nM12 o M23 as one SO tgd (note the equality — a feature\n"
              "no set of tgds can express; this is the paper's self-manager\n"
              "example from Section 2):\n  %s\n",
              ToString(arena, vocab, *composed).c_str());
  std::printf("plain: %d (equalities make it non-plain)\n\n",
              composed->IsPlain(arena));

  std::printf("== Agreement with the two-step chase ==\n\n");
  Instance source(&vocab);
  Status st = parser.ParseInstanceInto(
      "Emp(alice). Emp(bob). Emp(carol).", &source);
  if (!st.ok()) return 1;

  SoTgd so12 = TgdsToSo(&arena, &vocab, sigma12);
  SoTgd so23 = TgdsToSo(&arena, &vocab, sigma23);
  ChaseResult step1 = Chase(&arena, &vocab, so12, source);
  ChaseResult step2 = Chase(&arena, &vocab, so23, step1.instance);
  ChaseResult direct = Chase(&arena, &vocab, *composed, source);

  auto count = [&](const Instance& inst, const char* rel) {
    RelationId id = vocab.FindRelation(rel);
    return id == kInvalidSymbol ? size_t{0} : inst.NumTuples(id);
  };
  std::printf("two-step chase: Mgr=%zu SelfMgr=%zu facts\n",
              count(step2.instance, "Mgr"), count(step2.instance, "SelfMgr"));
  std::printf("composed chase: Mgr=%zu SelfMgr=%zu facts\n",
              count(direct.instance, "Mgr"), count(direct.instance, "SelfMgr"));
  std::printf("\ncomposed chase result:\n%s\n",
              direct.instance.ToString().c_str());
  std::printf("(no SelfMgr facts: under the free interpretation the\n"
              " invented manager f(e) never equals the employee e)\n");
  return 0;
}
