// The paper's running example, end to end: tgds vs Henkin tgds vs nested
// tgds vs SO tgds on the employee/department/group domain, including both
// normalization algorithms (Algorithm 1: nested-to-so, Algorithm 2:
// nested-to-henkin) and the Section 4 instance that shows why Algorithm
// 2's largest output rule (σ123) is needed.
#include <algorithm>
#include <cstdio>

#include "chase/chase.h"
#include "dep/skolem.h"
#include "dep/syntactic.h"
#include "mc/model_check.h"
#include "parse/parser.h"
#include "transform/nested.h"

int main() {
  using namespace tgdkit;

  Vocabulary vocab;
  TermArena arena;
  Parser parser(&arena, &vocab);

  std::printf("== 1. Four ways to say 'employees have managers' ==\n\n");
  auto program = parser.ParseDependencies(R"(
    // (a) tgd: the manager may depend on everything.
    t1: Emp(e, d) -> exists dm . Mgr(e, dm) .

    // (b) SO tgd: the manager depends only on the department.
    t2: so exists fdm { Emp(e, d) -> Mgr(e, fdm(d)) } .

    // (c) standard Henkin tgd: employee id per employee, manager per
    //     department, independently.
    t3: henkin { forall e, d ; exists eid(e) ; exists dm(d) }
          Emp(e, d) -> MgrId(eid, dm) .

    // (d) nested tgd: a three-level hierarchy (departments, groups,
    //     employees) — the paper's τ.
    t4: nested Dep(d) -> exists u . Dep2(u) &
          [ Grp(d, g) -> exists w . Grp2(u, g, w) &
            [ Emp3(d, g, e) -> Emp4(u, w, e) ] ] .
  )");
  if (!program.ok()) {
    std::fprintf(stderr, "%s\n", program.status().ToString().c_str());
    return 1;
  }
  for (const ParsedDependency& dep : program->dependencies) {
    switch (dep.kind) {
      case ParsedDependency::Kind::kTgd: {
        SoTgd so = TgdToSo(&arena, &vocab, dep.tgd);
        std::printf("%s: %s\n  Skolemized: %s\n  Figure 1: %s\n\n",
                    dep.label.c_str(),
                    ToString(arena, vocab, dep.tgd).c_str(),
                    ToString(arena, vocab, so).c_str(),
                    ToString(ClassifyFigure1(arena, so)).c_str());
        break;
      }
      case ParsedDependency::Kind::kSo:
        std::printf("%s: %s\n  Figure 1: %s\n\n", dep.label.c_str(),
                    ToString(arena, vocab, dep.so).c_str(),
                    ToString(ClassifyFigure1(arena, dep.so)).c_str());
        break;
      case ParsedDependency::Kind::kHenkin: {
        SoTgd so = HenkinToSo(&arena, &vocab, dep.henkin);
        std::printf("%s: %s\n  standard=%d tree=%d\n  Figure 1: %s\n\n",
                    dep.label.c_str(),
                    ToString(arena, vocab, dep.henkin).c_str(),
                    dep.henkin.IsStandard(), dep.henkin.IsTree(),
                    ToString(ClassifyFigure1(arena, so)).c_str());
        break;
      }
      case ParsedDependency::Kind::kNested:
        std::printf("%s: %s\n  parts=%zu depth=%zu\n\n", dep.label.c_str(),
                    ToString(arena, vocab, dep.nested).c_str(),
                    dep.nested.NumParts(), dep.nested.Depth());
        break;
    }
  }

  std::printf("== 2. Algorithm 1 (nested-to-so) on tau ==\n\n");
  NestedTgd tau = program->Nesteds()[0];
  SoTgd normalized = NestedToSo(&arena, &vocab, tau);
  std::printf("%s\n  parts: %zu (linear blow-up)\n\n",
              ToString(arena, vocab, normalized).c_str(),
              normalized.parts.size());

  std::printf("== 3. Algorithm 2 (nested-to-henkin) on tau ==\n\n");
  std::vector<HenkinTgd> henkins = NestedToHenkin(&arena, &vocab, tau);
  std::printf("produced %zu tree Henkin tgds:\n", henkins.size());
  for (const HenkinTgd& h : henkins) {
    std::printf("  %s\n", ToString(arena, vocab, h).c_str());
  }

  std::printf("\n== 4. Why the largest rule is needed (Section 4) ==\n\n");
  Instance witness(&vocab);
  Status st = parser.ParseInstanceInto(R"(
    Dep(cs). Grp(cs, a). Grp(cs, b). Emp3(cs, a, e1).
    Dep2(_n1). Grp2(_n1, a, _m1). Emp4(_n1, _m1, e1).
    Dep2(_n2). Grp2(_n2, a, _m2a). Grp2(_n2, b, _m2b).
  )", &witness);
  if (!st.ok()) {
    std::fprintf(stderr, "%s\n", st.ToString().c_str());
    return 1;
  }
  std::sort(henkins.begin(), henkins.end(),
            [](const HenkinTgd& a, const HenkinTgd& b) {
              return a.body.size() < b.body.size();
            });
  std::vector<HenkinTgd> without(henkins.begin(), henkins.end() - 1);
  std::printf("tau satisfied:                     %d\n",
              CheckNested(arena, witness, tau));
  std::printf("normalized SO tgd satisfied:       %d\n",
              CheckSo(arena, witness, normalized).satisfied);
  std::printf("Henkin set minus largest satisfied: %d  <-- fooled!\n",
              CheckHenkins(&arena, &vocab, witness, without).satisfied);
  std::printf("full Henkin set satisfied:         %d\n",
              CheckHenkins(&arena, &vocab, witness, henkins).satisfied);

  std::printf("\n== 5. Chasing tau's normalization ==\n\n");
  Instance source(&vocab);
  st = parser.ParseInstanceInto(R"(
    Dep(cs). Dep(math). Grp(cs, a). Grp(cs, b). Grp(math, c).
    Emp3(cs, a, e1). Emp3(math, c, e2).
  )", &source);
  if (!st.ok()) return 1;
  ChaseResult chased = Chase(&arena, &vocab, normalized, source);
  std::printf("%s\n", chased.instance.ToString().c_str());
  return 0;
}
